//! Derivative-free minimization: Nelder–Mead simplex, golden-section line
//! search, grid search, and deterministic multi-start search.
//!
//! `dlm-core::calibrate` fits the DL parameters (diffusion rate `d`, growth
//! parameters, carrying capacity `K`) by minimizing prediction error over an
//! early observation window — an objective that involves a full PDE solve
//! and therefore has no cheap gradient. Nelder–Mead is the natural tool
//! (and is also what MATLAB's `fminsearch`, the authors' likely companion,
//! implements). Because the simplex is a *local* search, a bad seed can
//! strand it in a poor basin; [`multi_start_nelder_mead`] restarts it from
//! a deterministic stratified grid of seed points
//! ([`stratified_starts`]) and fans the independent starts onto the
//! work-stealing executor in [`crate::pool`]. Selection is a total order
//! (objective bits, then start index), so the outcome is byte-identical
//! under every [`Parallelism`] setting. The fitting semantics are
//! specified normatively in `docs/CALIBRATION.md`.

use crate::error::{NumericsError, Result};
use crate::mix::splitmix64_next;
use crate::pool::{parallel_map, Parallelism};

/// Result of a minimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// Location of the best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations consumed.
    pub evaluations: usize,
    /// Whether the tolerance criterion (rather than the budget) stopped us.
    pub converged: bool,
}

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadConfig {
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex diameter falls below this.
    pub x_tol: f64,
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Relative size of the initial simplex around the seed point.
    pub initial_scale: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        Self {
            f_tol: 1e-10,
            x_tol: 1e-10,
            max_evals: 20_000,
            initial_scale: 0.1,
        }
    }
}

/// Minimizes `f` with the Nelder–Mead downhill simplex method.
///
/// `x0` seeds the simplex; coordinates equal to zero get an absolute
/// perturbation. Non-finite objective values are treated as `+∞`, which lets
/// callers impose hard constraints by returning `f64::INFINITY` outside the
/// feasible region.
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] — empty `x0`.
/// * [`NumericsError::InvalidParameter`] — non-finite seed or bad config.
///
/// # Examples
///
/// ```
/// use dlm_numerics::optimize::{nelder_mead, NelderMeadConfig};
///
/// # fn main() -> Result<(), dlm_numerics::NumericsError> {
/// // Rosenbrock's banana function, minimum at (1, 1).
/// let rosen = |p: &[f64]| {
///     let (x, y) = (p[0], p[1]);
///     (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
/// };
/// let m = nelder_mead(rosen, &[-1.2, 1.0], NelderMeadConfig::default())?;
/// assert!((m.x[0] - 1.0).abs() < 1e-4 && (m.x[1] - 1.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    cfg: NelderMeadConfig,
) -> Result<Minimum> {
    let n = x0.len();
    if n == 0 {
        return Err(NumericsError::DimensionMismatch {
            expected: "at least one dimension".into(),
            actual: 0,
        });
    }
    if x0.iter().any(|v| !v.is_finite()) {
        return Err(NumericsError::InvalidParameter {
            name: "x0",
            reason: "seed must be finite".into(),
        });
    }
    if cfg.max_evals == 0 {
        return Err(NumericsError::InvalidParameter {
            name: "max_evals",
            reason: "must be positive".into(),
        });
    }

    // Standard coefficients.
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let mut evals = 0usize;
    let mut eval = |p: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(p);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    // Build the initial simplex: x0 plus n perturbed vertices.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        let delta = if v[i] != 0.0 {
            cfg.initial_scale * v[i].abs()
        } else {
            cfg.initial_scale
        };
        v[i] += delta;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| eval(v, &mut evals)).collect();

    let mut converged = false;
    while evals < cfg.max_evals {
        // Order vertices by objective.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| {
            values[a]
                .partial_cmp(&values[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        // Convergence tests.
        let f_spread = values[worst] - values[best];
        let x_spread = (0..n)
            .map(|i| {
                simplex
                    .iter()
                    .map(|v| v[i])
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), x| {
                        (lo.min(x), hi.max(x))
                    })
            })
            .map(|(lo, hi)| hi - lo)
            .fold(0.0, f64::max);
        // fminsearch-style criterion: require BOTH spreads small. Using
        // "either" stops prematurely whenever two vertices tie in objective.
        if f_spread.is_finite() && f_spread <= cfg.f_tol && x_spread <= cfg.x_tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (idx, v) in simplex.iter().enumerate() {
            if idx == worst {
                continue;
            }
            for i in 0..n {
                centroid[i] += v[i] / n as f64;
            }
        }

        // Reflection.
        let reflected: Vec<f64> = (0..n)
            .map(|i| centroid[i] + ALPHA * (centroid[i] - simplex[worst][i]))
            .collect();
        let f_reflected = eval(&reflected, &mut evals);

        if f_reflected < values[best] {
            // Expansion.
            let expanded: Vec<f64> = (0..n)
                .map(|i| centroid[i] + GAMMA * (reflected[i] - centroid[i]))
                .collect();
            let f_expanded = eval(&expanded, &mut evals);
            if f_expanded < f_reflected {
                simplex[worst] = expanded;
                values[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            }
        } else if f_reflected < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = f_reflected;
        } else {
            // Contraction (outside if the reflection improved on the worst).
            let (base, f_base) = if f_reflected < values[worst] {
                (&reflected, f_reflected)
            } else {
                (&simplex[worst].clone(), values[worst])
            };
            let contracted: Vec<f64> = (0..n)
                .map(|i| centroid[i] + RHO * (base[i] - centroid[i]))
                .collect();
            let f_contracted = eval(&contracted, &mut evals);
            if f_contracted < f_base {
                simplex[worst] = contracted;
                values[worst] = f_contracted;
            } else {
                // Shrink toward the best vertex.
                let best_v = simplex[best].clone();
                for (idx, v) in simplex.iter_mut().enumerate() {
                    if idx == best {
                        continue;
                    }
                    for i in 0..n {
                        v[i] = best_v[i] + SIGMA * (v[i] - best_v[i]);
                    }
                }
                for idx in 0..=n {
                    if idx != best {
                        values[idx] = eval(&simplex[idx].clone(), &mut evals);
                    }
                }
            }
        }
    }

    let (best_idx, _) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("simplex nonempty");
    Ok(Minimum {
        x: simplex[best_idx].clone(),
        value: values[best_idx],
        evaluations: evals,
        converged,
    })
}

/// Minimizes a unimodal scalar function on `[lo, hi]` by golden-section
/// search.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidParameter`] if the interval is empty or
/// not finite.
pub fn golden_section<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    x_tol: f64,
) -> Result<(f64, f64)> {
    if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
        return Err(NumericsError::InvalidParameter {
            name: "interval",
            reason: format!("need finite lo < hi, got [{lo}, {hi}]"),
        });
    }
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > x_tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    let v = f(x);
    Ok((x, v))
}

/// Exhaustive grid search over axis-aligned parameter ranges.
///
/// `ranges` gives `(lo, hi)` per dimension; `points_per_dim` grid points are
/// placed on each axis (inclusive of both ends). Returns the best grid point.
/// Intended for coarse seeding of [`nelder_mead`].
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] — empty `ranges`.
/// * [`NumericsError::InvalidParameter`] — `points_per_dim < 2` or a bad
///   range.
pub fn grid_search<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    ranges: &[(f64, f64)],
    points_per_dim: usize,
) -> Result<Minimum> {
    if ranges.is_empty() {
        return Err(NumericsError::DimensionMismatch {
            expected: "at least one range".into(),
            actual: 0,
        });
    }
    if points_per_dim < 2 {
        return Err(NumericsError::InvalidParameter {
            name: "points_per_dim",
            reason: "need at least 2 points per dimension".into(),
        });
    }
    for &(lo, hi) in ranges {
        if !(lo.is_finite() && hi.is_finite()) || hi < lo {
            return Err(NumericsError::InvalidParameter {
                name: "ranges",
                reason: format!("bad range [{lo}, {hi}]"),
            });
        }
    }

    let dims = ranges.len();
    let mut idx = vec![0usize; dims];
    let mut best_x = vec![0.0; dims];
    let mut best_v = f64::INFINITY;
    let mut evals = 0usize;
    let total = points_per_dim.pow(dims as u32);

    for _ in 0..total {
        let x: Vec<f64> = (0..dims)
            .map(|i| {
                let (lo, hi) = ranges[i];
                lo + (hi - lo) * idx[i] as f64 / (points_per_dim - 1) as f64
            })
            .collect();
        let v = f(&x);
        evals += 1;
        if v.is_finite() && v < best_v {
            best_v = v;
            best_x = x;
        }
        // Odometer increment.
        for digit in idx.iter_mut() {
            *digit += 1;
            if *digit < points_per_dim {
                break;
            }
            *digit = 0;
        }
    }
    Ok(Minimum {
        x: best_x,
        value: best_v,
        evaluations: evals,
        converged: true,
    })
}

/// Options for [`multi_start_nelder_mead`]: how many independent
/// Nelder–Mead starts to run, how their seed points are generated, the
/// per-start local-search budget, and how the starts are scheduled.
///
/// The default is a **single** start — exactly the classic
/// `nelder_mead(f, x0, local)` call — so threading this config through
/// an existing fitting path changes nothing until a caller raises
/// `starts`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiStartConfig {
    /// Total number of starts, *including* the caller's seed point
    /// (which always runs as start 0). Values below 1 are treated as 1.
    pub starts: usize,
    /// Seed of the deterministic stratified start grid (see
    /// [`stratified_starts`]). Two searches with equal seeds, bounds and
    /// start counts use identical start points.
    pub seed: u64,
    /// The Nelder–Mead configuration applied to **each** start: the
    /// total objective budget is `starts × local.max_evals`.
    pub local: NelderMeadConfig,
    /// How the independent starts are scheduled on [`crate::pool`].
    /// Purely a wall-clock knob: the outcome is byte-identical across
    /// every setting.
    pub parallelism: Parallelism,
}

impl Default for MultiStartConfig {
    fn default() -> Self {
        Self {
            starts: 1,
            seed: 0,
            local: NelderMeadConfig::default(),
            parallelism: Parallelism::Auto,
        }
    }
}

impl MultiStartConfig {
    /// A config running `starts` starts with default seeding, budget and
    /// scheduling.
    #[must_use]
    pub fn new(starts: usize) -> Self {
        Self {
            starts,
            ..Self::default()
        }
    }

    /// The single-start config: plain Nelder–Mead from the caller's
    /// seed.
    #[must_use]
    pub fn single() -> Self {
        Self::default()
    }
}

/// The outcome of a [`multi_start_nelder_mead`] search.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStartOutcome {
    /// The winning local minimum.
    pub best: Minimum,
    /// Index of the winning start (`0` is the caller's seed point;
    /// `1..` are [`stratified_starts`] points in grid order).
    pub best_start: usize,
    /// The objective value each start converged to, in start order.
    pub start_values: Vec<f64>,
    /// Objective evaluations consumed across all starts.
    pub evaluations: usize,
}

/// A uniform draw in `[0, 1)` from the SplitMix64 stream.
fn unit(state: &mut u64) -> f64 {
    (splitmix64_next(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Generates `count` seed points inside the axis-aligned box `bounds`
/// with Latin-hypercube-style stratification: per dimension, the range
/// is split into `count` equal strata, each point lands in a distinct
/// stratum (jittered uniformly within it), and the stratum-to-point
/// assignment is an independent deterministic permutation per dimension.
/// No two points share a stratum on any axis, so the starts cover every
/// coordinate range evenly instead of clumping the way independent
/// uniform draws would.
///
/// Fully deterministic in (`bounds`, `count`, `seed`) — no global RNG —
/// and every generated coordinate lies in `[lo, hi]` (a degenerate
/// `lo == hi` axis pins the coordinate to `lo`).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidParameter`] for a non-finite or
/// inverted (`hi < lo`) bound.
///
/// # Examples
///
/// ```
/// use dlm_numerics::optimize::stratified_starts;
///
/// # fn main() -> Result<(), dlm_numerics::NumericsError> {
/// let starts = stratified_starts(&[(0.0, 1.0), (-2.0, 2.0)], 4, 42)?;
/// assert_eq!(starts.len(), 4);
/// for p in &starts {
///     assert!((0.0..=1.0).contains(&p[0]) && (-2.0..=2.0).contains(&p[1]));
/// }
/// // Stratification: the four first coordinates land in the four
/// // distinct quarters of [0, 1].
/// let mut quarters: Vec<usize> = starts.iter().map(|p| (p[0] * 4.0) as usize).collect();
/// quarters.sort_unstable();
/// assert_eq!(quarters, [0, 1, 2, 3]);
/// # Ok(())
/// # }
/// ```
pub fn stratified_starts(bounds: &[(f64, f64)], count: usize, seed: u64) -> Result<Vec<Vec<f64>>> {
    for &(lo, hi) in bounds {
        if !(lo.is_finite() && hi.is_finite()) || hi < lo {
            return Err(NumericsError::InvalidParameter {
                name: "bounds",
                reason: format!("need finite lo <= hi, got [{lo}, {hi}]"),
            });
        }
    }
    let mut points = vec![vec![0.0; bounds.len()]; count];
    for (dim, &(lo, hi)) in bounds.iter().enumerate() {
        // One independent deterministic stream per dimension, so the
        // grid for dimension k never depends on how many earlier
        // dimensions there are draws for.
        let mut state = seed ^ (dim as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F);
        // Fisher–Yates permutation of the strata.
        let mut strata: Vec<usize> = (0..count).collect();
        for i in (1..count).rev() {
            let j = (splitmix64_next(&mut state) % (i as u64 + 1)) as usize;
            strata.swap(i, j);
        }
        for (point, &stratum) in points.iter_mut().zip(&strata) {
            let frac = (stratum as f64 + unit(&mut state)) / count as f64;
            point[dim] = (lo + (hi - lo) * frac).clamp(lo, hi);
        }
    }
    Ok(points)
}

/// Minimizes `f` by running independent Nelder–Mead searches from the
/// caller's seed `x0` (start 0) plus `cfg.starts - 1` stratified points
/// inside `bounds` ([`stratified_starts`] keyed by `cfg.seed`), and
/// returns the best local minimum found.
///
/// The starts are scheduled on the work-stealing executor in
/// [`crate::pool`] under `cfg.parallelism`; because each start is an
/// independent pure computation and the winner is selected by a **total
/// order** — ascending [`f64::total_cmp`] on the objective value
/// (i.e. its bit pattern for the finite values that occur), ties broken
/// by the lowest start index — the outcome is byte-identical across
/// [`Parallelism::Serial`], [`Parallelism::Fixed`] and
/// [`Parallelism::Auto`].
///
/// Since start 0 *is* the plain single-start search, the multi-start
/// objective value is never worse than `nelder_mead(f, x0, cfg.local)`'s.
/// `bounds` only shapes the seeding; it imposes no constraint on the
/// local searches — express hard constraints in `f` by returning
/// `f64::INFINITY` outside the feasible region, exactly as with
/// [`nelder_mead`].
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] — `bounds` length differs
///   from `x0`'s.
/// * [`NumericsError::InvalidParameter`] — invalid bounds (only
///   checked when `cfg.starts > 1`, since a single start generates no
///   grid), non-finite seed, or a bad local config (propagated from
///   [`nelder_mead`]).
///
/// # Examples
///
/// ```
/// use dlm_numerics::optimize::{multi_start_nelder_mead, MultiStartConfig};
///
/// # fn main() -> Result<(), dlm_numerics::NumericsError> {
/// // A double well: local minimum at x = -1 (value 0.5), global
/// // minimum at x = 2 (value 0). Seeded at -1.2, the single start
/// // settles in the wrong basin; the stratified restarts escape it.
/// let f = |p: &[f64]| {
///     let x = p[0];
///     ((x + 1.0).powi(2) + 0.5).min((x - 2.0).powi(2))
/// };
/// let outcome =
///     multi_start_nelder_mead(f, &[-1.2], &[(-4.0, 4.0)], MultiStartConfig::new(6))?;
/// assert!((outcome.best.x[0] - 2.0).abs() < 1e-3);
/// assert_eq!(outcome.start_values.len(), 6);
/// // The winner is at least as good as the caller's seed basin.
/// assert!(outcome.best.value <= outcome.start_values[0]);
/// # Ok(())
/// # }
/// ```
pub fn multi_start_nelder_mead<F>(
    f: F,
    x0: &[f64],
    bounds: &[(f64, f64)],
    cfg: MultiStartConfig,
) -> Result<MultiStartOutcome>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    if bounds.len() != x0.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("{} bounds (one per seed coordinate)", x0.len()),
            actual: bounds.len(),
        });
    }
    let starts = cfg.starts.max(1);
    let mut seeds = Vec::with_capacity(starts);
    seeds.push(x0.to_vec());
    if starts > 1 {
        seeds.extend(stratified_starts(bounds, starts - 1, cfg.seed)?);
    }

    let minima: Vec<Minimum> = parallel_map(cfg.parallelism, &seeds, |_, seed| {
        nelder_mead(&f, seed, cfg.local)
    })
    .into_iter()
    .collect::<Result<_>>()?;

    // Total-order selection: strictly smaller under `total_cmp` wins,
    // so equal objective bits keep the earliest start. (Not
    // `Iterator::min_by`, which keeps the *last* of equal elements.)
    let mut best_start = 0;
    for (i, m) in minima.iter().enumerate().skip(1) {
        if m.value.total_cmp(&minima[best_start].value) == std::cmp::Ordering::Less {
            best_start = i;
        }
    }
    Ok(MultiStartOutcome {
        best: minima[best_start].clone(),
        best_start,
        start_values: minima.iter().map(|m| m.value).collect(),
        evaluations: minima.iter().map(|m| m.evaluations).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_quadratic_bowl() {
        let m = nelder_mead(
            |p| (p[0] - 3.0).powi(2) + (p[1] + 1.0).powi(2),
            &[0.0, 0.0],
            NelderMeadConfig::default(),
        )
        .unwrap();
        assert!(m.converged);
        assert!((m.x[0] - 3.0).abs() < 1e-5);
        assert!((m.x[1] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let m = nelder_mead(
            |p| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2),
            &[-1.2, 1.0],
            NelderMeadConfig::default(),
        )
        .unwrap();
        assert!((m.x[0] - 1.0).abs() < 1e-4, "{:?}", m.x);
        assert!((m.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_1d() {
        let m = nelder_mead(
            |p| (p[0] - 0.5).powi(2) + 2.0,
            &[10.0],
            NelderMeadConfig::default(),
        )
        .unwrap();
        assert!((m.x[0] - 0.5).abs() < 1e-4);
        assert!((m.value - 2.0).abs() < 1e-8);
    }

    #[test]
    fn nelder_mead_respects_infinity_constraints() {
        // Constrain x >= 1 by returning infinity below it; minimum of (x-0)² then sits at 1.
        let m = nelder_mead(
            |p| {
                if p[0] < 1.0 {
                    f64::INFINITY
                } else {
                    p[0] * p[0]
                }
            },
            &[3.0],
            NelderMeadConfig::default(),
        )
        .unwrap();
        assert!((m.x[0] - 1.0).abs() < 1e-4, "{:?}", m.x);
    }

    #[test]
    fn nelder_mead_budget_is_respected() {
        let cfg = NelderMeadConfig {
            max_evals: 40,
            f_tol: 0.0,
            x_tol: 0.0,
            ..NelderMeadConfig::default()
        };
        let m = nelder_mead(
            |p| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2),
            &[-1.2, 1.0],
            cfg,
        )
        .unwrap();
        assert!(!m.converged);
        assert!(m.evaluations <= 45); // small overshoot within one iteration allowed
    }

    #[test]
    fn nelder_mead_rejects_empty_seed() {
        assert!(nelder_mead(|_| 0.0, &[], NelderMeadConfig::default()).is_err());
    }

    #[test]
    fn nelder_mead_rejects_nan_seed() {
        assert!(nelder_mead(|p| p[0], &[f64::NAN], NelderMeadConfig::default()).is_err());
    }

    #[test]
    fn golden_section_parabola() {
        let (x, v) = golden_section(|x| (x - 2.0).powi(2) + 1.0, -10.0, 10.0, 1e-10).unwrap();
        // Golden section cannot localize a quadratic minimum below ~sqrt(eps).
        assert!((x - 2.0).abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_asymmetric_function() {
        let (x, _) = golden_section(|x: f64| x.exp() - 2.0 * x, 0.0, 2.0, 1e-10).unwrap();
        assert!((x - (2.0f64).ln()).abs() < 1e-7);
    }

    #[test]
    fn golden_section_rejects_bad_interval() {
        assert!(golden_section(|x| x, 1.0, 1.0, 1e-8).is_err());
    }

    #[test]
    fn grid_search_finds_best_cell() {
        let m = grid_search(
            |p| (p[0] - 0.5).powi(2) + (p[1] - 0.25).powi(2),
            &[(0.0, 1.0), (0.0, 1.0)],
            5,
        )
        .unwrap();
        assert_eq!(m.evaluations, 25);
        assert!((m.x[0] - 0.5).abs() < 1e-12); // 0.5 is exactly on the 5-point grid
        assert!((m.x[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn grid_search_then_nelder_mead_refinement() {
        let f = |p: &[f64]| (p[0] - 0.013).powi(2) + (p[1] - 24.7).powi(2);
        let coarse = grid_search(f, &[(0.0, 0.1), (0.0, 100.0)], 6).unwrap();
        let fine = nelder_mead(f, &coarse.x, NelderMeadConfig::default()).unwrap();
        // Nelder-Mead x-precision scales like sqrt(f_tol) on quadratics.
        assert!((fine.x[0] - 0.013).abs() < 1e-4);
        assert!((fine.x[1] - 24.7).abs() < 1e-4);
    }

    #[test]
    fn grid_search_rejects_degenerate() {
        assert!(grid_search(|_| 0.0, &[], 3).is_err());
        assert!(grid_search(|_| 0.0, &[(0.0, 1.0)], 1).is_err());
    }

    #[test]
    fn stratified_starts_cover_each_axis_without_collisions() {
        let bounds = [(0.0, 10.0), (-1.0, 1.0), (5.0, 5.0)];
        let starts = stratified_starts(&bounds, 8, 123).unwrap();
        assert_eq!(starts.len(), 8);
        for dim in 0..2 {
            let (lo, hi) = bounds[dim];
            let mut strata: Vec<usize> = starts
                .iter()
                .map(|p| {
                    assert!((lo..=hi).contains(&p[dim]), "{} outside bounds", p[dim]);
                    (((p[dim] - lo) / (hi - lo) * 8.0) as usize).min(7)
                })
                .collect();
            strata.sort_unstable();
            assert_eq!(
                strata,
                (0..8).collect::<Vec<_>>(),
                "dim {dim} not stratified"
            );
        }
        // A degenerate axis pins every point.
        assert!(starts.iter().all(|p| p[2] == 5.0));
        // Deterministic in the seed; different seeds differ.
        assert_eq!(starts, stratified_starts(&bounds, 8, 123).unwrap());
        assert_ne!(starts, stratified_starts(&bounds, 8, 124).unwrap());
    }

    #[test]
    fn stratified_starts_reject_bad_bounds() {
        assert!(stratified_starts(&[(1.0, 0.0)], 3, 0).is_err());
        assert!(stratified_starts(&[(0.0, f64::NAN)], 3, 0).is_err());
        assert!(stratified_starts(&[], 3, 0)
            .unwrap()
            .iter()
            .all(Vec::is_empty));
        assert!(stratified_starts(&[(0.0, 1.0)], 0, 0).unwrap().is_empty());
    }

    #[test]
    fn multi_start_escapes_a_local_basin() {
        // Double well: x = -1 is local (value 0.5), x = 2 global (0).
        let f = |p: &[f64]| ((p[0] + 1.0).powi(2) + 0.5).min((p[0] - 2.0).powi(2));
        let single =
            multi_start_nelder_mead(f, &[-1.2], &[(-4.0, 4.0)], MultiStartConfig::single())
                .unwrap();
        assert!((single.best.x[0] + 1.0).abs() < 1e-3, "{:?}", single.best.x);
        assert_eq!(single.best_start, 0);
        assert_eq!(single.start_values.len(), 1);
        let multi =
            multi_start_nelder_mead(f, &[-1.2], &[(-4.0, 4.0)], MultiStartConfig::new(6)).unwrap();
        assert!((multi.best.x[0] - 2.0).abs() < 1e-3, "{:?}", multi.best.x);
        assert!(multi.best_start > 0);
        assert!(multi.best.value <= single.best.value);
        assert_eq!(multi.start_values.len(), 6);
        assert!(multi.evaluations > single.evaluations);
    }

    #[test]
    fn multi_start_is_identical_across_parallelism_modes() {
        let f = |p: &[f64]| (p[0].sin() * 3.0 + p[0] * p[0] * 0.05) + (p[1] - 1.0).powi(2);
        let bounds = [(-10.0, 10.0), (-3.0, 5.0)];
        let run = |parallelism: Parallelism| {
            multi_start_nelder_mead(
                f,
                &[0.0, 0.0],
                &bounds,
                MultiStartConfig {
                    starts: 7,
                    seed: 99,
                    parallelism,
                    ..MultiStartConfig::default()
                },
            )
            .unwrap()
        };
        let serial = run(Parallelism::Serial);
        for mode in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(5),
            Parallelism::Auto,
        ] {
            let parallel = run(mode);
            assert_eq!(serial, parallel, "{mode:?} diverged");
            // Bit-level, not just PartialEq: the winning point and every
            // per-start objective must carry identical bit patterns.
            assert_eq!(
                serial
                    .best
                    .x
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                parallel
                    .best
                    .x
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
            );
            assert_eq!(
                serial
                    .start_values
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                parallel
                    .start_values
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn multi_start_tie_break_keeps_the_lowest_start_index() {
        // A constant objective ties every start bit-for-bit: start 0 wins.
        let outcome = multi_start_nelder_mead(
            |_: &[f64]| 1.25,
            &[0.5],
            &[(0.0, 1.0)],
            MultiStartConfig::new(5),
        )
        .unwrap();
        assert_eq!(outcome.best_start, 0);
        assert!(outcome.start_values.iter().all(|v| *v == 1.25));
    }

    #[test]
    fn multi_start_validates_inputs() {
        let f = |p: &[f64]| p[0] * p[0];
        // Bounds arity must match the seed.
        assert!(multi_start_nelder_mead(f, &[1.0], &[], MultiStartConfig::new(3)).is_err());
        assert!(
            multi_start_nelder_mead(f, &[1.0], &[(1.0, 0.0)], MultiStartConfig::new(3)).is_err()
        );
        // starts = 0 is treated as a single start.
        let zero = multi_start_nelder_mead(
            f,
            &[1.0],
            &[(-1.0, 1.0)],
            MultiStartConfig {
                starts: 0,
                ..MultiStartConfig::default()
            },
        )
        .unwrap();
        assert_eq!(zero.start_values.len(), 1);
        // A single start generates no grid, so bounds that only shape
        // restarts (here: non-finite) are not validated — threading the
        // config through an existing path changes nothing until the
        // caller raises `starts`.
        let unbounded = multi_start_nelder_mead(
            f,
            &[1.0],
            &[(0.0, f64::INFINITY)],
            MultiStartConfig::single(),
        )
        .unwrap();
        assert!((unbounded.best.x[0]).abs() < 1e-4);
        assert!(
            multi_start_nelder_mead(f, &[1.0], &[(0.0, f64::INFINITY)], MultiStartConfig::new(3))
                .is_err(),
            "a real grid over a non-finite box must still be rejected"
        );
    }
}
