//! Derivative-free minimization: Nelder–Mead simplex, golden-section line
//! search, and grid search.
//!
//! `dlm-core::calibrate` fits the DL parameters (diffusion rate `d`, growth
//! parameters, carrying capacity `K`) by minimizing prediction error over an
//! early observation window — an objective that involves a full PDE solve
//! and therefore has no cheap gradient. Nelder–Mead is the natural tool
//! (and is also what MATLAB's `fminsearch`, the authors' likely companion,
//! implements).

use crate::error::{NumericsError, Result};

/// Result of a minimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct Minimum {
    /// Location of the best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Number of objective evaluations consumed.
    pub evaluations: usize,
    /// Whether the tolerance criterion (rather than the budget) stopped us.
    pub converged: bool,
}

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadConfig {
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex diameter falls below this.
    pub x_tol: f64,
    /// Maximum number of objective evaluations.
    pub max_evals: usize,
    /// Relative size of the initial simplex around the seed point.
    pub initial_scale: f64,
}

impl Default for NelderMeadConfig {
    fn default() -> Self {
        Self {
            f_tol: 1e-10,
            x_tol: 1e-10,
            max_evals: 20_000,
            initial_scale: 0.1,
        }
    }
}

/// Minimizes `f` with the Nelder–Mead downhill simplex method.
///
/// `x0` seeds the simplex; coordinates equal to zero get an absolute
/// perturbation. Non-finite objective values are treated as `+∞`, which lets
/// callers impose hard constraints by returning `f64::INFINITY` outside the
/// feasible region.
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] — empty `x0`.
/// * [`NumericsError::InvalidParameter`] — non-finite seed or bad config.
///
/// # Examples
///
/// ```
/// use dlm_numerics::optimize::{nelder_mead, NelderMeadConfig};
///
/// # fn main() -> Result<(), dlm_numerics::NumericsError> {
/// // Rosenbrock's banana function, minimum at (1, 1).
/// let rosen = |p: &[f64]| {
///     let (x, y) = (p[0], p[1]);
///     (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2)
/// };
/// let m = nelder_mead(rosen, &[-1.2, 1.0], NelderMeadConfig::default())?;
/// assert!((m.x[0] - 1.0).abs() < 1e-4 && (m.x[1] - 1.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    cfg: NelderMeadConfig,
) -> Result<Minimum> {
    let n = x0.len();
    if n == 0 {
        return Err(NumericsError::DimensionMismatch {
            expected: "at least one dimension".into(),
            actual: 0,
        });
    }
    if x0.iter().any(|v| !v.is_finite()) {
        return Err(NumericsError::InvalidParameter {
            name: "x0",
            reason: "seed must be finite".into(),
        });
    }
    if cfg.max_evals == 0 {
        return Err(NumericsError::InvalidParameter {
            name: "max_evals",
            reason: "must be positive".into(),
        });
    }

    // Standard coefficients.
    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let mut evals = 0usize;
    let mut eval = |p: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(p);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    // Build the initial simplex: x0 plus n perturbed vertices.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut v = x0.to_vec();
        let delta = if v[i] != 0.0 {
            cfg.initial_scale * v[i].abs()
        } else {
            cfg.initial_scale
        };
        v[i] += delta;
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| eval(v, &mut evals)).collect();

    let mut converged = false;
    while evals < cfg.max_evals {
        // Order vertices by objective.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| {
            values[a]
                .partial_cmp(&values[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        // Convergence tests.
        let f_spread = values[worst] - values[best];
        let x_spread = (0..n)
            .map(|i| {
                simplex
                    .iter()
                    .map(|v| v[i])
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), x| {
                        (lo.min(x), hi.max(x))
                    })
            })
            .map(|(lo, hi)| hi - lo)
            .fold(0.0, f64::max);
        // fminsearch-style criterion: require BOTH spreads small. Using
        // "either" stops prematurely whenever two vertices tie in objective.
        if f_spread.is_finite() && f_spread <= cfg.f_tol && x_spread <= cfg.x_tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (idx, v) in simplex.iter().enumerate() {
            if idx == worst {
                continue;
            }
            for i in 0..n {
                centroid[i] += v[i] / n as f64;
            }
        }

        // Reflection.
        let reflected: Vec<f64> = (0..n)
            .map(|i| centroid[i] + ALPHA * (centroid[i] - simplex[worst][i]))
            .collect();
        let f_reflected = eval(&reflected, &mut evals);

        if f_reflected < values[best] {
            // Expansion.
            let expanded: Vec<f64> = (0..n)
                .map(|i| centroid[i] + GAMMA * (reflected[i] - centroid[i]))
                .collect();
            let f_expanded = eval(&expanded, &mut evals);
            if f_expanded < f_reflected {
                simplex[worst] = expanded;
                values[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            }
        } else if f_reflected < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = f_reflected;
        } else {
            // Contraction (outside if the reflection improved on the worst).
            let (base, f_base) = if f_reflected < values[worst] {
                (&reflected, f_reflected)
            } else {
                (&simplex[worst].clone(), values[worst])
            };
            let contracted: Vec<f64> = (0..n)
                .map(|i| centroid[i] + RHO * (base[i] - centroid[i]))
                .collect();
            let f_contracted = eval(&contracted, &mut evals);
            if f_contracted < f_base {
                simplex[worst] = contracted;
                values[worst] = f_contracted;
            } else {
                // Shrink toward the best vertex.
                let best_v = simplex[best].clone();
                for (idx, v) in simplex.iter_mut().enumerate() {
                    if idx == best {
                        continue;
                    }
                    for i in 0..n {
                        v[i] = best_v[i] + SIGMA * (v[i] - best_v[i]);
                    }
                }
                for idx in 0..=n {
                    if idx != best {
                        values[idx] = eval(&simplex[idx].clone(), &mut evals);
                    }
                }
            }
        }
    }

    let (best_idx, _) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("simplex nonempty");
    Ok(Minimum {
        x: simplex[best_idx].clone(),
        value: values[best_idx],
        evaluations: evals,
        converged,
    })
}

/// Minimizes a unimodal scalar function on `[lo, hi]` by golden-section
/// search.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidParameter`] if the interval is empty or
/// not finite.
pub fn golden_section<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    x_tol: f64,
) -> Result<(f64, f64)> {
    if !(lo.is_finite() && hi.is_finite()) || hi <= lo {
        return Err(NumericsError::InvalidParameter {
            name: "interval",
            reason: format!("need finite lo < hi, got [{lo}, {hi}]"),
        });
    }
    let inv_phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > x_tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    let v = f(x);
    Ok((x, v))
}

/// Exhaustive grid search over axis-aligned parameter ranges.
///
/// `ranges` gives `(lo, hi)` per dimension; `points_per_dim` grid points are
/// placed on each axis (inclusive of both ends). Returns the best grid point.
/// Intended for coarse seeding of [`nelder_mead`].
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] — empty `ranges`.
/// * [`NumericsError::InvalidParameter`] — `points_per_dim < 2` or a bad
///   range.
pub fn grid_search<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    ranges: &[(f64, f64)],
    points_per_dim: usize,
) -> Result<Minimum> {
    if ranges.is_empty() {
        return Err(NumericsError::DimensionMismatch {
            expected: "at least one range".into(),
            actual: 0,
        });
    }
    if points_per_dim < 2 {
        return Err(NumericsError::InvalidParameter {
            name: "points_per_dim",
            reason: "need at least 2 points per dimension".into(),
        });
    }
    for &(lo, hi) in ranges {
        if !(lo.is_finite() && hi.is_finite()) || hi < lo {
            return Err(NumericsError::InvalidParameter {
                name: "ranges",
                reason: format!("bad range [{lo}, {hi}]"),
            });
        }
    }

    let dims = ranges.len();
    let mut idx = vec![0usize; dims];
    let mut best_x = vec![0.0; dims];
    let mut best_v = f64::INFINITY;
    let mut evals = 0usize;
    let total = points_per_dim.pow(dims as u32);

    for _ in 0..total {
        let x: Vec<f64> = (0..dims)
            .map(|i| {
                let (lo, hi) = ranges[i];
                lo + (hi - lo) * idx[i] as f64 / (points_per_dim - 1) as f64
            })
            .collect();
        let v = f(&x);
        evals += 1;
        if v.is_finite() && v < best_v {
            best_v = v;
            best_x = x;
        }
        // Odometer increment.
        for digit in idx.iter_mut() {
            *digit += 1;
            if *digit < points_per_dim {
                break;
            }
            *digit = 0;
        }
    }
    Ok(Minimum {
        x: best_x,
        value: best_v,
        evaluations: evals,
        converged: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_quadratic_bowl() {
        let m = nelder_mead(
            |p| (p[0] - 3.0).powi(2) + (p[1] + 1.0).powi(2),
            &[0.0, 0.0],
            NelderMeadConfig::default(),
        )
        .unwrap();
        assert!(m.converged);
        assert!((m.x[0] - 3.0).abs() < 1e-5);
        assert!((m.x[1] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let m = nelder_mead(
            |p| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2),
            &[-1.2, 1.0],
            NelderMeadConfig::default(),
        )
        .unwrap();
        assert!((m.x[0] - 1.0).abs() < 1e-4, "{:?}", m.x);
        assert!((m.x[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_1d() {
        let m = nelder_mead(
            |p| (p[0] - 0.5).powi(2) + 2.0,
            &[10.0],
            NelderMeadConfig::default(),
        )
        .unwrap();
        assert!((m.x[0] - 0.5).abs() < 1e-4);
        assert!((m.value - 2.0).abs() < 1e-8);
    }

    #[test]
    fn nelder_mead_respects_infinity_constraints() {
        // Constrain x >= 1 by returning infinity below it; minimum of (x-0)² then sits at 1.
        let m = nelder_mead(
            |p| {
                if p[0] < 1.0 {
                    f64::INFINITY
                } else {
                    p[0] * p[0]
                }
            },
            &[3.0],
            NelderMeadConfig::default(),
        )
        .unwrap();
        assert!((m.x[0] - 1.0).abs() < 1e-4, "{:?}", m.x);
    }

    #[test]
    fn nelder_mead_budget_is_respected() {
        let cfg = NelderMeadConfig {
            max_evals: 40,
            f_tol: 0.0,
            x_tol: 0.0,
            ..NelderMeadConfig::default()
        };
        let m = nelder_mead(
            |p| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2),
            &[-1.2, 1.0],
            cfg,
        )
        .unwrap();
        assert!(!m.converged);
        assert!(m.evaluations <= 45); // small overshoot within one iteration allowed
    }

    #[test]
    fn nelder_mead_rejects_empty_seed() {
        assert!(nelder_mead(|_| 0.0, &[], NelderMeadConfig::default()).is_err());
    }

    #[test]
    fn nelder_mead_rejects_nan_seed() {
        assert!(nelder_mead(|p| p[0], &[f64::NAN], NelderMeadConfig::default()).is_err());
    }

    #[test]
    fn golden_section_parabola() {
        let (x, v) = golden_section(|x| (x - 2.0).powi(2) + 1.0, -10.0, 10.0, 1e-10).unwrap();
        // Golden section cannot localize a quadratic minimum below ~sqrt(eps).
        assert!((x - 2.0).abs() < 1e-6);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_asymmetric_function() {
        let (x, _) = golden_section(|x: f64| x.exp() - 2.0 * x, 0.0, 2.0, 1e-10).unwrap();
        assert!((x - (2.0f64).ln()).abs() < 1e-7);
    }

    #[test]
    fn golden_section_rejects_bad_interval() {
        assert!(golden_section(|x| x, 1.0, 1.0, 1e-8).is_err());
    }

    #[test]
    fn grid_search_finds_best_cell() {
        let m = grid_search(
            |p| (p[0] - 0.5).powi(2) + (p[1] - 0.25).powi(2),
            &[(0.0, 1.0), (0.0, 1.0)],
            5,
        )
        .unwrap();
        assert_eq!(m.evaluations, 25);
        assert!((m.x[0] - 0.5).abs() < 1e-12); // 0.5 is exactly on the 5-point grid
        assert!((m.x[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn grid_search_then_nelder_mead_refinement() {
        let f = |p: &[f64]| (p[0] - 0.013).powi(2) + (p[1] - 24.7).powi(2);
        let coarse = grid_search(f, &[(0.0, 0.1), (0.0, 100.0)], 6).unwrap();
        let fine = nelder_mead(f, &coarse.x, NelderMeadConfig::default()).unwrap();
        // Nelder-Mead x-precision scales like sqrt(f_tol) on quadratics.
        assert!((fine.x[0] - 0.013).abs() < 1e-4);
        assert!((fine.x[1] - 24.7).abs() < 1e-4);
    }

    #[test]
    fn grid_search_rejects_degenerate() {
        assert!(grid_search(|_| 0.0, &[], 3).is_err());
        assert!(grid_search(|_| 0.0, &[(0.0, 1.0)], 1).is_err());
    }
}
