//! A small work-stealing executor for embarrassingly parallel grids.
//!
//! The evaluation layer runs models × cascades grids whose cells are
//! independent and pure, so the only scheduling problem is load balance:
//! a calibrated-DL fit costs orders of magnitude more than a naive
//! baseline. [`parallel_map`] hand-rolls the classic solution — scoped
//! worker threads over chunked per-worker deques, idle workers stealing
//! from the back of a victim's deque — because the build environment is
//! fully offline (no rayon).
//!
//! Determinism: results are keyed by item index and reassembled in input
//! order, so the output of [`parallel_map`] is identical for every
//! [`Parallelism`] setting; only wall-clock changes. Workers never spawn
//! new work, so queue exhaustion is the (race-free) termination
//! condition.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::Mutex;

/// How many worker threads a parallel region may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Run on the calling thread only.
    Serial,
    /// One worker per available hardware thread.
    #[default]
    Auto,
    /// Exactly `n` workers (`0` is treated as `1`).
    Fixed(usize),
}

impl Parallelism {
    /// The number of workers to spawn for `jobs` independent jobs —
    /// never more workers than jobs, never fewer than one.
    #[must_use]
    pub fn workers(self, jobs: usize) -> usize {
        let requested = match self {
            Self::Serial => 1,
            Self::Auto => std::thread::available_parallelism().map_or(1, NonZeroUsize::get),
            Self::Fixed(n) => n.max(1),
        };
        requested.min(jobs).max(1)
    }
}

/// Pops the next chunk for worker `me`: front of its own deque first
/// (cache-friendly FIFO through its dealt range), then the back of the
/// first non-empty victim (classic steal side).
fn pop_or_steal(queues: &[Mutex<VecDeque<Range<usize>>>], me: usize) -> Option<Range<usize>> {
    if let Some(chunk) = queues[me].lock().expect("pool queue poisoned").pop_front() {
        return Some(chunk);
    }
    for offset in 1..queues.len() {
        let victim = (me + offset) % queues.len();
        if let Some(chunk) = queues[victim]
            .lock()
            .expect("pool queue poisoned")
            .pop_back()
        {
            return Some(chunk);
        }
    }
    None
}

/// Applies `f` to every item and returns the results in input order.
///
/// `f` receives `(index, &item)` and must be pure with respect to
/// ordering: it may run on any worker at any time. Panics in `f`
/// propagate to the caller once all workers have stopped.
pub fn parallel_map<T, R, F>(parallelism: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = parallelism.workers(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    // Chunk the index space. Small chunks keep the steal granularity
    // fine enough to balance wildly uneven job costs; the floor of 1
    // makes every grid cell independently stealable when jobs are few
    // and coarse (the evaluation-pipeline regime).
    let chunk_len = (items.len() / (workers * 8)).max(1);
    let queues: Vec<Mutex<VecDeque<Range<usize>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let mut start = 0;
    let mut dealt = 0usize;
    while start < items.len() {
        let end = (start + chunk_len).min(items.len());
        queues[dealt % workers]
            .lock()
            .expect("pool queue poisoned")
            .push_back(start..end);
        start = end;
        dealt += 1;
    }

    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let collected = &collected;
            let f = &f;
            scope.spawn(move || {
                let mut local: Vec<(usize, R)> = Vec::new();
                while let Some(chunk) = pop_or_steal(queues, me) {
                    for i in chunk {
                        local.push((i, f(i, &items[i])));
                    }
                }
                collected
                    .lock()
                    .expect("pool results poisoned")
                    .append(&mut local);
            });
        }
    });

    let mut collected = collected.into_inner().expect("pool results poisoned");
    debug_assert_eq!(collected.len(), items.len());
    collected.sort_unstable_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_respect_mode_and_job_count() {
        assert_eq!(Parallelism::Serial.workers(100), 1);
        assert_eq!(Parallelism::Fixed(4).workers(100), 4);
        assert_eq!(Parallelism::Fixed(4).workers(2), 2);
        assert_eq!(Parallelism::Fixed(0).workers(5), 1);
        assert_eq!(Parallelism::Fixed(3).workers(0), 1);
        assert!(Parallelism::Auto.workers(usize::MAX) >= 1);
    }

    #[test]
    fn map_preserves_input_order_in_every_mode() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for mode in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Fixed(2),
            Parallelism::Fixed(7),
            Parallelism::Fixed(64),
        ] {
            let got = parallel_map(mode, &items, |_, &x| x * x);
            assert_eq!(got, expect, "mode {mode:?}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(Parallelism::Fixed(8), &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(Parallelism::Auto, &[41], |_, &x| x + 1), [42]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..counters.len()).collect();
        parallel_map(Parallelism::Fixed(5), &items, |_, &i| {
            counters[i].fetch_add(1, Ordering::Relaxed)
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn uneven_workloads_finish_and_stay_ordered() {
        // A few very expensive items at the front force stealing: worker
        // 0 gets stuck early while others drain the rest of the grid.
        let items: Vec<usize> = (0..64).collect();
        let got = parallel_map(Parallelism::Fixed(4), &items, |_, &i| {
            if i < 3 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * 2
        });
        let expect: Vec<usize> = items.iter().map(|i| i * 2).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn index_argument_matches_item_position() {
        let items = ["a", "b", "c", "d"];
        let got = parallel_map(Parallelism::Fixed(2), &items, |i, &s| format!("{i}{s}"));
        assert_eq!(got, ["0a", "1b", "2c", "3d"]);
    }
}
