//! Numerical integration of sampled and functional data.
//!
//! Used by the experiments to compute aggregate influence mass
//! `∫ I(x, t) dx` across distances and to normalize density profiles.

use crate::error::{NumericsError, Result};

/// Composite trapezoid rule over the sampled points `(x_i, y_i)`.
///
/// The abscissae need not be evenly spaced but must be strictly increasing.
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] — fewer than 2 samples or
///   mismatched lengths.
/// * [`NumericsError::UnsortedKnots`] — `x` not strictly increasing.
///
/// # Examples
///
/// ```
/// use dlm_numerics::quadrature::trapezoid;
///
/// # fn main() -> Result<(), dlm_numerics::NumericsError> {
/// let x = [0.0, 1.0, 2.0];
/// let y = [0.0, 1.0, 2.0];
/// assert!((trapezoid(&x, &y)? - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn trapezoid(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() < 2 {
        return Err(NumericsError::DimensionMismatch {
            expected: "at least 2 samples".into(),
            actual: x.len(),
        });
    }
    if x.len() != y.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("y length {}", x.len()),
            actual: y.len(),
        });
    }
    let mut acc = 0.0;
    for i in 0..x.len() - 1 {
        let h = x[i + 1] - x[i];
        if h <= 0.0 {
            return Err(NumericsError::UnsortedKnots { index: i });
        }
        acc += 0.5 * h * (y[i] + y[i + 1]);
    }
    Ok(acc)
}

/// Composite Simpson rule for a function `f` on `[a, b]` with `intervals`
/// subintervals (rounded up to even).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidParameter`] for an empty/invalid interval
/// or `intervals == 0`.
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, intervals: usize) -> Result<f64> {
    if !(a.is_finite() && b.is_finite()) || b <= a {
        return Err(NumericsError::InvalidParameter {
            name: "interval",
            reason: format!("need finite a < b, got [{a}, {b}]"),
        });
    }
    if intervals == 0 {
        return Err(NumericsError::InvalidParameter {
            name: "intervals",
            reason: "must be positive".into(),
        });
    }
    let n = if intervals.is_multiple_of(2) {
        intervals
    } else {
        intervals + 1
    };
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        acc += if i % 2 == 1 { 4.0 } else { 2.0 } * f(x);
    }
    Ok(acc * h / 3.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_linear_exact() {
        let x = [0.0, 0.5, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        // ∫₀³ (2x+1) dx = 9 + 3 = 12.
        assert!((trapezoid(&x, &y).unwrap() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_rejects_short_input() {
        assert!(trapezoid(&[0.0], &[1.0]).is_err());
    }

    #[test]
    fn trapezoid_rejects_unsorted() {
        let err = trapezoid(&[0.0, 2.0, 1.0], &[0.0, 0.0, 0.0]).unwrap_err();
        assert!(matches!(err, NumericsError::UnsortedKnots { index: 1 }));
    }

    #[test]
    fn trapezoid_rejects_mismatched_lengths() {
        assert!(trapezoid(&[0.0, 1.0], &[0.0]).is_err());
    }

    #[test]
    fn simpson_cubic_exact() {
        // Simpson is exact for cubics: ∫₀² x³ dx = 4.
        let v = simpson(|x| x * x * x, 0.0, 2.0, 2).unwrap();
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn simpson_sine_high_accuracy() {
        let v = simpson(|x| x.sin(), 0.0, std::f64::consts::PI, 100).unwrap();
        assert!((v - 2.0).abs() < 1e-7);
    }

    #[test]
    fn simpson_rounds_odd_interval_count_up() {
        let v = simpson(|x| x, 0.0, 1.0, 3).unwrap();
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simpson_rejects_bad_interval() {
        assert!(simpson(|x| x, 1.0, 0.0, 10).is_err());
        assert!(simpson(|x| x, 0.0, 1.0, 0).is_err());
    }
}
