//! Scalar root finding: bisection, Newton, and Brent's method.
//!
//! Used by `dlm-core` for inverting the logistic closed form (saturation
//! times) and by the calibration code for one-dimensional sub-problems.

use crate::error::{NumericsError, Result};

/// Stopping tolerances for the scalar root finders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootConfig {
    /// Absolute tolerance on the root location.
    pub x_tol: f64,
    /// Absolute tolerance on the function value.
    pub f_tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
}

impl Default for RootConfig {
    fn default() -> Self {
        Self {
            x_tol: 1e-12,
            f_tol: 1e-12,
            max_iter: 200,
        }
    }
}

fn check_bracket(f_lo: f64, f_hi: f64) -> Result<()> {
    if !(f_lo.is_finite() && f_hi.is_finite()) {
        return Err(NumericsError::NonFiniteValue {
            context: "bracket endpoints".into(),
        });
    }
    if f_lo * f_hi > 0.0 {
        return Err(NumericsError::InvalidBracket { f_lo, f_hi });
    }
    Ok(())
}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Robust (always converges on a valid bracket) but linear. ~60 iterations
/// resolve any double-precision bracket.
///
/// # Errors
///
/// * [`NumericsError::InvalidBracket`] — `f(lo)` and `f(hi)` have the same
///   sign.
/// * [`NumericsError::NoConvergence`] — iteration budget exhausted (only
///   possible with extreme tolerances).
///
/// # Examples
///
/// ```
/// use dlm_numerics::rootfind::{bisect, RootConfig};
///
/// # fn main() -> Result<(), dlm_numerics::NumericsError> {
/// let root = bisect(|x| x * x - 2.0, 0.0, 2.0, RootConfig::default())?;
/// assert!((root - 2.0f64.sqrt()).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn bisect<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, cfg: RootConfig) -> Result<f64> {
    let (mut lo, mut hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    check_bracket(f_lo, f_hi)?;
    if f_lo == 0.0 {
        return Ok(lo);
    }
    if f_hi == 0.0 {
        return Ok(hi);
    }
    for _ in 0..cfg.max_iter {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if f_mid.abs() <= cfg.f_tol || (hi - lo) * 0.5 <= cfg.x_tol {
            return Ok(mid);
        }
        if f_lo * f_mid < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            f_lo = f_mid;
        }
    }
    Err(NumericsError::NoConvergence {
        algorithm: "bisection",
        iterations: cfg.max_iter,
        residual: hi - lo,
    })
}

/// Finds a root of `f` by Newton's method from the initial guess `x0`,
/// given the derivative `df`.
///
/// Quadratic convergence near simple roots; may diverge from poor guesses —
/// use [`brent`] when a bracket is available.
///
/// # Errors
///
/// * [`NumericsError::InvalidParameter`] — derivative vanished at an iterate.
/// * [`NumericsError::NoConvergence`] — iteration budget exhausted.
/// * [`NumericsError::NonFiniteValue`] — iterate left the finite domain.
pub fn newton<F, D>(f: F, df: D, x0: f64, cfg: RootConfig) -> Result<f64>
where
    F: Fn(f64) -> f64,
    D: Fn(f64) -> f64,
{
    let mut x = x0;
    for _ in 0..cfg.max_iter {
        let fx = f(x);
        if !fx.is_finite() {
            return Err(NumericsError::NonFiniteValue {
                context: format!("newton f({x})"),
            });
        }
        if fx.abs() <= cfg.f_tol {
            return Ok(x);
        }
        let dfx = df(x);
        if dfx == 0.0 || !dfx.is_finite() {
            return Err(NumericsError::InvalidParameter {
                name: "derivative",
                reason: format!("vanishing/non-finite derivative at x = {x}"),
            });
        }
        let step = fx / dfx;
        x -= step;
        if step.abs() <= cfg.x_tol {
            return Ok(x);
        }
    }
    Err(NumericsError::NoConvergence {
        algorithm: "newton",
        iterations: cfg.max_iter,
        residual: f(x).abs(),
    })
}

/// Finds a root of `f` in `[lo, hi]` with Brent's method — inverse quadratic
/// interpolation guarded by bisection. Superlinear *and* globally convergent.
///
/// # Errors
///
/// * [`NumericsError::InvalidBracket`] — endpoints do not bracket a root.
/// * [`NumericsError::NoConvergence`] — iteration budget exhausted.
pub fn brent<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, cfg: RootConfig) -> Result<f64> {
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    check_bracket(fa, fb)?;
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..cfg.max_iter {
        if fb.abs() <= cfg.f_tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let bracket_lo = (3.0 * a + b) / 4.0;
        let use_bisect = !(bracket_lo.min(b) < s && s < bracket_lo.max(b))
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= d.abs() / 2.0)
            || (mflag && (b - c).abs() < cfg.x_tol)
            || (!mflag && d.abs() < cfg.x_tol);
        if use_bisect {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = b - c;
        c = b;
        fc = fb;
        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
        if (a - b).abs() <= cfg.x_tol {
            return Ok(b);
        }
    }
    Err(NumericsError::NoConvergence {
        algorithm: "brent",
        iterations: cfg.max_iter,
        residual: fb.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, RootConfig::default()).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_handles_reversed_interval() {
        let r = bisect(|x| x - 1.0, 3.0, 0.0, RootConfig::default()).unwrap();
        assert!((r - 1.0).abs() < 1e-10);
    }

    #[test]
    fn bisect_exact_endpoint_root() {
        let r = bisect(|x| x, 0.0, 1.0, RootConfig::default()).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn bisect_rejects_non_bracketing() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, RootConfig::default()).unwrap_err();
        assert!(matches!(err, NumericsError::InvalidBracket { .. }));
    }

    #[test]
    fn newton_cube_root() {
        let r = newton(
            |x| x * x * x - 27.0,
            |x| 3.0 * x * x,
            5.0,
            RootConfig::default(),
        )
        .unwrap();
        assert!((r - 3.0).abs() < 1e-10);
    }

    #[test]
    fn newton_detects_zero_derivative() {
        let err = newton(|x| x * x + 1.0, |x| 2.0 * x, 0.0, RootConfig::default()).unwrap_err();
        assert!(matches!(err, NumericsError::InvalidParameter { .. }));
    }

    #[test]
    fn newton_quadratic_convergence_is_fast() {
        let cfg = RootConfig {
            max_iter: 8,
            ..RootConfig::default()
        };
        let r = newton(|x| x * x - 2.0, |x| 2.0 * x, 1.5, cfg).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn brent_transcendental_root() {
        // cos(x) = x near 0.739085.
        let r = brent(|x| x.cos() - x, 0.0, 1.0, RootConfig::default()).unwrap();
        assert!((r - 0.739_085_133_215_160_6).abs() < 1e-9);
    }

    #[test]
    fn brent_high_multiplicity_still_converges() {
        let cfg = RootConfig {
            f_tol: 1e-14,
            x_tol: 1e-9,
            ..RootConfig::default()
        };
        let r = brent(|x| (x - 1.0).powi(3), 0.0, 3.0, cfg).unwrap();
        assert!((r - 1.0).abs() < 1e-3); // cubic root: reduced accuracy is expected
    }

    #[test]
    fn brent_rejects_non_bracketing() {
        let err = brent(|x| x * x + 0.5, -1.0, 1.0, RootConfig::default()).unwrap_err();
        assert!(matches!(err, NumericsError::InvalidBracket { .. }));
    }

    #[test]
    fn brent_matches_bisect_on_logistic_inverse() {
        // Solve K/(1+c·e^{-rt}) = y for t: the saturation-time inversion used
        // by dlm-core.
        let (k, c, r, y) = (25.0, 11.5, 0.8, 20.0);
        let f = |t: f64| k / (1.0 + c * (-r * t).exp()) - y;
        let t1 = brent(f, 0.0, 50.0, RootConfig::default()).unwrap();
        let t2 = bisect(f, 0.0, 50.0, RootConfig::default()).unwrap();
        assert!((t1 - t2).abs() < 1e-8);
        // Analytic check.
        let exact = -(1.0 / r) * ((k / y - 1.0) / c).ln();
        assert!((t1 - exact).abs() < 1e-9);
    }
}
