//! Cubic spline interpolation.
//!
//! The paper constructs the initial density function `φ(x)` by cubic-spline
//! interpolation of the discrete hour-1 densities (MATLAB's spline package),
//! then flattens the two ends so that `φ′(l) = φ′(L) = 0` — which is exactly
//! a *clamped* spline with zero end slopes. This module provides:
//!
//! * [`CubicSpline::natural`] — natural boundary (`φ″ = 0` at the ends);
//! * [`CubicSpline::clamped`] — prescribed end slopes (`φ′` at the ends),
//!   with [`CubicSpline::clamped_flat`] as the zero-slope convenience the DL
//!   model uses;
//! * [`Pchip`] — the Fritsch–Carlson monotone piecewise-cubic interpolant,
//!   used by the φ-construction ablation experiment.
//!
//! All interpolants evaluate value, first and second derivative, and a
//! definite integral.

use crate::error::{NumericsError, Result};
use crate::tridiag::solve_thomas;

fn validate_knots(x: &[f64], y: &[f64], min_len: usize) -> Result<()> {
    if x.len() < min_len {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("at least {min_len} knots"),
            actual: x.len(),
        });
    }
    if x.len() != y.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("y length {}", x.len()),
            actual: y.len(),
        });
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(NumericsError::NonFiniteValue {
            context: "spline knots".into(),
        });
    }
    for i in 0..x.len() - 1 {
        if x[i] >= x[i + 1] {
            return Err(NumericsError::UnsortedKnots { index: i });
        }
    }
    Ok(())
}

/// Locates the interval index `i` such that `x[i] <= t < x[i+1]`, clamping
/// out-of-range queries to the first/last interval (i.e. extrapolation uses
/// the boundary polynomial).
fn locate(x: &[f64], t: f64) -> usize {
    let n = x.len();
    if t <= x[0] {
        return 0;
    }
    if t >= x[n - 1] {
        return n - 2;
    }
    // Binary search for the right interval.
    let mut lo = 0usize;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if x[mid] <= t {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Boundary condition used to close the cubic-spline tridiagonal system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SplineBoundary {
    /// Second derivative is zero at both ends ("natural" spline).
    Natural,
    /// First derivative is prescribed at the two ends.
    Clamped {
        /// Slope at the left end, `s′(x₀)`.
        left: f64,
        /// Slope at the right end, `s′(x_{n−1})`.
        right: f64,
    },
}

/// A C² piecewise-cubic interpolant through `(x_i, y_i)` knots.
///
/// # Examples
///
/// ```
/// use dlm_numerics::spline::CubicSpline;
///
/// # fn main() -> Result<(), dlm_numerics::NumericsError> {
/// // The paper's φ: interpolate hour-1 densities with flat ends.
/// let hops = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let density = [2.1, 0.7, 0.9, 0.5, 0.3];
/// let phi = CubicSpline::clamped_flat(&hops, &density)?;
/// assert!((phi.value(3.0) - 0.9).abs() < 1e-12); // interpolates knots
/// assert!(phi.derivative(1.0).abs() < 1e-10);     // flat left end
/// assert!(phi.derivative(5.0).abs() < 1e-10);     // flat right end
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CubicSpline {
    x: Vec<f64>,
    y: Vec<f64>,
    /// Second derivatives at the knots.
    m: Vec<f64>,
}

impl CubicSpline {
    /// Builds a spline with the given boundary condition.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] — fewer than 2 knots or
    ///   `x.len() != y.len()`.
    /// * [`NumericsError::UnsortedKnots`] — `x` not strictly increasing.
    /// * [`NumericsError::NonFiniteValue`] — NaN/∞ in the inputs.
    pub fn with_boundary(x: &[f64], y: &[f64], boundary: SplineBoundary) -> Result<Self> {
        validate_knots(x, y, 2)?;
        let n = x.len();

        if n == 2 {
            // A single interval: natural spline degenerates to a line; the
            // clamped case is solved exactly by the 2×2 Hermite system.
            let m = match boundary {
                SplineBoundary::Natural => vec![0.0, 0.0],
                SplineBoundary::Clamped { left, right } => {
                    // Solve [2h, h; h, 2h]·[m0, m1]ᵀ = 6·[d−left, right−d]ᵀ,
                    // the clamped-spline system restricted to one interval.
                    let h = x[1] - x[0];
                    let d = (y[1] - y[0]) / h;
                    let b0 = 6.0 * (d - left);
                    let b1 = 6.0 * (right - d);
                    let m0 = (2.0 * b0 - b1) / (3.0 * h);
                    let m1 = (2.0 * b1 - b0) / (3.0 * h);
                    vec![m0, m1]
                }
            };
            return Ok(Self {
                x: x.to_vec(),
                y: y.to_vec(),
                m,
            });
        }

        // Assemble the tridiagonal system for the knot second derivatives m_i:
        //   h_{i-1}·m_{i-1} + 2(h_{i-1}+h_i)·m_i + h_i·m_{i+1}
        //     = 6·((y_{i+1}−y_i)/h_i − (y_i−y_{i-1})/h_{i-1})
        let h: Vec<f64> = (0..n - 1).map(|i| x[i + 1] - x[i]).collect();
        let mut sub = vec![0.0; n - 1];
        let mut diag = vec![0.0; n];
        let mut sup = vec![0.0; n - 1];
        let mut rhs = vec![0.0; n];

        for i in 1..n - 1 {
            sub[i - 1] = h[i - 1];
            diag[i] = 2.0 * (h[i - 1] + h[i]);
            sup[i] = h[i];
            rhs[i] = 6.0 * ((y[i + 1] - y[i]) / h[i] - (y[i] - y[i - 1]) / h[i - 1]);
        }

        match boundary {
            SplineBoundary::Natural => {
                diag[0] = 1.0;
                sup[0] = 0.0;
                rhs[0] = 0.0;
                diag[n - 1] = 1.0;
                sub[n - 2] = 0.0;
                rhs[n - 1] = 0.0;
            }
            SplineBoundary::Clamped { left, right } => {
                diag[0] = 2.0 * h[0];
                sup[0] = h[0];
                rhs[0] = 6.0 * ((y[1] - y[0]) / h[0] - left);
                diag[n - 1] = 2.0 * h[n - 2];
                sub[n - 2] = h[n - 2];
                rhs[n - 1] = 6.0 * (right - (y[n - 1] - y[n - 2]) / h[n - 2]);
            }
        }

        let m = solve_thomas(&sub, &diag, &sup, &rhs)?;
        Ok(Self {
            x: x.to_vec(),
            y: y.to_vec(),
            m,
        })
    }

    /// Builds a natural cubic spline (`s″ = 0` at both ends).
    ///
    /// # Errors
    ///
    /// See [`CubicSpline::with_boundary`].
    pub fn natural(x: &[f64], y: &[f64]) -> Result<Self> {
        Self::with_boundary(x, y, SplineBoundary::Natural)
    }

    /// Builds a clamped cubic spline with prescribed end slopes.
    ///
    /// # Errors
    ///
    /// See [`CubicSpline::with_boundary`].
    pub fn clamped(x: &[f64], y: &[f64], left_slope: f64, right_slope: f64) -> Result<Self> {
        Self::with_boundary(
            x,
            y,
            SplineBoundary::Clamped {
                left: left_slope,
                right: right_slope,
            },
        )
    }

    /// Builds the paper's φ-style spline: clamped with **zero** end slopes,
    /// satisfying the DL model's requirement `φ′(l) = φ′(L) = 0`.
    ///
    /// # Errors
    ///
    /// See [`CubicSpline::with_boundary`].
    pub fn clamped_flat(x: &[f64], y: &[f64]) -> Result<Self> {
        Self::clamped(x, y, 0.0, 0.0)
    }

    /// The knot abscissae.
    #[must_use]
    pub fn knots(&self) -> &[f64] {
        &self.x
    }

    /// The knot ordinates.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.y
    }

    /// Domain `[x₀, x_{n−1}]` of the interpolant.
    #[must_use]
    pub fn domain(&self) -> (f64, f64) {
        (self.x[0], self.x[self.x.len() - 1])
    }

    /// Evaluates the spline at `t`. Queries outside the domain extrapolate
    /// with the boundary cubic.
    #[must_use]
    pub fn value(&self, t: f64) -> f64 {
        let i = locate(&self.x, t);
        let h = self.x[i + 1] - self.x[i];
        let a = (self.x[i + 1] - t) / h;
        let b = (t - self.x[i]) / h;
        a * self.y[i]
            + b * self.y[i + 1]
            + ((a * a * a - a) * self.m[i] + (b * b * b - b) * self.m[i + 1]) * h * h / 6.0
    }

    /// Evaluates the first derivative `s′(t)`.
    #[must_use]
    pub fn derivative(&self, t: f64) -> f64 {
        let i = locate(&self.x, t);
        let h = self.x[i + 1] - self.x[i];
        let a = (self.x[i + 1] - t) / h;
        let b = (t - self.x[i]) / h;
        (self.y[i + 1] - self.y[i]) / h
            + ((3.0 * b * b - 1.0) * self.m[i + 1] - (3.0 * a * a - 1.0) * self.m[i]) * h / 6.0
    }

    /// Evaluates the second derivative `s″(t)`.
    #[must_use]
    pub fn second_derivative(&self, t: f64) -> f64 {
        let i = locate(&self.x, t);
        let h = self.x[i + 1] - self.x[i];
        let a = (self.x[i + 1] - t) / h;
        let b = (t - self.x[i]) / h;
        a * self.m[i] + b * self.m[i + 1]
    }

    /// Definite integral `∫_lo^hi s(t) dt` (both bounds clamped to the domain).
    #[must_use]
    pub fn integral(&self, lo: f64, hi: f64) -> f64 {
        if hi < lo {
            return -self.integral(hi, lo);
        }
        let (dlo, dhi) = self.domain();
        let lo = lo.max(dlo);
        let hi = hi.min(dhi);
        if hi <= lo {
            return 0.0;
        }
        let mut acc = 0.0;
        let n = self.x.len();
        for i in 0..n - 1 {
            let seg_lo = self.x[i].max(lo);
            let seg_hi = self.x[i + 1].min(hi);
            if seg_hi <= seg_lo {
                continue;
            }
            acc += self.segment_integral(i, seg_lo, seg_hi);
        }
        acc
    }

    /// Exact integral of segment `i`'s cubic over `[lo, hi] ⊆ [x_i, x_{i+1}]`.
    fn segment_integral(&self, i: usize, lo: f64, hi: f64) -> f64 {
        let h = self.x[i + 1] - self.x[i];
        let anti = |t: f64| -> f64 {
            let a = (self.x[i + 1] - t) / h;
            let b = (t - self.x[i]) / h;
            // Antiderivative of the standard cubic-spline segment form.
            -h * a * a * self.y[i] / 2.0
                + h * b * b * self.y[i + 1] / 2.0
                + h * h
                    * h
                    * ((-(a * a * a * a) / 4.0 + a * a / 2.0) * self.m[i]
                        + (b * b * b * b / 4.0 - b * b / 2.0) * self.m[i + 1])
                    / 6.0
        };
        anti(hi) - anti(lo)
    }

    /// Samples the spline at `count` evenly spaced points across its domain.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2`.
    #[must_use]
    pub fn sample(&self, count: usize) -> Vec<(f64, f64)> {
        assert!(count >= 2, "sample requires count >= 2");
        let (lo, hi) = self.domain();
        (0..count)
            .map(|k| {
                let t = lo + (hi - lo) * (k as f64) / ((count - 1) as f64);
                (t, self.value(t))
            })
            .collect()
    }
}

/// Monotone piecewise-cubic Hermite interpolant (Fritsch–Carlson / PCHIP).
///
/// Unlike [`CubicSpline`], PCHIP never overshoots the data: if the knot
/// values are monotone on a subinterval, so is the interpolant. The DL-model
/// ablation uses it as an alternative φ construction. Only C¹ (the second
/// derivative jumps at knots), so the paper's "twice continuously
/// differentiable" requirement is deliberately relaxed there — that is the
/// point of the ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct Pchip {
    x: Vec<f64>,
    y: Vec<f64>,
    /// First derivatives at knots.
    d: Vec<f64>,
}

impl Pchip {
    /// Builds the Fritsch–Carlson monotone interpolant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CubicSpline::with_boundary`].
    pub fn new(x: &[f64], y: &[f64]) -> Result<Self> {
        validate_knots(x, y, 2)?;
        let n = x.len();
        let h: Vec<f64> = (0..n - 1).map(|i| x[i + 1] - x[i]).collect();
        let delta: Vec<f64> = (0..n - 1).map(|i| (y[i + 1] - y[i]) / h[i]).collect();
        let mut d = vec![0.0; n];

        if n == 2 {
            d[0] = delta[0];
            d[1] = delta[0];
        } else {
            // Interior slopes: weighted harmonic mean where the secants agree
            // in sign, zero otherwise (guarantees monotonicity).
            for i in 1..n - 1 {
                if delta[i - 1] * delta[i] > 0.0 {
                    let w1 = 2.0 * h[i] + h[i - 1];
                    let w2 = h[i] + 2.0 * h[i - 1];
                    d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
                }
            }
            // One-sided three-point end slopes, clipped per Fritsch–Carlson.
            d[0] = pchip_end_slope(h[0], h[1], delta[0], delta[1]);
            d[n - 1] = pchip_end_slope(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
        }
        Ok(Self {
            x: x.to_vec(),
            y: y.to_vec(),
            d,
        })
    }

    /// Domain `[x₀, x_{n−1}]`.
    #[must_use]
    pub fn domain(&self) -> (f64, f64) {
        (self.x[0], self.x[self.x.len() - 1])
    }

    /// Evaluates the interpolant at `t` (clamped extrapolation).
    #[must_use]
    pub fn value(&self, t: f64) -> f64 {
        let i = locate(&self.x, t);
        let h = self.x[i + 1] - self.x[i];
        let s = (t - self.x[i]) / h;
        let (h00, h10, h01, h11) = hermite_basis(s);
        h00 * self.y[i] + h10 * h * self.d[i] + h01 * self.y[i + 1] + h11 * h * self.d[i + 1]
    }

    /// Evaluates the first derivative at `t`.
    #[must_use]
    pub fn derivative(&self, t: f64) -> f64 {
        let i = locate(&self.x, t);
        let h = self.x[i + 1] - self.x[i];
        let s = (t - self.x[i]) / h;
        let dh00 = (6.0 * s * s - 6.0 * s) / h;
        let dh10 = 3.0 * s * s - 4.0 * s + 1.0;
        let dh01 = (-6.0 * s * s + 6.0 * s) / h;
        let dh11 = 3.0 * s * s - 2.0 * s;
        dh00 * self.y[i] + dh10 * self.d[i] + dh01 * self.y[i + 1] + dh11 * self.d[i + 1]
    }
}

fn hermite_basis(s: f64) -> (f64, f64, f64, f64) {
    let s2 = s * s;
    let s3 = s2 * s;
    (
        2.0 * s3 - 3.0 * s2 + 1.0,
        s3 - 2.0 * s2 + s,
        -2.0 * s3 + 3.0 * s2,
        s3 - s2,
    )
}

/// Three-point end slope with the Fritsch–Carlson shape-preserving clip.
fn pchip_end_slope(h0: f64, h1: f64, d0: f64, d1: f64) -> f64 {
    let mut s = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if s * d0 <= 0.0 {
        s = 0.0;
    } else if d0 * d1 < 0.0 && s.abs() > 3.0 * d0.abs() {
        s = 3.0 * d0;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const KNOTS_X: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
    const KNOTS_Y: [f64; 5] = [2.1, 0.7, 0.9, 0.5, 0.3];

    #[test]
    fn natural_spline_interpolates_knots() {
        let s = CubicSpline::natural(&KNOTS_X, &KNOTS_Y).unwrap();
        for (x, y) in KNOTS_X.iter().zip(&KNOTS_Y) {
            assert!((s.value(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn natural_spline_has_zero_end_curvature() {
        let s = CubicSpline::natural(&KNOTS_X, &KNOTS_Y).unwrap();
        assert!(s.second_derivative(1.0).abs() < 1e-10);
        assert!(s.second_derivative(5.0).abs() < 1e-10);
    }

    #[test]
    fn clamped_flat_spline_has_zero_end_slopes() {
        let s = CubicSpline::clamped_flat(&KNOTS_X, &KNOTS_Y).unwrap();
        assert!(s.derivative(1.0).abs() < 1e-10);
        assert!(s.derivative(5.0).abs() < 1e-10);
        for (x, y) in KNOTS_X.iter().zip(&KNOTS_Y) {
            assert!((s.value(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn clamped_spline_reproduces_prescribed_slopes() {
        let s = CubicSpline::clamped(&KNOTS_X, &KNOTS_Y, 1.5, -0.75).unwrap();
        assert!((s.derivative(1.0) - 1.5).abs() < 1e-10);
        assert!((s.derivative(5.0) + 0.75).abs() < 1e-10);
    }

    #[test]
    fn spline_reproduces_cubic_exactly_with_clamped_ends() {
        // s(x) = x³ − 2x² + 3 on [0, 3]; clamped spline with exact end slopes
        // reproduces any cubic exactly.
        let f = |x: f64| x * x * x - 2.0 * x * x + 3.0;
        let df = |x: f64| 3.0 * x * x - 4.0 * x;
        let x: Vec<f64> = (0..7).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = x.iter().map(|&v| f(v)).collect();
        let s = CubicSpline::clamped(&x, &y, df(0.0), df(3.0)).unwrap();
        for k in 0..100 {
            let t = 3.0 * k as f64 / 99.0;
            assert!((s.value(t) - f(t)).abs() < 1e-9, "t = {t}");
            assert!((s.derivative(t) - df(t)).abs() < 1e-8, "t = {t}");
        }
    }

    #[test]
    fn spline_second_derivative_is_continuous_at_knots() {
        let s = CubicSpline::clamped_flat(&KNOTS_X, &KNOTS_Y).unwrap();
        for &k in &KNOTS_X[1..4] {
            let left = s.second_derivative(k - 1e-9);
            let right = s.second_derivative(k + 1e-9);
            assert!(
                (left - right).abs() < 1e-5,
                "jump at {k}: {left} vs {right}"
            );
        }
    }

    #[test]
    fn spline_integral_of_linear_data_is_trapezoid() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 1.0, 2.0, 3.0]; // s(t) = t exactly (natural spline of linear data)
        let s = CubicSpline::natural(&x, &y).unwrap();
        assert!((s.integral(0.0, 3.0) - 4.5).abs() < 1e-12);
        assert!((s.integral(1.0, 2.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn spline_integral_orientation() {
        let x = [0.0, 1.0, 2.0];
        let y = [1.0, 1.0, 1.0];
        let s = CubicSpline::natural(&x, &y).unwrap();
        assert!((s.integral(0.0, 2.0) - 2.0).abs() < 1e-12);
        assert!((s.integral(2.0, 0.0) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_knot_natural_spline_is_linear() {
        let s = CubicSpline::natural(&[0.0, 2.0], &[1.0, 5.0]).unwrap();
        assert!((s.value(1.0) - 3.0).abs() < 1e-12);
        assert!((s.derivative(0.5) - 2.0).abs() < 1e-12);
        assert!(s.second_derivative(1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_unsorted_knots() {
        let err = CubicSpline::natural(&[0.0, 2.0, 1.0], &[0.0, 0.0, 0.0]).unwrap_err();
        assert!(matches!(err, NumericsError::UnsortedKnots { index: 1 }));
    }

    #[test]
    fn rejects_duplicate_knots() {
        let err = CubicSpline::natural(&[0.0, 1.0, 1.0], &[0.0, 0.0, 0.0]).unwrap_err();
        assert!(matches!(err, NumericsError::UnsortedKnots { index: 1 }));
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let err = CubicSpline::natural(&[0.0, 1.0], &[0.0]).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
    }

    #[test]
    fn rejects_nan() {
        let err = CubicSpline::natural(&[0.0, 1.0], &[f64::NAN, 0.0]).unwrap_err();
        assert!(matches!(err, NumericsError::NonFiniteValue { .. }));
    }

    #[test]
    fn extrapolation_uses_boundary_polynomial() {
        let s = CubicSpline::clamped_flat(&KNOTS_X, &KNOTS_Y).unwrap();
        // Just outside the domain the value should be close to the boundary knot.
        assert!((s.value(0.9) - s.value(1.0)).abs() < 0.1);
        assert!((s.value(5.1) - s.value(5.0)).abs() < 0.1);
    }

    #[test]
    fn sample_covers_domain() {
        let s = CubicSpline::natural(&KNOTS_X, &KNOTS_Y).unwrap();
        let pts = s.sample(11);
        assert_eq!(pts.len(), 11);
        assert!((pts[0].0 - 1.0).abs() < 1e-12);
        assert!((pts[10].0 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pchip_interpolates_knots() {
        let p = Pchip::new(&KNOTS_X, &KNOTS_Y).unwrap();
        for (x, y) in KNOTS_X.iter().zip(&KNOTS_Y) {
            assert!((p.value(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn pchip_preserves_monotonicity() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.0, 0.1, 0.2, 3.0, 3.1]; // sharp rise: cubic spline would overshoot
        let p = Pchip::new(&x, &y).unwrap();
        let mut prev = p.value(0.0);
        for k in 1..400 {
            let t = 4.0 * k as f64 / 399.0;
            let v = p.value(t);
            assert!(v >= prev - 1e-12, "non-monotone at t = {t}");
            prev = v;
        }
        // And stays within the data range (no overshoot).
        for k in 0..400 {
            let t = 4.0 * k as f64 / 399.0;
            let v = p.value(t);
            assert!((-1e-12..=3.1 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn pchip_flat_data_stays_flat() {
        let x = [0.0, 1.0, 2.0];
        let y = [2.0, 2.0, 2.0];
        let p = Pchip::new(&x, &y).unwrap();
        for k in 0..=20 {
            let t = 2.0 * k as f64 / 20.0;
            assert!((p.value(t) - 2.0).abs() < 1e-12);
            assert!(p.derivative(t).abs() < 1e-12);
        }
    }

    #[test]
    fn pchip_two_points_is_linear() {
        let p = Pchip::new(&[0.0, 1.0], &[0.0, 2.0]).unwrap();
        assert!((p.value(0.5) - 1.0).abs() < 1e-12);
        assert!((p.derivative(0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pchip_local_extremum_at_sign_change() {
        // Secant sign change ⇒ derivative zero at the interior knot.
        let x = [0.0, 1.0, 2.0];
        let y = [0.0, 1.0, 0.0];
        let p = Pchip::new(&x, &y).unwrap();
        assert!(p.derivative(1.0).abs() < 1e-12);
    }

    #[test]
    fn spline_vs_pchip_on_smooth_data_agree_roughly() {
        let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| (v / 3.0).sin()).collect();
        let s = CubicSpline::natural(&x, &y).unwrap();
        let p = Pchip::new(&x, &y).unwrap();
        for k in 0..80 {
            let t = 8.0 * k as f64 / 79.0;
            assert!((s.value(t) - p.value(t)).abs() < 0.05, "t = {t}");
        }
    }
}
