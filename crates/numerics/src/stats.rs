//! Descriptive statistics and error metrics.
//!
//! The experiment harness reports the paper's Eq.-8 prediction accuracy plus
//! standard regression metrics (MAE, RMSE, MAPE) for the baseline
//! comparisons; this module hosts the shared numeric kernels.

use crate::error::{NumericsError, Result};

/// Arithmetic mean. Returns `None` for empty input.
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Unbiased sample variance (n − 1 denominator). `None` if fewer than 2
/// samples.
#[must_use]
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation. `None` if fewer than 2 samples.
#[must_use]
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Linear-interpolated percentile (`q` in `[0, 100]`). `None` for empty
/// input or out-of-range `q`.
#[must_use]
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&q) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let w = rank - lo as f64;
    Some(sorted[lo] * (1.0 - w) + sorted[hi] * w)
}

/// Median (50th percentile). `None` for empty input.
#[must_use]
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

fn check_pair(pred: &[f64], actual: &[f64]) -> Result<()> {
    if pred.len() != actual.len() {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("actual length {}", pred.len()),
            actual: actual.len(),
        });
    }
    if pred.is_empty() {
        return Err(NumericsError::DimensionMismatch {
            expected: "nonempty series".into(),
            actual: 0,
        });
    }
    Ok(())
}

/// Mean absolute error between predictions and observations.
///
/// # Errors
///
/// [`NumericsError::DimensionMismatch`] on empty or mismatched inputs.
pub fn mae(pred: &[f64], actual: &[f64]) -> Result<f64> {
    check_pair(pred, actual)?;
    Ok(pred
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / pred.len() as f64)
}

/// Root-mean-square error between predictions and observations.
///
/// # Errors
///
/// [`NumericsError::DimensionMismatch`] on empty or mismatched inputs.
pub fn rmse(pred: &[f64], actual: &[f64]) -> Result<f64> {
    check_pair(pred, actual)?;
    let ms = pred
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum::<f64>()
        / pred.len() as f64;
    Ok(ms.sqrt())
}

/// Mean absolute percentage error, skipping observations that are exactly
/// zero (where relative error is undefined).
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] — empty or mismatched inputs.
/// * [`NumericsError::InvalidParameter`] — every observation was zero.
pub fn mape(pred: &[f64], actual: &[f64]) -> Result<f64> {
    check_pair(pred, actual)?;
    let mut acc = 0.0;
    let mut count = 0usize;
    for (p, a) in pred.iter().zip(actual) {
        if *a != 0.0 {
            acc += ((p - a) / a).abs();
            count += 1;
        }
    }
    if count == 0 {
        return Err(NumericsError::InvalidParameter {
            name: "actual",
            reason: "all observations are zero; MAPE undefined".into(),
        });
    }
    Ok(acc / count as f64 * 100.0)
}

/// The paper's Eq.-8 prediction accuracy for a single point, as a fraction
/// in `[0, 1]`: `1 − |pred − actual| / actual`, floored at 0.
///
/// The paper prints Eq. 8 as the relative error but reports values like
/// "98.27%" that are clearly `1 − relative error`; we implement the intended
/// metric. Returns `None` when `actual == 0`.
#[must_use]
pub fn prediction_accuracy(pred: f64, actual: f64) -> Option<f64> {
    if actual == 0.0 {
        return None;
    }
    Some((1.0 - ((pred - actual) / actual).abs()).max(0.0))
}

/// Mean Eq.-8 accuracy across a series, skipping zero observations.
/// `None` if every observation is zero.
#[must_use]
pub fn mean_prediction_accuracy(pred: &[f64], actual: &[f64]) -> Option<f64> {
    let accs: Vec<f64> = pred
        .iter()
        .zip(actual)
        .filter_map(|(p, a)| prediction_accuracy(*p, *a))
        .collect();
    mean(&accs)
}

/// Pearson correlation coefficient. `None` when either series is constant
/// or lengths differ / are < 2.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Simple linear regression `y ≈ slope·x + intercept` by ordinary least
/// squares. `None` when lengths differ, are < 2, or `x` is constant.
#[must_use]
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    Some((slope, my - slope * mx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_and_std_dev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(variance(&[1.0]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(percentile(&xs, -1.0), None);
    }

    #[test]
    fn percentile_unsorted_input_ok() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median(&xs), Some(2.5));
    }

    #[test]
    fn mae_rmse_basic() {
        let pred = [1.0, 2.0, 3.0];
        let actual = [1.0, 1.0, 5.0];
        assert!((mae(&pred, &actual).unwrap() - 1.0).abs() < 1e-12);
        assert!((rmse(&pred, &actual).unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn error_metrics_reject_mismatch() {
        assert!(mae(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rmse(&[], &[]).is_err());
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let pred = [2.0, 1.0];
        let actual = [0.0, 2.0];
        assert!((mape(&pred, &actual).unwrap() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn mape_all_zero_actuals_is_error() {
        assert!(mape(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn prediction_accuracy_matches_paper_semantics() {
        // Perfect prediction → 100%.
        assert_eq!(prediction_accuracy(10.0, 10.0), Some(1.0));
        // 10% relative error → 90%.
        assert!((prediction_accuracy(9.0, 10.0).unwrap() - 0.9).abs() < 1e-12);
        // Error above 100% floors at zero rather than going negative.
        assert_eq!(prediction_accuracy(25.0, 10.0), Some(0.0));
        // Undefined at zero actual.
        assert_eq!(prediction_accuracy(1.0, 0.0), None);
    }

    #[test]
    fn mean_prediction_accuracy_mixes_points() {
        let acc = mean_prediction_accuracy(&[9.0, 11.0], &[10.0, 10.0]).unwrap();
        assert!((acc - 0.9).abs() < 1e-12);
        assert_eq!(mean_prediction_accuracy(&[1.0], &[0.0]), None);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let ys_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_none() {
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn linear_regression_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| -1.5 * x + 4.0).collect();
        let (slope, intercept) = linear_regression(&xs, &ys).unwrap();
        assert!((slope + 1.5).abs() < 1e-12);
        assert!((intercept - 4.0).abs() < 1e-12);
    }
}
