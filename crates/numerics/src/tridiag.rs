//! Tridiagonal linear systems.
//!
//! The Crank–Nicolson discretization of the diffusive logistic equation
//! produces a tridiagonal Jacobian at every Newton step, so a fast, robust
//! tridiagonal solver is the workhorse of the whole reproduction. Two
//! algorithms are provided:
//!
//! * [`solve_thomas`] — the classic O(n) Thomas algorithm (no pivoting;
//!   requires diagonal dominance or positive definiteness to be stable).
//! * [`TridiagonalMatrix::solve`] — LU with partial pivoting specialised to
//!   banded storage, stable for any nonsingular tridiagonal system at the
//!   cost of one extra superdiagonal of fill-in.

use crate::error::{NumericsError, Result};

/// A tridiagonal matrix stored as three diagonals.
///
/// For an `n × n` system the sub- and superdiagonal have length `n - 1` and
/// the main diagonal has length `n`.
///
/// # Examples
///
/// ```
/// use dlm_numerics::tridiag::TridiagonalMatrix;
///
/// # fn main() -> Result<(), dlm_numerics::NumericsError> {
/// // [ 2 1 0 ]   [x0]   [3]
/// // [ 1 2 1 ] · [x1] = [4]
/// // [ 0 1 2 ]   [x2]   [3]
/// let m = TridiagonalMatrix::new(vec![1.0, 1.0], vec![2.0, 2.0, 2.0], vec![1.0, 1.0])?;
/// let x = m.solve(&[3.0, 4.0, 3.0])?;
/// for (xi, expect) in x.iter().zip([1.0, 1.0, 1.0]) {
///     assert!((xi - expect).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TridiagonalMatrix {
    sub: Vec<f64>,
    diag: Vec<f64>,
    sup: Vec<f64>,
}

impl TridiagonalMatrix {
    /// Creates a tridiagonal matrix from its three diagonals.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `diag` is empty or the
    /// off-diagonals do not have length `diag.len() - 1`, and
    /// [`NumericsError::NonFiniteValue`] if any entry is NaN or infinite.
    pub fn new(sub: Vec<f64>, diag: Vec<f64>, sup: Vec<f64>) -> Result<Self> {
        if diag.is_empty() {
            return Err(NumericsError::DimensionMismatch {
                expected: "diag length >= 1".into(),
                actual: 0,
            });
        }
        let n = diag.len();
        if sub.len() + 1 != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("sub length {}", n - 1),
                actual: sub.len(),
            });
        }
        if sup.len() + 1 != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("sup length {}", n - 1),
                actual: sup.len(),
            });
        }
        for (name, v) in [("sub", &sub), ("diag", &diag), ("sup", &sup)] {
            if v.iter().any(|x| !x.is_finite()) {
                return Err(NumericsError::NonFiniteValue {
                    context: format!("tridiagonal {name}"),
                });
            }
        }
        Ok(Self { sub, diag, sup })
    }

    /// Dimension `n` of the matrix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.diag.len()
    }

    /// Returns `true` when the matrix is 0×0 (never constructible via `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diag.is_empty()
    }

    /// The subdiagonal (length `n - 1`).
    #[must_use]
    pub fn sub(&self) -> &[f64] {
        &self.sub
    }

    /// The main diagonal (length `n`).
    #[must_use]
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }

    /// The superdiagonal (length `n - 1`).
    #[must_use]
    pub fn sup(&self) -> &[f64] {
        &self.sup
    }

    /// Computes `y = A · x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let n = self.len();
        if x.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("vector length {n}"),
                actual: x.len(),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = self.diag[i] * x[i];
            if i > 0 {
                acc += self.sub[i - 1] * x[i - 1];
            }
            if i + 1 < n {
                acc += self.sup[i] * x[i + 1];
            }
            y[i] = acc;
        }
        Ok(y)
    }

    /// Solves `A · x = rhs` by banded LU with partial pivoting.
    ///
    /// Stable for any nonsingular tridiagonal matrix. Prefer
    /// [`solve_thomas`] when the matrix is known to be diagonally dominant
    /// (as Crank–Nicolson matrices are): it is ~2× faster.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] if `rhs.len() != n`.
    /// * [`NumericsError::SingularMatrix`] if a zero pivot is encountered.
    pub fn solve(&self, rhs: &[f64]) -> Result<Vec<f64>> {
        let n = self.len();
        if rhs.len() != n {
            return Err(NumericsError::DimensionMismatch {
                expected: format!("rhs length {n}"),
                actual: rhs.len(),
            });
        }
        // Banded storage with an extra superdiagonal for pivoting fill-in.
        let mut d = self.diag.clone(); // main
        let mut u1 = self.sup.clone(); // first super
        let mut u2 = vec![0.0; n.saturating_sub(2)]; // second super (fill-in)
        let mut l = self.sub.clone(); // multipliers overwrite sub
        let mut x = rhs.to_vec();

        for k in 0..n - 1 {
            // Partial pivoting between rows k and k+1.
            if l[k].abs() > d[k].abs() {
                // Swap rows k and k+1.
                std::mem::swap(&mut d[k], &mut l[k]);
                // After swap, row k's super entries come from row k+1's diag/super.
                std::mem::swap(&mut u1[k], &mut d[k + 1]);
                if k + 2 < n {
                    std::mem::swap(&mut u2[k], &mut u1[k + 1]);
                }
                x.swap(k, k + 1);
            }
            if d[k] == 0.0 {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            let m = l[k] / d[k];
            d[k + 1] -= m * u1[k];
            if k + 2 < n {
                u1[k + 1] -= m * u2[k];
            }
            x[k + 1] -= m * x[k];
        }
        if d[n - 1] == 0.0 {
            return Err(NumericsError::SingularMatrix { pivot: n - 1 });
        }

        // Back substitution.
        x[n - 1] /= d[n - 1];
        if n >= 2 {
            for i in (0..n - 1).rev() {
                let mut acc = x[i] - u1[i] * x[i + 1];
                if i + 2 < n {
                    acc -= u2[i] * x[i + 2];
                }
                x[i] = acc / d[i];
            }
        }
        Ok(x)
    }

    /// Infinity norm of the matrix (maximum absolute row sum).
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        let n = self.len();
        let mut best: f64 = 0.0;
        for i in 0..n {
            let mut row = self.diag[i].abs();
            if i > 0 {
                row += self.sub[i - 1].abs();
            }
            if i + 1 < n {
                row += self.sup[i].abs();
            }
            best = best.max(row);
        }
        best
    }

    /// Returns `true` if the matrix is strictly diagonally dominant by rows.
    #[must_use]
    pub fn is_diagonally_dominant(&self) -> bool {
        let n = self.len();
        (0..n).all(|i| {
            let mut off = 0.0;
            if i > 0 {
                off += self.sub[i - 1].abs();
            }
            if i + 1 < n {
                off += self.sup[i].abs();
            }
            self.diag[i].abs() > off
        })
    }
}

/// Solves a tridiagonal system with the Thomas algorithm (no pivoting).
///
/// `sub`, `diag`, `sup` are the sub-, main and superdiagonal; `rhs` is the
/// right-hand side. O(n) time, O(n) scratch. The Thomas algorithm is stable
/// when the matrix is diagonally dominant or symmetric positive definite —
/// both hold for the Crank–Nicolson matrices produced by `dlm-core`.
///
/// # Errors
///
/// * [`NumericsError::DimensionMismatch`] on inconsistent lengths.
/// * [`NumericsError::SingularMatrix`] if elimination hits a zero pivot
///   (consider [`TridiagonalMatrix::solve`] in that case).
///
/// # Examples
///
/// ```
/// use dlm_numerics::tridiag::solve_thomas;
///
/// # fn main() -> Result<(), dlm_numerics::NumericsError> {
/// let x = solve_thomas(&[1.0, 1.0], &[2.0, 2.0, 2.0], &[1.0, 1.0], &[3.0, 4.0, 3.0])?;
/// assert!(x.iter().all(|xi| (xi - 1.0).abs() < 1e-12));
/// # Ok(())
/// # }
/// ```
pub fn solve_thomas(sub: &[f64], diag: &[f64], sup: &[f64], rhs: &[f64]) -> Result<Vec<f64>> {
    let n = diag.len();
    if n == 0 {
        return Err(NumericsError::DimensionMismatch {
            expected: "n >= 1".into(),
            actual: 0,
        });
    }
    if sub.len() + 1 != n || sup.len() + 1 != n {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("off-diagonals of length {}", n - 1),
            actual: sub.len().max(sup.len()),
        });
    }
    if rhs.len() != n {
        return Err(NumericsError::DimensionMismatch {
            expected: format!("rhs length {n}"),
            actual: rhs.len(),
        });
    }

    let mut c_star = vec![0.0; n];
    let mut d_star = vec![0.0; n];

    if diag[0] == 0.0 {
        return Err(NumericsError::SingularMatrix { pivot: 0 });
    }
    c_star[0] = if n > 1 { sup[0] / diag[0] } else { 0.0 };
    d_star[0] = rhs[0] / diag[0];

    for i in 1..n {
        let denom = diag[i] - sub[i - 1] * c_star[i - 1];
        if denom == 0.0 {
            return Err(NumericsError::SingularMatrix { pivot: i });
        }
        if i + 1 < n {
            c_star[i] = sup[i] / denom;
        }
        d_star[i] = (rhs[i] - sub[i - 1] * d_star[i - 1]) / denom;
    }

    let mut x = d_star;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= c_star[i] * next;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_inf(m: &TridiagonalMatrix, x: &[f64], rhs: &[f64]) -> f64 {
        let ax = m.mul_vec(x).unwrap();
        ax.iter()
            .zip(rhs)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn thomas_solves_identity() {
        let x = solve_thomas(&[0.0; 3], &[1.0; 4], &[0.0; 3], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn thomas_solves_1x1() {
        let x = solve_thomas(&[], &[4.0], &[], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn thomas_solves_laplacian_like_system() {
        // -1, 2, -1 Poisson matrix with known solution.
        let n = 50;
        let sub = vec![-1.0; n - 1];
        let sup = vec![-1.0; n - 1];
        let diag = vec![2.0; n];
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let m = TridiagonalMatrix::new(sub.clone(), diag.clone(), sup.clone()).unwrap();
        let rhs = m.mul_vec(&x_true).unwrap();
        let x = solve_thomas(&sub, &diag, &sup, &rhs).unwrap();
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn thomas_detects_zero_first_pivot() {
        let err = solve_thomas(&[1.0], &[0.0, 1.0], &[1.0], &[1.0, 1.0]).unwrap_err();
        assert!(matches!(err, NumericsError::SingularMatrix { pivot: 0 }));
    }

    #[test]
    fn thomas_rejects_bad_lengths() {
        let err = solve_thomas(&[1.0, 2.0], &[1.0, 1.0], &[1.0], &[1.0, 1.0]).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
        let err = solve_thomas(&[1.0], &[1.0, 1.0], &[1.0], &[1.0]).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
    }

    #[test]
    fn pivoted_solve_matches_thomas_on_dominant_system() {
        let sub = vec![-0.3, -0.4, -0.1, -0.25];
        let diag = vec![2.0, 2.1, 1.9, 2.2, 2.05];
        let sup = vec![-0.2, -0.15, -0.35, -0.3];
        let rhs = vec![1.0, -2.0, 0.5, 3.0, -1.0];
        let m = TridiagonalMatrix::new(sub.clone(), diag.clone(), sup.clone()).unwrap();
        let x1 = solve_thomas(&sub, &diag, &sup, &rhs).unwrap();
        let x2 = m.solve(&rhs).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-10);
        }
        assert!(residual_inf(&m, &x2, &rhs) < 1e-10);
    }

    #[test]
    fn pivoted_solve_handles_zero_leading_pivot() {
        // Thomas fails on this (diag[0] == 0) but pivoted LU succeeds.
        let m =
            TridiagonalMatrix::new(vec![1.0, 1.0], vec![0.0, 1.0, 2.0], vec![1.0, 1.0]).unwrap();
        let rhs = vec![1.0, 2.0, 3.0];
        assert!(solve_thomas(m.sub(), m.diag(), m.sup(), &rhs).is_err());
        let x = m.solve(&rhs).unwrap();
        assert!(residual_inf(&m, &x, &rhs) < 1e-12);
    }

    #[test]
    fn pivoted_solve_detects_singular() {
        let m = TridiagonalMatrix::new(vec![0.0], vec![0.0, 1.0], vec![0.0]).unwrap();
        assert!(matches!(
            m.solve(&[1.0, 1.0]).unwrap_err(),
            NumericsError::SingularMatrix { .. }
        ));
    }

    #[test]
    fn pivoted_solve_large_random_system_small_residual() {
        // Deterministic pseudo-random entries without pulling in rand.
        let n = 200;
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        let sub: Vec<f64> = (0..n - 1).map(|_| next()).collect();
        let sup: Vec<f64> = (0..n - 1).map(|_| next()).collect();
        let diag: Vec<f64> = (0..n).map(|_| next() * 4.0 + 5.0).collect();
        let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
        let m = TridiagonalMatrix::new(sub, diag, sup).unwrap();
        let x = m.solve(&rhs).unwrap();
        assert!(residual_inf(&m, &x, &rhs) < 1e-10);
    }

    #[test]
    fn new_rejects_non_finite() {
        let err = TridiagonalMatrix::new(vec![f64::NAN], vec![1.0, 1.0], vec![0.0]).unwrap_err();
        assert!(matches!(err, NumericsError::NonFiniteValue { .. }));
    }

    #[test]
    fn new_rejects_empty_diag() {
        let err = TridiagonalMatrix::new(vec![], vec![], vec![]).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
    }

    #[test]
    fn mul_vec_rejects_wrong_length() {
        let m = TridiagonalMatrix::new(vec![1.0], vec![1.0, 1.0], vec![1.0]).unwrap();
        assert!(m.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn diagonal_dominance_detection() {
        let dominant =
            TridiagonalMatrix::new(vec![-1.0, -1.0], vec![3.0, 3.0, 3.0], vec![-1.0, -1.0])
                .unwrap();
        assert!(dominant.is_diagonally_dominant());
        let not = TridiagonalMatrix::new(vec![-2.0, -2.0], vec![3.0, 3.0, 3.0], vec![-2.0, -2.0])
            .unwrap();
        assert!(!not.is_diagonally_dominant());
    }

    #[test]
    fn norm_inf_is_max_row_sum() {
        let m =
            TridiagonalMatrix::new(vec![1.0, -4.0], vec![2.0, -3.0, 0.5], vec![0.5, 1.0]).unwrap();
        // rows: |2|+|0.5| = 2.5 ; |1|+|3|+|1| = 5 ; |4|+|0.5| = 4.5
        assert!((m.norm_inf() - 5.0).abs() < 1e-15);
    }
}
