//! Property-based tests for the numerical substrate.
//!
//! These check algebraic invariants that must hold for *any* valid input,
//! complementing the example-based unit tests in each module.

use dlm_numerics::interp::LinearInterp;
use dlm_numerics::linalg::Matrix;
use dlm_numerics::ode::rk4;
use dlm_numerics::optimize::stratified_starts;
use dlm_numerics::quadrature::trapezoid;
use dlm_numerics::rootfind::{brent, RootConfig};
use dlm_numerics::spline::{CubicSpline, Pchip};
use dlm_numerics::stats::{mean, prediction_accuracy, std_dev};
use dlm_numerics::tridiag::{solve_thomas, TridiagonalMatrix};
use proptest::prelude::*;

/// Strictly increasing knot vector with values in a tame range.
fn knots(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..2.0, min_len..=max_len).prop_map(|gaps| {
        let mut acc = 0.0;
        gaps.iter()
            .map(|g| {
                acc += g;
                acc
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn thomas_solution_satisfies_system(
        n in 3usize..40,
        seed in any::<u64>(),
    ) {
        // Diagonally dominant random system: Thomas must return a vector
        // whose residual is tiny.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        let sub: Vec<f64> = (0..n - 1).map(|_| next()).collect();
        let sup: Vec<f64> = (0..n - 1).map(|_| next()).collect();
        let diag: Vec<f64> = (0..n).map(|_| next() + 4.0).collect();
        let rhs: Vec<f64> = (0..n).map(|_| next() * 3.0).collect();
        let x = solve_thomas(&sub, &diag, &sup, &rhs).unwrap();
        let m = TridiagonalMatrix::new(sub, diag, sup).unwrap();
        let ax = m.mul_vec(&x).unwrap();
        let res = ax.iter().zip(&rhs).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(res < 1e-8, "residual {res}");
    }

    #[test]
    fn pivoted_and_thomas_agree_on_dominant_systems(
        n in 2usize..30,
        seed in any::<u64>(),
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        let sub: Vec<f64> = (0..n - 1).map(|_| next()).collect();
        let sup: Vec<f64> = (0..n - 1).map(|_| next()).collect();
        let diag: Vec<f64> = (0..n).map(|_| next() + 5.0).collect();
        let rhs: Vec<f64> = (0..n).map(|_| next()).collect();
        let x1 = solve_thomas(&sub, &diag, &sup, &rhs).unwrap();
        let m = TridiagonalMatrix::new(sub, diag, sup).unwrap();
        let x2 = m.solve(&rhs).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn spline_interpolates_all_knots(xs in knots(3, 12)) {
        let n = xs.len();
        let ys: Vec<f64> = (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let s = CubicSpline::natural(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((s.value(*x) - y).abs() < 1e-8);
        }
    }

    #[test]
    fn clamped_flat_spline_end_slopes_vanish(
        xs in knots(3, 10),
        scale in 0.1f64..20.0,
    ) {
        let n = xs.len();
        let ys: Vec<f64> = (0..n).map(|i| scale * (((i * 13) % 7) as f64)).collect();
        let s = CubicSpline::clamped_flat(&xs, &ys).unwrap();
        let (lo, hi) = s.domain();
        prop_assert!(s.derivative(lo).abs() < 1e-6 * scale.max(1.0));
        prop_assert!(s.derivative(hi).abs() < 1e-6 * scale.max(1.0));
    }

    #[test]
    fn pchip_never_overshoots_data_range(xs in knots(3, 10)) {
        let n = xs.len();
        let ys: Vec<f64> = (0..n).map(|i| (((i * 29) % 13) as f64) - 6.0).collect();
        let p = Pchip::new(&xs, &ys).unwrap();
        let (ymin, ymax) = ys.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
        let (dlo, dhi) = p.domain();
        for k in 0..200 {
            let t = dlo + (dhi - dlo) * k as f64 / 199.0;
            let v = p.value(t);
            prop_assert!(v >= ymin - 1e-9 && v <= ymax + 1e-9, "t = {t}, v = {v}");
        }
    }

    #[test]
    fn linear_interp_is_bounded_by_neighbouring_knots(xs in knots(2, 10)) {
        let n = xs.len();
        let ys: Vec<f64> = (0..n).map(|i| ((i * 17) % 9) as f64).collect();
        let f = LinearInterp::new(&xs, &ys).unwrap();
        let (lo, hi) = f.domain();
        let (ymin, ymax) = ys.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| {
            (a.min(v), b.max(v))
        });
        for k in 0..100 {
            let t = lo + (hi - lo) * k as f64 / 99.0;
            let v = f.value(t);
            prop_assert!(v >= ymin - 1e-12 && v <= ymax + 1e-12);
        }
    }

    #[test]
    fn trapezoid_is_linear_in_values(xs in knots(2, 8)) {
        let n = xs.len();
        let y1: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let sum: Vec<f64> = y1.iter().zip(&y2).map(|(a, b)| a + b).collect();
        let t1 = trapezoid(&xs, &y1).unwrap();
        let t2 = trapezoid(&xs, &y2).unwrap();
        let ts = trapezoid(&xs, &sum).unwrap();
        prop_assert!((t1 + t2 - ts).abs() < 1e-9);
    }

    #[test]
    fn rk4_linear_system_matches_exponential(lambda in -3.0f64..0.5, y0 in 0.1f64..5.0) {
        let sys = (move |_t: f64, y: &[f64], dy: &mut [f64]| dy[0] = lambda * y[0], 1usize);
        let traj = rk4(&sys, 0.0, 2.0, &[y0], 400).unwrap();
        let (_, y) = traj.last().unwrap();
        let exact = y0 * (lambda * 2.0).exp();
        prop_assert!((y[0] - exact).abs() < 1e-6 * exact.abs().max(1.0));
    }

    #[test]
    fn brent_finds_root_of_shifted_cubic(shift in -5.0f64..5.0) {
        let f = move |x: f64| (x - shift) * ((x - shift) * (x - shift) + 1.0);
        let r = brent(f, shift - 10.0, shift + 10.0, RootConfig::default()).unwrap();
        prop_assert!((r - shift).abs() < 1e-6);
    }

    #[test]
    fn dense_lu_solve_has_small_residual(n in 2usize..15, seed in any::<u64>()) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / ((1u64 << 31) as f64) - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 8.0;
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = a.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        let res = ax.iter().zip(&b).map(|(p, q)| (p - q).abs()).fold(0.0, f64::max);
        prop_assert!(res < 1e-9);
    }

    #[test]
    fn mean_lies_within_range(xs in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn std_dev_is_translation_invariant(
        xs in prop::collection::vec(-50.0f64..50.0, 2..30),
        shift in -100.0f64..100.0,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let s1 = std_dev(&xs).unwrap();
        let s2 = std_dev(&shifted).unwrap();
        prop_assert!((s1 - s2).abs() < 1e-7);
    }

    #[test]
    fn prediction_accuracy_in_unit_interval(pred in -100.0f64..100.0, actual in 0.01f64..100.0) {
        let a = prediction_accuracy(pred, actual).unwrap();
        prop_assert!((0.0..=1.0).contains(&a));
        // Perfect prediction is the unique maximizer.
        let perfect = prediction_accuracy(actual, actual).unwrap();
        prop_assert!(perfect >= a);
    }

    #[test]
    fn multi_start_seeding_stays_inside_bounds(
        seed in any::<u64>(),
        count in 1usize..24,
        raw in prop::collection::vec((-50.0f64..50.0, 0.0f64..100.0), 1..6),
    ) {
        // Arbitrary finite boxes (including degenerate zero-width axes):
        // every generated start coordinate must lie inside its bound,
        // each axis must be stratified (no two starts in one stratum),
        // and the grid must be a pure function of (bounds, count, seed).
        let bounds: Vec<(f64, f64)> = raw.iter().map(|&(lo, w)| (lo, lo + w)).collect();
        let starts = stratified_starts(&bounds, count, seed).unwrap();
        prop_assert_eq!(starts.len(), count);
        for point in &starts {
            prop_assert_eq!(point.len(), bounds.len());
            for (x, &(lo, hi)) in point.iter().zip(&bounds) {
                prop_assert!(*x >= lo && *x <= hi, "{} outside [{lo}, {hi}]", x);
            }
        }
        for (dim, &(lo, hi)) in bounds.iter().enumerate() {
            if hi <= lo {
                continue; // degenerate axis: everything pinned to lo
            }
            let mut strata: Vec<usize> = starts
                .iter()
                .map(|p| ((((p[dim] - lo) / (hi - lo)) * count as f64) as usize).min(count - 1))
                .collect();
            strata.sort_unstable();
            let expect: Vec<usize> = (0..count).collect();
            prop_assert_eq!(strata, expect, "dimension {} not stratified", dim);
        }
        let replay = stratified_starts(&bounds, count, seed).unwrap();
        prop_assert_eq!(starts, replay);
    }

    #[test]
    fn spline_integral_additivity(xs in knots(3, 8)) {
        let n = xs.len();
        let ys: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 * 0.3).collect();
        let s = CubicSpline::natural(&xs, &ys).unwrap();
        let (lo, hi) = s.domain();
        let mid = 0.5 * (lo + hi);
        let whole = s.integral(lo, hi);
        let parts = s.integral(lo, mid) + s.integral(mid, hi);
        prop_assert!((whole - parts).abs() < 1e-8);
    }
}
