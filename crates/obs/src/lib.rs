//! Zero-dependency telemetry core for the `dlm` serving stack.
//!
//! Two halves, both std-only:
//!
//! * **Metrics** — a per-instance [`Registry`] handing out lock-free
//!   [`Counter`] / [`Gauge`] / [`Histogram`] handles. Registration
//!   takes a mutex (cold path, once per handle); every increment after
//!   that is a single relaxed atomic op, so instrumentation stays inert
//!   on the data path. [`Registry::snapshot`] freezes the whole
//!   registry into a plain-data [`MetricsSnapshot`] that merges
//!   bucket-wise across processes and renders as Prometheus-style text
//!   exposition ([`MetricsSnapshot::render`]).
//! * **Logging** — a global leveled facade ([`Level`], [`log`], and the
//!   [`error!`] / [`warn!`] / [`info!`] / [`debug!`] macros) writing
//!   single-line records to stderr, plus [`next_id`] for cheap
//!   process-unique connection/request ids so a slow-request line at
//!   each hop of a routed request can be correlated by `trace` id.
//!
//! The registry is deliberately **not** a global static: tests bind
//! many servers in one process, and each `ServerState` / `RouterState`
//! owns its own registry so their counters never bleed together. Only
//! the log level is global — there is one stderr.

#![warn(missing_docs)]

mod logging;
mod metrics;

pub use logging::{enabled, log, next_id, set_level, Level};
// Macro-internal alias: the `error!`-family macros need an unambiguous
// `$crate::` path to the level check.
#[doc(hidden)]
pub use logging::enabled as logging_enabled;
pub use metrics::{
    sanitize_label_value, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
    Series, SeriesValue, HISTOGRAM_BUCKETS,
};
