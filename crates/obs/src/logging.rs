//! The structured-log facade: one global level, single-line records on
//! stderr, and a process-wide id well for connection/request/trace
//! correlation.

use std::fmt;
use std::io::Write;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most to least severe. The global level admits records
/// at its own severity and above; the default is [`Level::Warn`] so
/// servers are quiet unless something is wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error = 0,
    /// Degraded-but-serving conditions (failovers, ring skew, slow
    /// requests).
    Warn = 1,
    /// Lifecycle events (startup, topology commits).
    Info = 2,
    /// Per-connection / per-request chatter.
    Debug = 3,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Self::Error => "ERROR",
            Self::Warn => "WARN",
            Self::Info => "INFO",
            Self::Debug => "DEBUG",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Error => "error",
            Self::Warn => "warn",
            Self::Info => "info",
            Self::Debug => "debug",
        })
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "error" => Ok(Self::Error),
            "warn" => Ok(Self::Warn),
            "info" => Ok(Self::Info),
            "debug" => Ok(Self::Debug),
            other => Err(format!(
                "unknown log level `{other}` (expected error|warn|info|debug)"
            )),
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the global log level (process-wide; there is one stderr).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a record at `level` would be emitted. The `error!`-family
/// macros check this before formatting so disabled levels cost one
/// relaxed load.
#[must_use]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Emits one single-line record to stderr:
/// `ts=<unix-seconds> level=<level> target=<target> <msg>`.
///
/// Newlines in `msg` are replaced so one call is always one line — the
/// records stay greppable even when a message interpolates wire text.
pub fn log(level: Level, target: &str, msg: &str) {
    if !enabled(level) {
        return;
    }
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0.0, |d| d.as_secs_f64());
    let msg = if msg.contains('\n') {
        msg.replace('\n', "\\n")
    } else {
        msg.to_owned()
    };
    let mut err = std::io::stderr().lock();
    let _ = writeln!(
        err,
        "ts={ts:.3} level={} target={target} {msg}",
        level.tag()
    );
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// A cheap process-unique id for connections and requests; logged so
/// multiple records about one connection correlate.
#[must_use]
pub fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Logs at [`Level::Error`]; first argument is the target, the rest are
/// `format!` arguments, formatted only when the level is enabled.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::logging_enabled($crate::Level::Error) {
            $crate::log($crate::Level::Error, $target, &format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`]; see [`error!`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::logging_enabled($crate::Level::Warn) {
            $crate::log($crate::Level::Warn, $target, &format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`]; see [`error!`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::logging_enabled($crate::Level::Info) {
            $crate::log($crate::Level::Info, $target, &format!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`]; see [`error!`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::logging_enabled($crate::Level::Debug) {
            $crate::log($crate::Level::Debug, $target, &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("warn".parse::<Level>().unwrap(), Level::Warn);
        assert!("loud".parse::<Level>().is_err());
        assert!(Level::Error < Level::Debug);
        assert_eq!(Level::Info.to_string(), "info");
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let a = next_id();
        let b = next_id();
        assert!(b > a);
    }
}
