//! Lock-free metrics: atomic counters/gauges, fixed log2-bucket
//! histograms, mergeable snapshots, and the Prometheus-style text
//! renderer.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets. Bucket `0` holds observations of `0`;
/// bucket `i >= 1` holds `[2^(i-1), 2^i - 1]`; the last bucket absorbs
/// everything above. With values in microseconds the top finite edge is
/// `2^30 - 1` µs ≈ 18 minutes — far past any request this stack serves.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter. Cloning shares the same cell.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways. Cloning shares the
/// same cell.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the value outright.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.cell.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The log2 bucket an observed value lands in.
#[must_use]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive upper edge of a bucket, as rendered in the `le` label;
/// `None` is the `+Inf` overflow bucket.
#[must_use]
fn bucket_edge(i: usize) -> Option<u64> {
    if i + 1 == HISTOGRAM_BUCKETS {
        None
    } else if i == 0 {
        Some(0)
    } else {
        Some((1u64 << i) - 1)
    }
}

/// A fixed log2-bucket histogram for latency-style values (canonically
/// microseconds). Cloning shares the same cells.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration, in microseconds (saturating at `u64::MAX`).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }
}

enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Self::Counter(_) => "counter",
            Self::Gauge(_) => "gauge",
            Self::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    cell: Cell,
}

/// A per-instance metrics registry. Handles are get-or-create by
/// `(name, labels)` under a mutex — a cold path taken once per handle —
/// and every increment afterwards is a relaxed atomic op with no lock.
///
/// Cloning the registry shares the underlying table, so a server can
/// hand clones to its workers.
#[derive(Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("Registry").field("metrics", &len).finish()
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn with_entry<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Cell,
        extract: impl Fn(&Cell) -> Option<T>,
    ) -> T {
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(entry) = entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        }) {
            return extract(&entry.cell).unwrap_or_else(|| {
                panic!(
                    "metric `{name}` already registered as a {}",
                    entry.cell.kind()
                )
            });
        }
        let cell = make();
        let handle = extract(&cell).expect("freshly made cell matches");
        entries.push(Entry {
            name: name.to_owned(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_owned(), v.to_owned()))
                .collect(),
            cell,
        });
        handle
    }

    /// Gets or creates a counter. Panics if `(name, labels)` is already
    /// registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.with_entry(
            name,
            labels,
            || Cell::Counter(Arc::new(AtomicU64::new(0))),
            |cell| match cell {
                Cell::Counter(c) => Some(Counter {
                    cell: Arc::clone(c),
                }),
                _ => None,
            },
        )
    }

    /// Gets or creates a gauge. Panics on kind mismatch.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.with_entry(
            name,
            labels,
            || Cell::Gauge(Arc::new(AtomicI64::new(0))),
            |cell| match cell {
                Cell::Gauge(g) => Some(Gauge {
                    cell: Arc::clone(g),
                }),
                _ => None,
            },
        )
    }

    /// Gets or creates a histogram. Panics on kind mismatch.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.with_entry(
            name,
            labels,
            || Cell::Histogram(Arc::new(HistogramCore::new())),
            |cell| match cell {
                Cell::Histogram(h) => Some(Histogram {
                    core: Arc::clone(h),
                }),
                _ => None,
            },
        )
    }

    /// Freezes every registered metric into plain data, sorted
    /// canonically by `(name, labels)`.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("registry poisoned");
        let mut series: Vec<Series> = entries
            .iter()
            .map(|e| Series {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: match &e.cell {
                    Cell::Counter(c) => SeriesValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => SeriesValue::Gauge(g.load(Ordering::Relaxed)),
                    Cell::Histogram(h) => SeriesValue::Histogram(HistogramSnapshot {
                        buckets: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                    }),
                },
            })
            .collect();
        drop(entries);
        canonical_sort(&mut series);
        MetricsSnapshot { series }
    }
}

/// A frozen histogram: per-bucket counts, total count, and value sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// One count per log2 bucket ([`HISTOGRAM_BUCKETS`] long).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An all-zero histogram.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Adds `other` into `self`, bucket-wise.
    pub fn merge_from(&mut self, other: &Self) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// A conservative quantile estimate: the inclusive upper edge of the
    /// first bucket at which the cumulative count reaches `q * count`.
    /// Returns `None` for an empty histogram; the overflow bucket
    /// reports its lower edge (the largest finite boundary).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(match bucket_edge(i) {
                    Some(edge) => edge as f64,
                    None => ((1u128 << (HISTOGRAM_BUCKETS - 1)) - 1) as f64,
                });
            }
        }
        None
    }
}

/// One frozen metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum SeriesValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram reading.
    Histogram(HistogramSnapshot),
}

/// One frozen series: a metric name, its label set, and the value.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Metric name (e.g. `dlm_requests_total`).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: SeriesValue,
}

fn canonical_sort(series: &mut [Series]) {
    series.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
}

/// A frozen view of a whole registry: plain data, mergeable across
/// processes, and renderable as text exposition. Series are kept in
/// canonical `(name, labels)` order, which is what makes
/// `merge(a, b) == merge(b, a)` bit-for-bit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All series, canonically sorted.
    pub series: Vec<Series>,
}

impl MetricsSnapshot {
    /// Merges `other` into `self`: series with the same `(name, labels)`
    /// identity combine (counters and gauges add, histograms merge
    /// bucket-wise); everything else is unioned in. Result stays
    /// canonically sorted.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for theirs in &other.series {
            if let Some(mine) = self
                .series
                .iter_mut()
                .find(|s| s.name == theirs.name && s.labels == theirs.labels)
            {
                match (&mut mine.value, &theirs.value) {
                    (SeriesValue::Counter(a), SeriesValue::Counter(b)) => {
                        *a = a.saturating_add(*b);
                    }
                    (SeriesValue::Gauge(a), SeriesValue::Gauge(b)) => {
                        *a = a.saturating_add(*b);
                    }
                    (SeriesValue::Histogram(a), SeriesValue::Histogram(b)) => a.merge_from(b),
                    // Kind mismatch across processes: keep ours; a
                    // monitoring read must not panic a server.
                    _ => {}
                }
            } else {
                self.series.push(theirs.clone());
            }
        }
        canonical_sort(&mut self.series);
    }

    /// A copy with `(key, value)` appended to every series' labels —
    /// how the router tags each backend's snapshot with its address.
    #[must_use]
    pub fn with_label(&self, key: &str, value: &str) -> MetricsSnapshot {
        let mut series: Vec<Series> = self
            .series
            .iter()
            .cloned()
            .map(|mut s| {
                s.labels.push((key.to_owned(), value.to_owned()));
                s
            })
            .collect();
        canonical_sort(&mut series);
        MetricsSnapshot { series }
    }

    /// Looks up one series by exact name and label set.
    #[must_use]
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Series> {
        self.series.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// The value of a counter series, if present.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            SeriesValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The frozen histogram of a histogram series, if present.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.find(name, labels)?.value {
            SeriesValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Renders Prometheus-style text exposition: a `# TYPE` line per
    /// metric name (first occurrence in canonical order), then one line
    /// per series — histograms expand to cumulative `_bucket{le=...}`
    /// lines plus `_sum` and `_count`. Label values escape `\`, `"`,
    /// and newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.series {
            if last_name != Some(s.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&s.name);
                out.push(' ');
                out.push_str(match s.value {
                    SeriesValue::Counter(_) => "counter",
                    SeriesValue::Gauge(_) => "gauge",
                    SeriesValue::Histogram(_) => "histogram",
                });
                out.push('\n');
                last_name = Some(s.name.as_str());
            }
            match &s.value {
                SeriesValue::Counter(v) => {
                    render_line(&mut out, &s.name, &s.labels, None, &v.to_string());
                }
                SeriesValue::Gauge(v) => {
                    render_line(&mut out, &s.name, &s.labels, None, &v.to_string());
                }
                SeriesValue::Histogram(h) => {
                    let bucket_name = format!("{}_bucket", s.name);
                    let mut cumulative = 0u64;
                    for (i, &n) in h.buckets.iter().enumerate() {
                        cumulative += n;
                        let le = match bucket_edge(i) {
                            Some(edge) => edge.to_string(),
                            None => "+Inf".to_owned(),
                        };
                        render_line(
                            &mut out,
                            &bucket_name,
                            &s.labels,
                            Some(("le", &le)),
                            &cumulative.to_string(),
                        );
                    }
                    render_line(
                        &mut out,
                        &format!("{}_sum", s.name),
                        &s.labels,
                        None,
                        &h.sum.to_string(),
                    );
                    render_line(
                        &mut out,
                        &format!("{}_count", s.name),
                        &s.labels,
                        None,
                        &h.count.to_string(),
                    );
                }
            }
        }
        out
    }
}

/// Normalizes an externally supplied string into a safe label value:
/// ASCII alphanumerics, `-`, `_`, and `.` pass through, anything else
/// becomes `_`, the result is truncated to 64 bytes, and an empty input
/// maps to `"_"`. Label *keys* in this crate are static strings chosen
/// by the instrumentation site, but values sometimes arrive off the
/// wire (e.g. the scenario regime on `open` requests) — sanitizing at
/// the boundary bounds series cardinality per distinct input and keeps
/// both the text exposition and downstream scrapers free of exotic
/// characters, whatever a client sends.
#[must_use]
pub fn sanitize_label_value(raw: &str) -> String {
    let cleaned: String = raw
        .chars()
        .take(64)
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '-' | '_' | '.' => c,
            _ => '_',
        })
        .collect();
    if cleaned.is_empty() {
        "_".to_owned()
    } else {
        cleaned
    }
}

fn render_line(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    let n_labels = labels.len() + usize::from(extra.is_some());
    if n_labels > 0 {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra)
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            for ch in v.chars() {
                match ch {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_label_value_normalizes_hostile_input() {
        assert_eq!(sanitize_label_value("broadcast"), "broadcast");
        assert_eq!(sanitize_label_value("erdos-viral_2.0"), "erdos-viral_2.0");
        assert_eq!(sanitize_label_value("a\"b\\c\nd e"), "a_b_c_d_e");
        assert_eq!(sanitize_label_value(""), "_");
        let long = "x".repeat(200);
        assert_eq!(sanitize_label_value(&long).len(), 64);
    }

    #[test]
    fn bucket_indexing_covers_the_line() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bucket's lower bound lands in that bucket.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(1u64 << (i - 1)), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index((1u64 << i) - 1), i, "upper edge of bucket {i}");
        }
    }

    #[test]
    fn handles_are_shared_and_lock_free_after_registration() {
        let reg = Registry::new();
        let a = reg.counter("hits", &[("verb", "open")]);
        let b = reg.counter("hits", &[("verb", "open")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let other = reg.counter("hits", &[("verb", "ingest")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics_at_registration() {
        let reg = Registry::new();
        let _c = reg.counter("x", &[]);
        let _g = reg.gauge("x", &[]);
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("depth", &[]);
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn quantiles_report_bucket_edges() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[]);
        for v in [1u64, 1, 1, 1, 100, 100, 100, 10_000, 10_000, 1_000_000] {
            h.observe(v);
        }
        let frozen = reg.snapshot();
        let hist = frozen.histogram("lat", &[]).unwrap();
        assert_eq!(hist.count, 10);
        // p50 falls in the bucket holding 100 (bucket 7: 64..=127).
        assert_eq!(hist.quantile(0.5), Some(127.0));
        // p100 falls in the bucket holding 1_000_000.
        assert_eq!(hist.quantile(1.0), Some((1u64 << 20) as f64 - 1.0));
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
    }

    #[test]
    fn merge_unions_and_adds() {
        let r1 = Registry::new();
        r1.counter("reqs", &[("verb", "open")]).add(3);
        r1.histogram("lat", &[]).observe(5);
        let r2 = Registry::new();
        r2.counter("reqs", &[("verb", "open")]).add(4);
        r2.counter("reqs", &[("verb", "stats")]).add(1);
        r2.histogram("lat", &[]).observe(900);

        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("reqs", &[("verb", "open")]), Some(7));
        assert_eq!(merged.counter("reqs", &[("verb", "stats")]), Some(1));
        let h = merged.histogram("lat", &[]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 905);
    }

    #[test]
    fn with_label_tags_every_series() {
        let reg = Registry::new();
        reg.counter("reqs", &[("verb", "open")]).inc();
        let tagged = reg.snapshot().with_label("backend", "127.0.0.1:7879");
        assert_eq!(
            tagged.counter("reqs", &[("verb", "open"), ("backend", "127.0.0.1:7879")]),
            Some(1)
        );
        assert_eq!(tagged.counter("reqs", &[("verb", "open")]), None);
    }
}
