//! Pins the exposition text format with a known-answer test and the
//! histogram/merge invariants with properties: bucket counts always sum
//! to the observation count, and `merge(a, b) == merge(b, a)`
//! bit-for-bit (including the rendered text).

use dlm_obs::{HistogramSnapshot, Registry, SeriesValue, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

#[test]
fn exposition_known_answer() {
    let reg = Registry::new();
    reg.counter("dlm_requests_total", &[("verb", "open")])
        .add(3);
    reg.counter("dlm_requests_total", &[("verb", "ingest")])
        .add(40);
    reg.gauge("dlm_active_connections", &[("worker", "0")])
        .set(2);
    let h = reg.histogram("dlm_service_micros", &[("verb", "open")]);
    h.observe(0);
    h.observe(1);
    h.observe(3);
    h.observe(1u64 << 40); // lands in the +Inf overflow bucket

    let text = reg.snapshot().render();
    let mut expected = String::new();
    expected.push_str("# TYPE dlm_active_connections gauge\n");
    expected.push_str("dlm_active_connections{worker=\"0\"} 2\n");
    expected.push_str("# TYPE dlm_requests_total counter\n");
    expected.push_str("dlm_requests_total{verb=\"ingest\"} 40\n");
    expected.push_str("dlm_requests_total{verb=\"open\"} 3\n");
    expected.push_str("# TYPE dlm_service_micros histogram\n");
    // Cumulative buckets: {0} -> 1, [1,1] -> 2, [2,3] -> 3, then flat
    // until the +Inf bucket absorbs the 2^40 observation.
    let mut cumulative = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        cumulative = match i {
            0..=2 => cumulative + 1,
            i if i == HISTOGRAM_BUCKETS - 1 => cumulative + 1,
            _ => cumulative,
        };
        let le = if i == HISTOGRAM_BUCKETS - 1 {
            "+Inf".to_owned()
        } else if i == 0 {
            "0".to_owned()
        } else {
            ((1u64 << i) - 1).to_string()
        };
        expected.push_str(&format!(
            "dlm_service_micros_bucket{{verb=\"open\",le=\"{le}\"}} {cumulative}\n"
        ));
    }
    expected.push_str(&format!(
        "dlm_service_micros_sum{{verb=\"open\"}} {}\n",
        4 + (1u64 << 40)
    ));
    expected.push_str("dlm_service_micros_count{verb=\"open\"} 4\n");
    assert_eq!(text, expected);
}

#[test]
fn label_values_are_escaped() {
    let reg = Registry::new();
    reg.counter("weird", &[("path", "a\\b\"c\nd")]).inc();
    let text = reg.snapshot().render();
    assert!(
        text.contains("weird{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
        "unexpected exposition:\n{text}"
    );
    // Still exactly one TYPE line + one sample line: the newline in the
    // label value must not break the line-oriented format.
    assert_eq!(text.lines().count(), 2);
}

fn observations() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..u64::MAX, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucket_counts_sum_to_observation_count(values in observations()) {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[]);
        for &v in &values {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hist = snap.histogram("lat", &[]).expect("registered");
        let bucket_total: u64 = hist.buckets.iter().sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
        prop_assert_eq!(hist.count, values.len() as u64);
        if hist.count > 0 {
            prop_assert!(hist.quantile(0.5).is_some());
        }
    }

    #[test]
    fn merge_is_commutative_bit_for_bit(
        xs in observations(),
        ys in observations(),
        na in 0u64..1000,
        nb in 0u64..1000,
    ) {
        let ra = Registry::new();
        ra.counter("reqs", &[("verb", "open")]).add(na);
        ra.counter("only_a", &[]).add(na);
        let ha = ra.histogram("lat", &[]);
        for &v in &xs {
            ha.observe(v);
        }
        let rb = Registry::new();
        rb.counter("reqs", &[("verb", "open")]).add(nb);
        rb.gauge("only_b", &[]).set(nb as i64);
        let hb = rb.histogram("lat", &[]);
        for &v in &ys {
            hb.observe(v);
        }

        let (a, b) = (ra.snapshot(), rb.snapshot());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.render(), ba.render());

        // Merged histogram equals the bucket-wise sum of the parts.
        let mut manual = HistogramSnapshot::empty();
        if let Some(SeriesValue::Histogram(h)) = a.find("lat", &[]).map(|s| &s.value) {
            manual.merge_from(h);
        }
        if let Some(SeriesValue::Histogram(h)) = b.find("lat", &[]).map(|s| &s.value) {
            manual.merge_from(h);
        }
        prop_assert_eq!(ab.histogram("lat", &[]).expect("merged"), &manual);
    }
}
