//! The standalone `dlm-router` binary: a consistent-hash routing tier
//! over running `dlm-serve` backends.
//!
//! ```text
//! dlm-router --backend 127.0.0.1:7878 --backend 127.0.0.1:7879
//!            [--addr 127.0.0.1:7900] [--replicas 64] [--replicas-data 1]
//!            [--workers N] [--connect-timeout-ms 2000]
//!            [--backend-transport lines|binary]
//!            [--log-level error|warn|info|debug]
//! ```
//!
//! Prints one `READY {"addr":...,"backends":N,"version":...}` line
//! carrying the bound address plus a one-line config summary (backend
//! transport, ring/data replicas) once the socket is bound (scripts
//! and the load generator wait for it), then routes until killed. Backends are dialed lazily, so the router may be
//! started before its backends; requests to a not-yet-up backend simply
//! surface that backend's error until it arrives.

use dlm_core::evaluate::Parallelism;
use dlm_router::{RouterConfig, RouterState};
use dlm_serve::{DlmServer, Transport};

fn usage() -> ! {
    eprintln!(
        "usage: dlm-router --backend HOST:PORT [--backend HOST:PORT ...] \
         [--addr HOST:PORT] [--replicas N] [--replicas-data N] [--workers N] \
         [--connect-timeout-ms MS] [--backend-transport lines|binary] \
         [--log-level error|warn|info|debug]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7900".to_owned();
    let mut backends: Vec<String> = Vec::new();
    let mut replicas = dlm_router::HashRing::DEFAULT_REPLICAS;
    let mut data_replicas = 1usize;
    let mut parallelism = Parallelism::Auto;
    let mut connect_timeout = RouterConfig::DEFAULT_CONNECT_TIMEOUT;
    let mut backend_transport = Transport::Lines;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--backend" => backends.push(value("--backend")),
            "--replicas" => {
                replicas = value("--replicas").parse().unwrap_or_else(|_| usage());
            }
            "--replicas-data" => {
                // N-way replicated placement: every write lands on the
                // cascade's next N distinct ring owners, so killing one
                // backend mid-load loses nothing (see docs/PROTOCOL.md).
                data_replicas = value("--replicas-data")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--workers" => {
                parallelism =
                    Parallelism::Fixed(value("--workers").parse().unwrap_or_else(|_| usage()));
            }
            "--connect-timeout-ms" => {
                // 0 is rejected: std's `TcpStream::connect_timeout`
                // errors on a zero duration, which would fail every
                // fresh dial instead of "disabling" the timeout.
                let ms: u64 = value("--connect-timeout-ms")
                    .parse()
                    .ok()
                    .filter(|&ms| ms > 0)
                    .unwrap_or_else(|| usage());
                connect_timeout = std::time::Duration::from_millis(ms);
            }
            "--backend-transport" => {
                // Framing negotiated on every backend connection; the
                // client-facing socket always starts in JSON lines
                // (clients negotiate their own framing per connection).
                backend_transport = match value("--backend-transport").as_str() {
                    "lines" => Transport::Lines,
                    "binary" => Transport::Binary,
                    _ => usage(),
                };
            }
            "--log-level" => {
                // Structured-log threshold on stderr; default warn.
                let level: dlm_obs::Level =
                    value("--log-level").parse().unwrap_or_else(|e: String| {
                        eprintln!("{e}");
                        usage()
                    });
                dlm_obs::set_level(level);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    if backends.is_empty() {
        eprintln!("need at least one --backend");
        usage();
    }

    let state = match RouterState::new(RouterConfig {
        replicas,
        data_replicas,
        parallelism,
        connect_timeout,
        backend_transport,
        ..RouterConfig::new(backends)
    }) {
        Ok(state) => state,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(2);
        }
    };
    let backend_count = state.backend_addrs().len();
    let transport = backend_transport.wire_name();
    let server = DlmServer::bind(addr.as_str(), state).expect("bind");
    println!(
        "READY {{\"addr\":\"{}\",\"backends\":{backend_count},\"version\":\"{}\",\
         \"backend_transport\":\"{transport}\",\"replicas\":{replicas},\
         \"data_replicas\":{data_replicas}}}",
        server.local_addr(),
        env!("CARGO_PKG_VERSION"),
    );
    eprintln!(
        "dlm-router {} routing over {backend_count} backends on {} \
         (transport={transport} replicas={replicas} data_replicas={data_replicas}); \
         Ctrl-C to stop",
        env!("CARGO_PKG_VERSION"),
        server.local_addr()
    );
    // Route until the process is killed.
    loop {
        std::thread::park();
    }
}
