//! # dlm-router
//!
//! A consistent-hash sharding tier in front of `dlm-serve` backends.
//!
//! The paper's model predicts each cascade independently, which makes
//! cascades the natural sharding unit: a cluster of `dlm-serve`
//! processes can split the cascade id space with no cross-shard state
//! at all. This crate is the tier that does the splitting, std-only
//! like the server beneath it:
//!
//! * [`ring`] — the consistent-hash ring with virtual nodes
//!   (re-exported from [`dlm_cluster::ring`]): deterministic placement
//!   from the configured backend addresses, balanced key splits,
//!   minimal remapping when the backend set changes, and N-way owner
//!   walks ([`HashRing::route_n`]) for replicated placement;
//! * [`proxy`] — [`proxy::RouterState`], a [`dlm_serve::LineService`]
//!   that forwards `open`/`ingest`/`forecast` lines **verbatim** to the
//!   owning backend(s) over pooled [`dlm_serve::LineClient`] connections
//!   (reconnect-on-failure, per-backend error surfacing), answers
//!   `stats` by scatter-gathering every backend on the
//!   [`dlm_numerics::pool`] executor and summing the shard counters,
//!   and serves the `join`/`drain`/`remove` admin verbs that mutate the
//!   topology live under a `ring_version` epoch — `drain` streams each
//!   resident cascade's `dlm-cluster` snapshot to its new owner before
//!   the node leaves (a handoff, not a re-`open`), and
//!   [`RouterConfig::data_replicas`] `>= 2` keeps every cascade on
//!   multiple backends so killing one loses nothing.
//!
//! Because the router relays backend bytes untouched and speaks the
//! same JSON-lines protocol on its front (see `docs/PROTOCOL.md`), a
//! client pointed at a router instead of a single server sees
//! byte-identical forecasts — the `router_roundtrip` integration test
//! and the `serve_load --router` load gate both prove it over real
//! sockets.
//!
//! ## Example (in-process cluster)
//!
//! ```no_run
//! use dlm_data::{SyntheticWorld, WorldConfig};
//! use dlm_router::{RouterConfig, RouterState};
//! use dlm_serve::server::{DlmServer, ServeConfig, ServerState};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two backends sharing one synthetic world...
//! let world = SyntheticWorld::generate(WorldConfig::default())?;
//! let b0 = DlmServer::bind(
//!     "127.0.0.1:0",
//!     ServerState::with_world(ServeConfig::default(), world.clone())?,
//! )?;
//! let b1 = DlmServer::bind(
//!     "127.0.0.1:0",
//!     ServerState::with_world(ServeConfig::default(), world)?,
//! )?;
//! // ...and one router tier in front of them.
//! let router = RouterState::new(RouterConfig::new(vec![
//!     b0.local_addr().to_string(),
//!     b1.local_addr().to_string(),
//! ]))?;
//! let front = DlmServer::bind("127.0.0.1:0", router)?;
//! println!("route cascades to {}", front.local_addr());
//! # Ok(())
//! # }
//! ```
//!
//! Standalone: `dlm-router --addr HOST:PORT --backend HOST:PORT
//! --backend HOST:PORT ...` (see the binary's `--help`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod proxy;
pub mod ring;

pub use proxy::{RouterConfig, RouterState, REBALANCE_CHUNK};
pub use ring::HashRing;
