//! The routing tier: deterministic cascade placement over N backends,
//! pooled proxy connections, and scatter-gather `stats`.
//!
//! [`RouterState`] implements [`dlm_serve::LineService`], so the exact
//! TCP front end that serves a single `dlm-serve` process
//! ([`dlm_serve::DlmServer`]) also serves the router — clients cannot
//! tell the difference, which is the point: `open`, `ingest`, and
//! `forecast` lines are forwarded **verbatim** to the backend that owns
//! the cascade id on the [`crate::ring::HashRing`], and the backend's
//! response line is relayed **verbatim** back. The router never
//! re-serializes a routed payload, so a routed forecast is trivially
//! byte-identical to the same forecast served directly — the
//! `router_roundtrip` integration test and the `serve_load --router`
//! gate both check exactly that over real sockets.
//!
//! ## Connection pooling and failure surfacing
//!
//! Each backend keeps a small pool of idle [`LineClient`] connections.
//! A request checks one out (or dials a fresh one — bounded by
//! [`RouterConfig::connect_timeout`], so a blackholed backend fails
//! fast and degrades only its shard instead of pinning a handler
//! thread), and returns it on success. A *pure read* (`forecast`, `stats`) that fails on a pooled
//! connection is retried once on a freshly dialed connection — the
//! usual stale-keepalive case. State-changing requests are **never**
//! re-sent: once the bytes may have reached the backend, a retried
//! `ingest` could double-count votes and a retried `open` whose first
//! attempt was applied would be answered with a misleading
//! `duplicate cascade` error — both surface the mid-request failure as
//! state-unknown instead. Failures surface as `{"ok":false,...}`
//! responses carrying a `"backend"` field naming the shard, so one dead
//! backend degrades only its own cascades while every other shard keeps
//! serving.
//!
//! ## `stats` scatter-gather
//!
//! `stats` fans out to every backend concurrently on the
//! [`dlm_numerics::pool`] executor and aggregates the shard counters
//! into one cluster view: counts are summed (cache hit/miss/eviction
//! counters merge through [`dlm_core::cache::CacheStats`]), per-backend
//! round-trip latencies are reported with their max, and unreachable
//! backends are listed per shard while the reachable remainder still
//! aggregates (`"degraded": true`).

use crate::ring::HashRing;
use dlm_core::cache::CacheStats;
use dlm_core::evaluate::Parallelism;
use dlm_numerics::pool::parallel_map;
use dlm_serve::protocol::error_response;
use dlm_serve::{Json, LineClient, LineService, Result, ServeError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning knobs for [`RouterState`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend addresses (`host:port`), each a running `dlm-serve`.
    /// Their textual form is the ring label, so keep it stable across
    /// restarts.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the consistent-hash ring.
    pub replicas: usize,
    /// Parallelism of the `stats` scatter-gather fan-out.
    pub parallelism: Parallelism,
    /// Idle proxy connections kept per backend; checked-out connections
    /// beyond this are closed on return instead of pooled.
    pub max_idle_per_backend: usize,
    /// Bound on every fresh backend dial. A blackholed backend (dropped
    /// SYNs, no RST) fails after this long and degrades only its shard,
    /// instead of pinning a router handler thread for the OS connect
    /// timeout. See `docs/PROTOCOL.md` §5.
    pub connect_timeout: Duration,
}

impl RouterConfig {
    /// Default bound on fresh backend dials.
    pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

    /// A config routing to `backends` with default tuning.
    #[must_use]
    pub fn new(backends: Vec<String>) -> Self {
        Self {
            backends,
            replicas: HashRing::DEFAULT_REPLICAS,
            parallelism: Parallelism::Auto,
            max_idle_per_backend: 8,
            connect_timeout: Self::DEFAULT_CONNECT_TIMEOUT,
        }
    }
}

/// One backend shard: its address, its idle-connection pool, and its
/// routing/error counters.
#[derive(Debug)]
struct Backend {
    addr: String,
    idle: Mutex<Vec<LineClient>>,
    max_idle: usize,
    /// Bound on fresh dials (see [`RouterConfig::connect_timeout`]).
    connect_timeout: Duration,
    /// Requests routed to this backend (including retries' successes).
    routed: AtomicU64,
    /// Requests that failed against this backend after any retry.
    errors: AtomicU64,
}

impl Backend {
    fn new(addr: String, max_idle: usize, connect_timeout: Duration) -> Self {
        Self {
            addr,
            idle: Mutex::new(Vec::new()),
            max_idle,
            connect_timeout,
            routed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    fn checkout(&self) -> Option<LineClient> {
        self.idle.lock().expect("backend pool poisoned").pop()
    }

    fn checkin(&self, client: LineClient) {
        let mut idle = self.idle.lock().expect("backend pool poisoned");
        if idle.len() < self.max_idle {
            idle.push(client);
        }
    }

    /// One request line out, one response line back, with the
    /// stale-pooled-connection retry described in the module docs.
    ///
    /// `retriable` must be `false` for requests that mutate backend
    /// state (`ingest`, `open`): a pooled connection that dies *after*
    /// the write may have delivered the request, and a blind re-send
    /// would apply it twice (or report a spurious duplicate) — the
    /// failure is surfaced as state-unknown instead.
    fn round_trip(&self, line: &str, retriable: bool) -> std::result::Result<String, String> {
        self.routed.fetch_add(1, Ordering::Relaxed);
        // First try a pooled connection, if any survived.
        if let Some(mut client) = self.checkout() {
            match client.send_raw(line) {
                Ok(response) => {
                    self.checkin(client);
                    return Ok(response);
                }
                Err(e) => {
                    drop(client); // dead either way
                    if !retriable {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        return Err(format!(
                            "{e} (pooled connection failed mid-request; not retried — \
                             the backend may or may not have applied it)"
                        ));
                    }
                    // Stale keepalive on a read-only request: retry
                    // fresh below.
                }
            }
        }
        let fresh = || -> dlm_serve::Result<(LineClient, String)> {
            let mut client = LineClient::connect_timeout(self.addr.as_str(), self.connect_timeout)?;
            let response = client.send_raw(line)?;
            Ok((client, response))
        };
        match fresh() {
            Ok((client, response)) => {
                self.checkin(client);
                Ok(response)
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                Err(e.to_string())
            }
        }
    }
}

/// The sharding tier: a [`LineService`] that owns the ring and the
/// backend pools.
#[derive(Debug)]
pub struct RouterState {
    ring: HashRing,
    backends: Vec<Backend>,
    parallelism: Parallelism,
    requests: AtomicU64,
}

impl RouterState {
    /// Builds the router. Backends are dialed lazily on first use, so
    /// the router comes up even while backends are still starting.
    ///
    /// # Errors
    ///
    /// Ring-construction errors: no backends, duplicate addresses, or
    /// zero replicas.
    pub fn new(config: RouterConfig) -> Result<Self> {
        let ring = HashRing::new(&config.backends, config.replicas)?;
        let backends = config
            .backends
            .into_iter()
            .map(|addr| Backend::new(addr, config.max_idle_per_backend, config.connect_timeout))
            .collect();
        Ok(Self {
            ring,
            backends,
            parallelism: config.parallelism,
            requests: AtomicU64::new(0),
        })
    }

    /// Backend addresses, in configuration order (ring labels).
    #[must_use]
    pub fn backend_addrs(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.addr.clone()).collect()
    }

    /// The backend index that owns `cascade` on the ring.
    #[must_use]
    pub fn shard_of(&self, cascade: &str) -> usize {
        self.ring.route(cascade)
    }

    /// Handles one protocol line: `stats` scatter-gathers, everything
    /// else forwards to the owning shard. Mirrors
    /// [`dlm_serve::ServerState::handle_line`]'s contract — malformed
    /// input becomes an `{"ok":false,...}` line, never a panic.
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match self.route_line(line) {
            // A relayed backend response is passed through untouched —
            // this is what keeps routed forecasts byte-identical to
            // direct ones.
            Ok(Routed::Relayed(raw)) => raw,
            Ok(Routed::Synthesized(value)) => value.to_string(),
            Err(e) => error_response(&e.to_string()).to_string(),
        }
    }

    fn route_line(&self, line: &str) -> Result<Routed> {
        let value = Json::parse(line).map_err(ServeError::Protocol)?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::Protocol("missing field `type`".into()))?;
        match kind {
            "stats" => Ok(Routed::Synthesized(self.handle_stats())),
            "open" | "ingest" | "forecast" => {
                let cascade = value
                    .get("cascade")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ServeError::Protocol("missing field `cascade`".into()))?;
                let backend = &self.backends[self.ring.route(cascade)];
                // Only pure reads (`forecast`) are retried on a stale
                // pooled connection. `ingest` re-sends could double-
                // count votes, and an `open` whose first attempt was
                // applied would be answered with a misleading
                // `duplicate cascade` error on retry — both surface the
                // failure as state-unknown instead.
                match backend.round_trip(line, kind == "forecast") {
                    Ok(response) => Ok(Routed::Relayed(response)),
                    Err(reason) => Ok(Routed::Synthesized(Json::Obj(vec![
                        ("ok".to_owned(), Json::Bool(false)),
                        (
                            "error".to_owned(),
                            Json::str(format!("backend `{}` unavailable: {reason}", backend.addr)),
                        ),
                        ("backend".to_owned(), Json::str(backend.addr.clone())),
                    ]))),
                }
            }
            other => Err(ServeError::Protocol(format!(
                "unknown request type `{other}`"
            ))),
        }
    }

    /// Fans `{"type":"stats"}` out to every backend and folds the shard
    /// counters into one cluster view.
    fn handle_stats(&self) -> Json {
        let indices: Vec<usize> = (0..self.backends.len()).collect();
        let gathered: Vec<(f64, std::result::Result<Json, String>)> =
            parallel_map(self.parallelism, &indices, |_, &i| {
                let start = Instant::now();
                let outcome = self.backends[i]
                    .round_trip(r#"{"type":"stats"}"#, true)
                    .and_then(|raw| {
                        Json::parse(&raw).map_err(|e| format!("bad stats response: {e}"))
                    });
                (start.elapsed().as_secs_f64() * 1e3, outcome)
            });

        let mut backends = Vec::with_capacity(self.backends.len());
        let mut cache = CacheStats::default();
        let mut sums = Sums::default();
        let mut models: Option<Json> = None;
        let mut reachable = 0usize;
        let mut slowest_ms = 0f64;
        for (backend, (ms, outcome)) in self.backends.iter().zip(gathered) {
            let mut entry = vec![("addr".to_owned(), Json::str(backend.addr.clone()))];
            match outcome {
                Ok(stats) => {
                    reachable += 1;
                    slowest_ms = slowest_ms.max(ms);
                    cache += CacheStats {
                        hits: nested_u64(&stats, "cache", "hits"),
                        misses: nested_u64(&stats, "cache", "misses"),
                        evictions: nested_u64(&stats, "cache", "evictions"),
                    };
                    sums.absorb(&stats);
                    if models.is_none() {
                        models = stats.get("models").cloned();
                    }
                    entry.push(("ok".to_owned(), Json::Bool(true)));
                    entry.push(("ms".to_owned(), Json::num(ms)));
                    entry.push(("stats".to_owned(), stats));
                }
                Err(reason) => {
                    entry.push(("ok".to_owned(), Json::Bool(false)));
                    entry.push(("error".to_owned(), Json::str(reason)));
                }
            }
            backends.push(Json::Obj(entry));
        }

        if reachable == 0 {
            return Json::Obj(vec![
                ("ok".to_owned(), Json::Bool(false)),
                ("error".to_owned(), Json::str("no backend reachable")),
                ("backends".to_owned(), Json::Arr(backends)),
            ]);
        }

        let aggregate = Json::Obj(vec![
            (
                "cache".to_owned(),
                Json::Obj(vec![
                    ("hits".to_owned(), Json::num(cache.hits as f64)),
                    ("misses".to_owned(), Json::num(cache.misses as f64)),
                    ("evictions".to_owned(), Json::num(cache.evictions as f64)),
                    ("len".to_owned(), Json::num(sums.cache_len as f64)),
                    ("capacity".to_owned(), Json::num(sums.cache_capacity as f64)),
                ]),
            ),
            ("cascades".to_owned(), Json::num(sums.cascades as f64)),
            (
                "cascade_evictions".to_owned(),
                Json::num(sums.cascade_evictions as f64),
            ),
            (
                "cascade_expirations".to_owned(),
                Json::num(sums.cascade_expirations as f64),
            ),
            ("requests".to_owned(), Json::num(sums.requests as f64)),
            ("refit_jobs".to_owned(), Json::num(sums.refit_jobs as f64)),
            (
                "hours_closed".to_owned(),
                Json::num(sums.hours_closed as f64),
            ),
            ("models".to_owned(), models.unwrap_or(Json::Arr(Vec::new()))),
        ]);
        let router = Json::Obj(vec![
            (
                "requests".to_owned(),
                Json::num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "routed".to_owned(),
                Json::Arr(
                    self.backends
                        .iter()
                        .map(|b| Json::num(b.routed.load(Ordering::Relaxed) as f64))
                        .collect(),
                ),
            ),
            (
                "backend_errors".to_owned(),
                Json::Arr(
                    self.backends
                        .iter()
                        .map(|b| Json::num(b.errors.load(Ordering::Relaxed) as f64))
                        .collect(),
                ),
            ),
            (
                "replicas".to_owned(),
                Json::num(self.ring.replicas() as f64),
            ),
        ]);
        Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("role".to_owned(), Json::str("router")),
            (
                "degraded".to_owned(),
                Json::Bool(reachable < self.backends.len()),
            ),
            ("aggregate".to_owned(), aggregate),
            ("slowest_backend_ms".to_owned(), Json::num(slowest_ms)),
            ("router".to_owned(), router),
            ("backends".to_owned(), Json::Arr(backends)),
        ])
    }
}

impl LineService for RouterState {
    fn handle_line(&self, line: &str) -> String {
        RouterState::handle_line(self, line)
    }
}

/// What routing one line produced: a backend's bytes relayed verbatim,
/// or a response the router synthesized itself (stats aggregate,
/// routing errors).
enum Routed {
    Relayed(String),
    Synthesized(Json),
}

/// Scalar counters summed across backends in the `stats` aggregate.
#[derive(Default)]
struct Sums {
    cache_len: u64,
    cache_capacity: u64,
    cascades: u64,
    cascade_evictions: u64,
    cascade_expirations: u64,
    requests: u64,
    refit_jobs: u64,
    hours_closed: u64,
}

impl Sums {
    fn absorb(&mut self, stats: &Json) {
        self.cache_len += nested_u64(stats, "cache", "len");
        self.cache_capacity += nested_u64(stats, "cache", "capacity");
        self.cascades += top_u64(stats, "cascades");
        self.cascade_evictions += top_u64(stats, "cascade_evictions");
        self.cascade_expirations += top_u64(stats, "cascade_expirations");
        self.requests += top_u64(stats, "requests");
        self.refit_jobs += top_u64(stats, "refit_jobs");
        self.hours_closed += top_u64(stats, "hours_closed");
    }
}

fn top_u64(stats: &Json, key: &str) -> u64 {
    stats.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn nested_u64(stats: &Json, outer: &str, key: &str) -> u64 {
    stats
        .get(outer)
        .and_then(|o| o.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}
