//! The routing tier: deterministic cascade placement over N backends,
//! pooled proxy connections, live membership, replicated writes, and
//! scatter-gather `stats`.
//!
//! [`RouterState`] implements [`dlm_serve::LineService`], so the exact
//! TCP front end that serves a single `dlm-serve` process
//! ([`dlm_serve::DlmServer`]) also serves the router — clients cannot
//! tell the difference, which is the point: `open`, `ingest`, and
//! `forecast` lines are forwarded **verbatim** to the backend(s) that
//! own the cascade id on the [`crate::ring::HashRing`], and a backend's
//! response line is relayed **verbatim** back. The router never
//! re-serializes a routed payload, so a routed forecast is trivially
//! byte-identical to the same forecast served directly — the
//! `router_roundtrip` integration test and the `serve_load --router`
//! gate both check exactly that over real sockets.
//!
//! ## Replicated placement and failover
//!
//! With [`RouterConfig::data_replicas`] `= N > 1`, every write (`open`,
//! `ingest`) is sent to the cascade's first `N` distinct owners on the
//! ring ([`HashRing::route_n`]) — all replicas apply the same votes in
//! the same order (one router handler per client connection), so they
//! hold bit-identical cascade state. A write that lands on some owners
//! but not all is *not* reported as a clean success: the applied
//! response is relayed with `"degraded":true` and the missed addresses
//! appended, because the replicas may now diverge until the missed
//! node is `remove`d and re-replicated. Reads (`forecast`, `snapshot`)
//! try the owners in ring order and relay the first `{"ok":true,...}`
//! response — a transport failure *or* an application-level rejection
//! (a replica that missed a write answers `unknown cascade`) falls
//! through to the next owner, and only when every owner rejects is the
//! first rejection relayed. Because the owner walk is deterministic
//! from labels alone, failover needs no coordination: when a backend
//! dies mid-load, its keys' surviving replicas answer with
//! byte-identical forecasts and no response is lost.
//!
//! ## Live membership: `join` / `drain` / `rejoin` / `remove`
//!
//! The topology (membership + ring + backend pools) lives behind one
//! `RwLock`; requests take it for read, and admin transitions are
//! serialized by a separate admin mutex so they never interleave with
//! each other. Planned transitions (`join`, `drain`, `rejoin` of an
//! unknown label) rebalance **incrementally**: a drained node is
//! marked [`dlm_cluster::NodeStatus::Draining`] in the live membership
//! — its ring placement, and therefore every read and write, is
//! untouched, and the ring version does not bump — the cascade
//! inventory is split into chunks, and each chunk's snapshot→restore
//! handoffs run with the topology write lock held only for that chunk.
//! The lock is released between chunks, so reads interleave with a
//! full-node handoff instead of pausing for it. Writes keep routing to
//! the *old* owners the whole time, so a copy migrated in an early
//! chunk can go stale; the final commit takes the write lock once,
//! re-compares every migrated copy against its source by snapshot
//! checksum (the `checksums` verb — one round trip per node), fetches
//! and re-pushes the handful that changed, and only then swaps the new
//! topology in and bumps `ring_version`. A failed chunk aborts the
//! whole transition: landed restores are rolled back, the `Draining`
//! marker is reverted, and both the topology and every cascade's
//! placement are exactly as they were. `remove` is the fail-stop verb
//! for a dead node and still runs synchronously under the write lock:
//! survivors re-replicate what they still hold, and nothing waits on a
//! node that cannot answer. `rejoin` is the self-service re-admission
//! verb a restarted `--snapshot-dir` backend announces itself with
//! (`dlm-serve --announce`): an unknown label joins through the
//! incremental path, while a label that is still a member gets an
//! anti-entropy sweep instead — its replayed copies are
//! checksum-compared against their trusted replicas and refreshed
//! where they diverge, with no ring change at all. See
//! `docs/PROTOCOL.md` §6.
//!
//! ## Anti-entropy repair
//!
//! A replicated write that lands on some owners but not all is relayed
//! with `"degraded":true` — and then the router repairs the divergence
//! instead of waiting for an operator `remove`: it compares the
//! cascade's checksum on each missed owner against the owner that
//! holds the acked write (the miss may have been a connection that
//! died *after* delivery, in which case the copies already agree and
//! nothing is re-sent) and re-pushes the committed snapshot where they
//! differ. Repair outcomes are counted in
//! `dlm_router_repairs_total{outcome}`; a backend that fails repair
//! `REPAIR_STRIKES` times in a row gets its idle pool closed eagerly,
//! exactly like a backend that left the topology.
//!
//! ## Connection pooling and failure surfacing
//!
//! Each backend keeps a small pool of idle [`LineClient`] connections.
//! A request checks one out (or dials a fresh one — bounded by
//! [`RouterConfig::connect_timeout`], so a blackholed backend fails
//! fast and degrades only its shard instead of pinning a handler
//! thread), and returns it on success. A *pure read* (`forecast`,
//! `snapshot`, `stats`) that fails on a pooled connection is retried
//! once on a freshly dialed connection — the usual stale-keepalive
//! case. State-changing requests are **never** re-sent: once the bytes
//! may have reached the backend, a retried `ingest` could double-count
//! votes and a retried `open` whose first attempt was applied would be
//! answered with a misleading `duplicate cascade` error — both surface
//! the mid-request failure as state-unknown instead. When a backend
//! leaves the topology (or a fresh dial to it fails), its idle pool is
//! closed eagerly, so no later request burns its one retry on a
//! connection the router already knows is dead. Failures surface as
//! `{"ok":false,...}` responses carrying a `"backend"` field naming the
//! primary shard, so one dead backend degrades only its own cascades
//! while every other shard keeps serving.
//!
//! ## `stats` scatter-gather
//!
//! `stats` fans out to every backend concurrently on the
//! [`dlm_numerics::pool`] executor and aggregates the shard counters
//! into one cluster view: counts are summed (cache hit/miss/eviction
//! counters merge through [`dlm_core::cache::CacheStats`]), per-backend
//! round-trip latencies are reported with their max, and unreachable
//! backends are listed per shard while the reachable remainder still
//! aggregates (`"degraded": true`). The `router` object also reports
//! the current `ring_version` and each backend's ownership fraction
//! (its share of [`HashRing::OWNERSHIP_PROBES`] probe keys).

use crate::ring::HashRing;
use dlm_cluster::{hash64, hex, Membership, NodeStatus};
use dlm_core::cache::CacheStats;
use dlm_core::evaluate::Parallelism;
use dlm_numerics::pool::parallel_map;
use dlm_obs::{Counter, Histogram, MetricsSnapshot, Registry};
use dlm_serve::protocol::{batch_response, error_response};
use dlm_serve::telemetry::{response_is_error, verb_label, RequestMetrics, SLOW_REQUEST};
use dlm_serve::{
    metrics_response, snapshot_from_json, Json, LineClient, LineService, Request, Result,
    ServeError, Transport,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Every verb label the router's request-path metrics use. The
/// backend-scoped verbs the router rejects (`restore`, `cascades`,
/// `checksums`, `evict`) count under the trailing `invalid` fallback,
/// like any other line the tier refuses to route.
const ROUTER_VERB_LABELS: &[&str] = &[
    "open", "ingest", "forecast", "stats", "snapshot", "batch", "metrics", "join", "drain",
    "rejoin", "remove", "invalid",
];

/// Cascades migrated per chunk of an incremental rebalance. The
/// topology write lock is held for one chunk's handoffs and released
/// between chunks, so this bounds how long a read can queue behind a
/// drain regardless of how many cascades the node holds.
pub const REBALANCE_CHUNK: usize = 32;

/// Consecutive anti-entropy repair failures after which a backend's
/// idle pool is closed eagerly — the same treatment a departed backend
/// gets, because two straight failed restores mean the pooled sockets
/// are at best stale.
const REPAIR_STRIKES: u64 = 2;

/// The router-tier verb label for a request `type` string.
fn router_verb(kind: &str) -> &'static str {
    ROUTER_VERB_LABELS
        .iter()
        .find(|v| **v == kind)
        .copied()
        .unwrap_or("invalid")
}

/// Tuning knobs for [`RouterState`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend addresses (`host:port`), each a running `dlm-serve`.
    /// Their textual form is the ring label, so keep it stable across
    /// restarts.
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the consistent-hash ring.
    pub replicas: usize,
    /// Distinct backends every cascade is written to (`1` = classic
    /// single-owner sharding). With `N >= 2`, killing one backend loses
    /// nothing: reads fail over to the surviving owners, which hold
    /// bit-identical state.
    pub data_replicas: usize,
    /// Parallelism of the `stats` scatter-gather fan-out.
    pub parallelism: Parallelism,
    /// Idle proxy connections kept per backend; checked-out connections
    /// beyond this are closed on return instead of pooled.
    pub max_idle_per_backend: usize,
    /// Bound on every fresh backend dial. A blackholed backend (dropped
    /// SYNs, no RST) fails after this long and degrades only its shard,
    /// instead of pinning a router handler thread for the OS connect
    /// timeout. See `docs/PROTOCOL.md` §5.
    pub connect_timeout: Duration,
    /// Framing negotiated on every backend connection
    /// (`docs/PROTOCOL.md` §2-bis). Responses are byte-identical either
    /// way — the binary framing only changes how the same lines ride
    /// the socket — so relayed responses stay exact under both.
    pub backend_transport: Transport,
}

impl RouterConfig {
    /// Default bound on fresh backend dials.
    pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

    /// A config routing to `backends` with default tuning.
    #[must_use]
    pub fn new(backends: Vec<String>) -> Self {
        Self {
            backends,
            replicas: HashRing::DEFAULT_REPLICAS,
            data_replicas: 1,
            parallelism: Parallelism::Auto,
            max_idle_per_backend: 8,
            connect_timeout: Self::DEFAULT_CONNECT_TIMEOUT,
            backend_transport: Transport::Lines,
        }
    }
}

/// One backend shard: its address, its idle-connection pool, and its
/// routing/error counters.
#[derive(Debug)]
struct Backend {
    addr: String,
    idle: Mutex<Vec<LineClient>>,
    max_idle: usize,
    /// Bound on fresh dials (see [`RouterConfig::connect_timeout`]).
    connect_timeout: Duration,
    /// Framing negotiated on every fresh dial (pooled connections have
    /// already negotiated it).
    transport: Transport,
    /// Requests routed to this backend (including retries' successes).
    routed: AtomicU64,
    /// Requests that failed against this backend after any retry.
    errors: AtomicU64,
    /// Consecutive anti-entropy repair failures; reset by any repair
    /// success (or a clean comparison). At [`REPAIR_STRIKES`] the idle
    /// pool is closed eagerly.
    repair_failures: AtomicU64,
    /// Per-backend exposition counters (shared cells across topology
    /// generations, because the `Arc<Backend>` itself is reused).
    metrics: BackendMetrics,
}

/// Per-backend counters exposed through the router's `metrics` verb,
/// labeled with the backend address.
#[derive(Debug)]
struct BackendMetrics {
    requests: Counter,
    errors: Counter,
    /// Stale-pooled-connection retries on read-only requests.
    retries: Counter,
    /// Reads this owner failed or rejected, sending the owner walk on
    /// to the next replica.
    failovers: Counter,
    /// Replicated writes that missed this owner (the relayed response
    /// carried `"degraded":true`).
    degraded_writes: Counter,
}

impl BackendMetrics {
    fn new(registry: &Registry, addr: &str) -> Self {
        let labels = [("backend", addr)];
        Self {
            requests: registry.counter("dlm_router_backend_requests_total", &labels),
            errors: registry.counter("dlm_router_backend_errors_total", &labels),
            retries: registry.counter("dlm_router_backend_retries_total", &labels),
            failovers: registry.counter("dlm_router_backend_failovers_total", &labels),
            degraded_writes: registry.counter("dlm_router_degraded_writes_total", &labels),
        }
    }
}

impl Backend {
    fn new(
        addr: String,
        max_idle: usize,
        connect_timeout: Duration,
        transport: Transport,
        registry: &Registry,
    ) -> Self {
        let metrics = BackendMetrics::new(registry, &addr);
        Self {
            addr,
            idle: Mutex::new(Vec::new()),
            max_idle,
            connect_timeout,
            transport,
            routed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            repair_failures: AtomicU64::new(0),
            metrics,
        }
    }

    fn checkout(&self) -> Option<LineClient> {
        self.idle.lock().expect("backend pool poisoned").pop()
    }

    fn checkin(&self, client: LineClient) {
        let mut idle = self.idle.lock().expect("backend pool poisoned");
        if idle.len() < self.max_idle {
            idle.push(client);
        }
    }

    /// Drops every idle pooled connection. Called when the backend
    /// leaves the topology or a fresh dial to it just failed — the
    /// pooled sockets are dead or about to be, and keeping them would
    /// make the next read burn its one retry on a known-bad connection.
    fn close_idle(&self) {
        self.idle.lock().expect("backend pool poisoned").clear();
    }

    /// One request line out, one response line back, with the
    /// stale-pooled-connection retry described in the module docs.
    ///
    /// `retriable` must be `false` for requests that mutate backend
    /// state (`ingest`, `open`, `restore`): a pooled connection that
    /// dies *after* the write may have delivered the request, and a
    /// blind re-send would apply it twice (or report a spurious
    /// duplicate) — the failure is surfaced as state-unknown instead.
    fn round_trip(&self, line: &str, retriable: bool) -> std::result::Result<String, String> {
        self.routed.fetch_add(1, Ordering::Relaxed);
        self.metrics.requests.inc();
        // First try a pooled connection, if any survived.
        if let Some(mut client) = self.checkout() {
            match client.send_raw(line) {
                Ok(response) => {
                    self.checkin(client);
                    return Ok(response);
                }
                Err(e) => {
                    drop(client); // dead either way
                    if !retriable {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        self.metrics.errors.inc();
                        return Err(format!(
                            "{e} (pooled connection failed mid-request; not retried — \
                             the backend may or may not have applied it)"
                        ));
                    }
                    // Stale keepalive on a read-only request: retry
                    // fresh below.
                    self.metrics.retries.inc();
                }
            }
        }
        let fresh = || -> dlm_serve::Result<(LineClient, String)> {
            let mut client = LineClient::connect_timeout(self.addr.as_str(), self.connect_timeout)?;
            client.negotiate(self.transport)?;
            let response = client.send_raw(line)?;
            Ok((client, response))
        };
        match fresh() {
            Ok((client, response)) => {
                self.checkin(client);
                Ok(response)
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.metrics.errors.inc();
                // The backend would not even accept a fresh dial —
                // anything idling in the pool is at best stale.
                self.close_idle();
                Err(e.to_string())
            }
        }
    }
}

/// One immutable generation of the cluster shape: the membership list,
/// the ring built from its active labels, and the backend pools in ring
/// label order. Swapped wholesale under the topology write lock, so a
/// request that grabbed its owners keeps a consistent view even while
/// an admin verb rebuilds everything.
#[derive(Debug)]
struct Topology {
    membership: Membership,
    ring: HashRing,
    backends: Vec<Arc<Backend>>,
}

impl Topology {
    /// Builds the topology for `membership`, reusing the existing
    /// `Arc<Backend>` (pool, counters) of every surviving address so a
    /// membership change does not sever live connection pools.
    fn build(
        membership: Membership,
        ring_replicas: usize,
        reuse: &[Arc<Backend>],
        max_idle: usize,
        connect_timeout: Duration,
        transport: Transport,
        registry: &Registry,
    ) -> Result<Self> {
        let labels = membership.active_labels();
        let ring = HashRing::new(&labels, ring_replicas)?;
        let backends = labels
            .iter()
            .map(|addr| {
                reuse
                    .iter()
                    .find(|b| &b.addr == addr)
                    .map(Arc::clone)
                    .unwrap_or_else(|| {
                        Arc::new(Backend::new(
                            addr.clone(),
                            max_idle,
                            connect_timeout,
                            transport,
                            registry,
                        ))
                    })
            })
            .collect();
        Ok(Self {
            membership,
            ring,
            backends,
        })
    }

    /// The first `n` owners of `cascade`, primary first.
    fn owners_of(&self, cascade: &str, n: usize) -> Vec<Arc<Backend>> {
        self.ring
            .route_n(cascade, n)
            .into_iter()
            .map(|i| Arc::clone(&self.backends[i]))
            .collect()
    }
}

/// What one admin rebalance did.
#[derive(Debug, Default, Clone, Copy)]
struct HandoffReport {
    /// Snapshot→restore handoffs that landed a cascade at a new owner.
    migrated: u64,
    /// Copies evicted from members that are no longer owners.
    evicted: u64,
    /// Handoffs that failed (source unreadable or target rejected).
    failed: u64,
}

/// The sharding tier: a [`LineService`] that owns the live topology and
/// the backend pools.
#[derive(Debug)]
pub struct RouterState {
    topology: RwLock<Topology>,
    /// Serializes admin transitions (`join`/`drain`/`rejoin`/`remove`).
    /// An incremental rebalance releases the topology write lock
    /// between chunks, so the topology lock alone no longer implies
    /// one-admin-at-a-time — this mutex does, without ever making the
    /// data path queue behind an admin verb.
    admin: Mutex<()>,
    data_replicas: usize,
    ring_replicas: usize,
    max_idle: usize,
    connect_timeout: Duration,
    backend_transport: Transport,
    parallelism: Parallelism,
    requests: AtomicU64,
    /// The router's own telemetry (`dlm_router_*` series, plus whatever
    /// the front end registers when this state is served over TCP).
    metrics: Registry,
    request_metrics: RequestMetrics,
    /// Items per routed batch line (the tier's fan-out width).
    batch_fanout: Histogram,
    /// Wall time of each committed admin rebalance.
    handoff_micros: Histogram,
    /// Topology commits (ring version bumps).
    ring_bumps: Counter,
    /// Anti-entropy repair outcomes (`dlm_router_repairs_total`).
    repairs: RepairCounters,
}

/// `dlm_router_repairs_total{outcome}`: what each anti-entropy
/// comparison concluded. `clean` — the checksums already agreed (the
/// "missed" write had in fact been delivered); `repaired` — a diverged
/// copy was re-pushed to bit-identity; `failed` — the diverged owner
/// could not be repaired (usually: it is down).
#[derive(Debug)]
struct RepairCounters {
    clean: Counter,
    repaired: Counter,
    failed: Counter,
}

impl RepairCounters {
    fn new(registry: &Registry) -> Self {
        let of =
            |outcome: &str| registry.counter("dlm_router_repairs_total", &[("outcome", outcome)]);
        Self {
            clean: of("clean"),
            repaired: of("repaired"),
            failed: of("failed"),
        }
    }
}

impl RouterState {
    /// Builds the router. Backends are dialed lazily on first use, so
    /// the router comes up even while backends are still starting.
    ///
    /// # Errors
    ///
    /// Ring/membership-construction errors: no backends, duplicate
    /// addresses, zero replicas, or zero data replicas.
    pub fn new(config: RouterConfig) -> Result<Self> {
        if config.data_replicas == 0 {
            return Err(ServeError::Cluster(
                dlm_cluster::ClusterError::InvalidParameter {
                    name: "data_replicas",
                    reason: "must be positive".into(),
                },
            ));
        }
        let membership = Membership::new(&config.backends)?;
        let metrics = Registry::new();
        let topology = Topology::build(
            membership,
            config.replicas,
            &[],
            config.max_idle_per_backend,
            config.connect_timeout,
            config.backend_transport,
            &metrics,
        )?;
        let request_metrics = RequestMetrics::new(&metrics, "dlm_router", ROUTER_VERB_LABELS);
        let batch_fanout = metrics.histogram("dlm_router_batch_fanout", &[]);
        let handoff_micros = metrics.histogram("dlm_router_handoff_micros", &[]);
        let ring_bumps = metrics.counter("dlm_router_ring_bumps_total", &[]);
        let repairs = RepairCounters::new(&metrics);
        let state = Self {
            topology: RwLock::new(topology),
            admin: Mutex::new(()),
            data_replicas: config.data_replicas,
            ring_replicas: config.replicas,
            max_idle: config.max_idle_per_backend,
            connect_timeout: config.connect_timeout,
            backend_transport: config.backend_transport,
            parallelism: config.parallelism,
            requests: AtomicU64::new(0),
            metrics,
            request_metrics,
            batch_fanout,
            handoff_micros,
            ring_bumps,
            repairs,
        };
        // Seed every backend with the initial ring version so their
        // `stats` lines carry it for skew detection. Best-effort:
        // backends may still be starting (they dial lazily).
        state.push_ring_version();
        Ok(state)
    }

    /// Pushes the committed ring version to every active backend so a
    /// later `stats` scatter-gather can detect a backend that missed a
    /// topology change. Best-effort by design — an unreachable backend
    /// shows up as skew (or as unreachable) rather than blocking the
    /// commit.
    fn push_ring_version(&self) {
        let (backends, version) = {
            let topology = self.topology();
            (topology.backends.clone(), topology.membership.version())
        };
        let line = format!("{{\"type\":\"ring\",\"version\":{version}}}");
        for backend in backends {
            if let Err(reason) = backend.round_trip(&line, false) {
                dlm_obs::debug!(
                    "dlm-router",
                    "ring version push to {} failed: {reason}",
                    backend.addr
                );
            }
        }
    }

    /// The router's metrics registry (the `metrics` verb merges this
    /// with every backend's snapshot).
    #[must_use]
    pub fn metrics_registry(&self) -> &Registry {
        &self.metrics
    }

    fn topology(&self) -> std::sync::RwLockReadGuard<'_, Topology> {
        self.topology.read().expect("topology lock poisoned")
    }

    /// Backend addresses of the current topology, in ring label order.
    #[must_use]
    pub fn backend_addrs(&self) -> Vec<String> {
        self.topology().membership.active_labels()
    }

    /// The current ring version: bumps exactly when an admin verb
    /// changes the active backend set.
    #[must_use]
    pub fn ring_version(&self) -> u64 {
        self.topology().membership.version()
    }

    /// Data replicas every cascade is written to.
    #[must_use]
    pub fn data_replicas(&self) -> usize {
        self.data_replicas
    }

    /// The backend index that owns `cascade` on the current ring.
    #[must_use]
    pub fn shard_of(&self, cascade: &str) -> usize {
        self.topology().ring.route(cascade)
    }

    /// Handles one protocol line: `stats` scatter-gathers, the admin
    /// verbs mutate the topology, everything else forwards to the
    /// owning shard(s). Mirrors
    /// [`dlm_serve::ServerState::handle_line`]'s contract — malformed
    /// input becomes an `{"ok":false,...}` line, never a panic.
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let (verb, trace, routed) = match Json::parse(line) {
            Ok(value) => {
                let verb = value
                    .get("type")
                    .and_then(Json::as_str)
                    .map_or("invalid", router_verb);
                let trace = value.get("trace").and_then(Json::as_str).map(str::to_owned);
                (verb, trace, self.route_value(&value, line))
            }
            Err(e) => ("invalid", None, Err(ServeError::Protocol(e))),
        };
        let response = match routed {
            // A relayed backend response is passed through untouched —
            // this is what keeps routed forecasts byte-identical to
            // direct ones.
            Ok(Routed::Relayed(raw)) => raw,
            Ok(Routed::Synthesized(value)) => value.to_string(),
            Err(e) => error_response(&e.to_string()).to_string(),
        };
        self.request_metrics
            .count(verb, response_is_error(&response));
        let elapsed = started.elapsed();
        self.request_metrics.observe_service(verb, elapsed);
        if elapsed >= SLOW_REQUEST {
            dlm_obs::warn!(
                "dlm-router",
                "slow request verb={verb} micros={} trace={}",
                elapsed.as_micros(),
                trace.as_deref().unwrap_or("-")
            );
        }
        response
    }

    fn route_value(&self, value: &Json, line: &str) -> Result<Routed> {
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::Protocol("missing field `type`".into()))?;
        match kind {
            "stats" => Ok(Routed::Synthesized(self.handle_stats())),
            "metrics" => Ok(Routed::Synthesized(self.handle_metrics())),
            "join" | "drain" | "rejoin" | "remove" => {
                let backend = value
                    .get("backend")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ServeError::Protocol("missing field `backend`".into()))?;
                self.handle_admin(kind, backend)
            }
            // Backend-scoped maintenance verbs make no sense through the
            // sharding tier: `restore` would need an owner decision the
            // snapshot already encodes, and `cascades`/`checksums`/
            // `evict` address one node's store, not the cluster's (the
            // router issues them itself during rebalance and repair).
            "restore" | "cascades" | "checksums" | "evict" => Err(ServeError::Protocol(format!(
                "request type `{kind}` is backend-scoped; send it to a backend directly"
            ))),
            "open" | "ingest" | "forecast" | "snapshot" => {
                let cascade = value
                    .get("cascade")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ServeError::Protocol("missing field `cascade`".into()))?;
                let owners = self.topology().owners_of(cascade, self.data_replicas);
                // Only pure reads (`forecast`, `snapshot`) are retried
                // on a stale pooled connection and fail over between
                // owners; writes go to ALL owners — that is what keeps
                // the replicas identical — and a partial landing is
                // surfaced, never silently reported as a clean success.
                if matches!(kind, "forecast" | "snapshot") {
                    Ok(route_read(&owners, line))
                } else {
                    Ok(self.route_write_repairing(&owners, cascade, line))
                }
            }
            // A batch is unpacked at the tier: each item routes to its
            // own shard(s) independently, and the serialized
            // sub-responses are spliced back through the same
            // [`batch_response`] wrapper the serving core uses — which
            // is what keeps a routed batch byte-identical to a direct
            // one even when its items land on different backends.
            "batch" => {
                let requests = value
                    .get("requests")
                    .ok_or_else(|| ServeError::Protocol("missing field `requests`".into()))?
                    .as_array()
                    .ok_or_else(|| ServeError::Protocol("`requests` must be an array".into()))?;
                if requests.is_empty() {
                    return Err(ServeError::Protocol(
                        "`requests` must hold at least one request".into(),
                    ));
                }
                self.batch_fanout.observe(requests.len() as u64);
                let results: Vec<String> = requests
                    .iter()
                    .map(|item| self.route_batch_item(item))
                    .collect();
                Ok(Routed::Relayed(batch_response(&results)))
            }
            other => Err(ServeError::Protocol(format!(
                "unknown request type `{other}`"
            ))),
        }
    }

    /// Routes one batch item and serializes its response. Mirrors the
    /// serving core's per-item contract exactly: items are parsed
    /// independently, only the cascade-scoped data verbs are allowed
    /// (same error text as `ServerState`), and a failed item errors in
    /// place without poisoning its neighbors.
    fn route_batch_item(&self, item: &Json) -> String {
        let mut verb = "invalid";
        let routed = Request::from_value(item).and_then(|request| {
            verb = verb_label(&request);
            let (cascade, read) = match &request {
                Request::Open { cascade, .. } | Request::Ingest { cascade, .. } => {
                    (cascade.clone(), false)
                }
                Request::Forecast { cascade, .. } | Request::Snapshot { cascade } => {
                    (cascade.clone(), true)
                }
                _ => {
                    return Err(ServeError::Protocol(
                        "batch items must be open/ingest/forecast/snapshot".into(),
                    ))
                }
            };
            let owners = self.topology().owners_of(&cascade, self.data_replicas);
            let line = item.to_string();
            Ok(if read {
                route_read(&owners, &line)
            } else {
                self.route_write_repairing(&owners, &cascade, &line)
            })
        });
        let response = match routed {
            Ok(Routed::Relayed(raw)) => raw,
            Ok(Routed::Synthesized(value)) => value.to_string(),
            Err(e) => error_response(&e.to_string()).to_string(),
        };
        // Items count under their own verb, mirroring the serving
        // core: per-verb counters track logical operations.
        self.request_metrics
            .count(verb, response_is_error(&response));
        response
    }

    /// Admin dispatch. `remove` keeps the original synchronous
    /// under-write-lock rebalance (its source node is dead; reads to
    /// its shards are failing over already, so pausing routing for the
    /// re-replication sweep is the cheapest correct thing). The
    /// planned transitions — `join`, `drain`, and `rejoin` of an
    /// unknown label — run the incremental chunked path; `rejoin` of a
    /// label that is still an active member becomes an anti-entropy
    /// sweep with no ring change. The admin mutex serializes
    /// transitions end-to-end so two verbs can never interleave their
    /// chunks, without the data path ever queuing behind one.
    fn handle_admin(&self, verb: &str, label: &str) -> Result<Routed> {
        let _admin = self.admin.lock().expect("admin lock poisoned");
        match verb {
            "remove" => self.admin_remove(label),
            "join" | "drain" => self.admin_incremental(verb, label),
            "rejoin" => {
                if self.topology().membership.status(label) == Some(NodeStatus::Active) {
                    self.admin_rejoin_member(label)
                } else {
                    self.admin_incremental(verb, label)
                }
            }
            _ => unreachable!("route_value only dispatches admin verbs here"),
        }
    }

    /// The fail-stop path: membership transition, full re-replication
    /// sweep, and commit under one topology write-lock hold. Never
    /// aborts — the dead node's copies are gone either way, and a
    /// partial re-replication is strictly better than none.
    fn admin_remove(&self, label: &str) -> Result<Routed> {
        let start = Instant::now();
        let mut topology = self.topology.write().expect("topology lock poisoned");
        let mut membership = topology.membership.clone();
        membership.remove(label)?;
        let next = Topology::build(
            membership,
            self.ring_replicas,
            &topology.backends,
            self.max_idle,
            self.connect_timeout,
            self.backend_transport,
            &self.metrics,
        )?;
        let plan = migrate_cascades(&topology.backends, &next, self.data_replicas);
        let mut report = plan.report;
        let departed: Vec<Arc<Backend>> = topology
            .backends
            .iter()
            .filter(|b| !next.membership.contains(&b.addr))
            .map(Arc::clone)
            .collect();
        let ring_version = next.membership.version();
        let backends = next.membership.active_labels();
        *topology = next;
        drop(topology);
        self.finish_commit(departed, plan.trims, &mut report);
        self.handoff_micros.observe_duration(start.elapsed());
        dlm_obs::info!(
            "dlm-router",
            "remove `{label}` committed: ring_version={ring_version} migrated={} evicted={} ms={:.1}",
            report.migrated,
            report.evicted,
            start.elapsed().as_secs_f64() * 1e3
        );
        Ok(admin_response(
            "remove",
            label,
            ring_version,
            backends,
            &report,
            start,
        ))
    }

    /// One incremental (chunked) rebalance for a planned transition.
    ///
    /// 1. **Stage** (brief write-lock hold): validate the transition on
    ///    a scratch membership, build the planned topology, and — for
    ///    `drain` — mark the live node `Draining`. The live ring is
    ///    untouched: reads and writes keep routing to the old owners,
    ///    and `ring_version` does not move.
    /// 2. **Migrate in chunks**: the old holders' inventory is walked
    ///    [`REBALANCE_CHUNK`] cascades at a time, the write lock held
    ///    per chunk and released between chunks, so a read queued
    ///    behind a full-node drain waits for at most one chunk. Any
    ///    failed handoff aborts the whole transition.
    /// 3. **Commit** (one write-lock hold): the inventory is taken
    ///    again — a cascade opened mid-rebalance was never staged and
    ///    is migrated now — then every migrated copy is
    ///    checksum-compared against its source — writes kept landing on
    ///    the old owners between chunks, so an early-chunk copy can be
    ///    stale — refreshed where they differ, and only then is the new
    ///    topology swapped in and `ring_version` bumped.
    ///
    /// An abort evicts the restores that landed and reverts the
    /// `Draining` marker: the topology and every cascade's placement
    /// are exactly as they were.
    fn admin_incremental(&self, verb: &str, label: &str) -> Result<Routed> {
        let start = Instant::now();
        let draining = verb == "drain";
        let (old_backends, next) = {
            let mut topology = self.topology.write().expect("topology lock poisoned");
            let mut planned = topology.membership.clone();
            if draining {
                planned.begin_drain(label)?;
                planned.complete_drain(label)?;
            } else {
                planned.join(label)?;
            }
            let next = Topology::build(
                planned,
                self.ring_replicas,
                &topology.backends,
                self.max_idle,
                self.connect_timeout,
                self.backend_transport,
                &self.metrics,
            )?;
            if draining {
                // Mark the live membership only now that the planned
                // topology is known-buildable. The marker blocks
                // re-entry and records the in-flight handoff; the ring
                // — already built — keeps routing to the node.
                topology
                    .membership
                    .begin_drain(label)
                    .expect("staged drain validated above");
            }
            (topology.backends.clone(), next)
        };

        // Inventory runs lock-free (read-only round trips); migration
        // holds the lock per chunk only.
        let holders = inventory(&old_backends);
        let entries: Vec<(&String, &Vec<Arc<Backend>>)> = holders.iter().collect();
        let mut plan = MigratePlan::new();
        for chunk in entries.chunks(REBALANCE_CHUNK) {
            {
                let _guard = self.topology.write().expect("topology lock poisoned");
                for (id, holder_backends) in chunk {
                    migrate_one(
                        id,
                        holder_backends,
                        &next,
                        self.data_replicas,
                        None,
                        &mut plan,
                    );
                }
            }
            if plan.report.failed > 0 {
                break;
            }
            // Releasing the guard alone is not enough for foreground
            // traffic: readers woken by the release race the immediate
            // re-acquire below and can lose every round. A rebalance is
            // background maintenance — one millisecond per chunk is
            // noise next to the chunk's own socket work and lets the
            // queued readers drain through.
            std::thread::sleep(Duration::from_millis(1));
        }

        let mut report = plan.report;
        if report.failed == 0 {
            let mut topology = self.topology.write().expect("topology lock poisoned");
            // Cascades opened after the lock-free inventory snapshot
            // were never staged — a write racing the rebalance can
            // create one on the old owners between chunks. No write is
            // in flight while the lock is held, so a second inventory
            // is final: migrate the late arrivals under the same hold
            // the refresh runs in. Their copies are fresh by
            // construction, and `holders` keeps only pre-migration
            // sources, so the refresh below skips them.
            for (id, holder_backends) in &inventory(&old_backends) {
                if !holders.contains_key(id) {
                    migrate_one(
                        id,
                        holder_backends,
                        &next,
                        self.data_replicas,
                        None,
                        &mut plan,
                    );
                }
            }
            report = plan.report;
            // No write is in flight while we hold the lock, so the
            // sources' checksums are final.
            let refresh = if report.failed == 0 {
                refresh_landed(&plan, &holders)
            } else {
                Err(0) // a failed late handoff aborts like a failed chunk
            };
            match refresh {
                Err(stale_failures) => report.failed += stale_failures,
                Ok(refreshed) => {
                    let departed: Vec<Arc<Backend>> = topology
                        .backends
                        .iter()
                        .filter(|b| !next.membership.contains(&b.addr))
                        .map(Arc::clone)
                        .collect();
                    let ring_version = next.membership.version();
                    let backends = next.membership.active_labels();
                    *topology = next;
                    drop(topology);
                    self.finish_commit(departed, plan.trims, &mut report);
                    self.handoff_micros.observe_duration(start.elapsed());
                    dlm_obs::info!(
                        "dlm-router",
                        "{verb} `{label}` committed: ring_version={ring_version} migrated={} \
                         refreshed={refreshed} evicted={} ms={:.1}",
                        report.migrated,
                        report.evicted,
                        start.elapsed().as_secs_f64() * 1e3
                    );
                    return Ok(admin_response(
                        verb,
                        label,
                        ring_version,
                        backends,
                        &report,
                        start,
                    ));
                }
            }
        }
        // Abort. Planned transitions must be lossless: no copy has
        // been evicted (trims run only after commit), so the old
        // topology still holds every cascade. Evict the restores that
        // did land so a retried verb does not fight stale copies, and
        // revert the drain marker.
        for (target, id) in plan.landed {
            let _ = target.round_trip(&evict_line(&id), false);
        }
        if draining {
            let mut topology = self.topology.write().expect("topology lock poisoned");
            topology
                .membership
                .abort_drain(label)
                .expect("marked draining above");
        }
        Ok(Routed::Synthesized(error_response(&format!(
            "{verb} `{label}` aborted: {} cascade handoffs failed; topology unchanged",
            report.failed
        ))))
    }

    /// Re-admission of a label that is still an active member — the
    /// restarted-backend case where no `remove` ever ran. The ring is
    /// already correct, so there is no membership change and no version
    /// bump; what the restarted node needs is anti-entropy. Its
    /// `--snapshot-dir` replay may predate writes that landed while it
    /// was down, so its resident copies are distrusted: every cascade
    /// is checksum-compared against a trusted replica and re-pushed
    /// where it diverges (or is missing), chunk by chunk under the same
    /// per-chunk lock discipline as a drain. Finishes by re-pushing the
    /// committed ring version — a restarted backend reports version 0,
    /// which `stats` would otherwise flag as ring skew forever.
    fn admin_rejoin_member(&self, label: &str) -> Result<Routed> {
        let start = Instant::now();
        let (backends, ring_version) = {
            let topology = self.topology();
            (topology.backends.clone(), topology.membership.version())
        };
        let rejoiner = backends
            .iter()
            .find(|b| b.addr == label)
            .map(Arc::clone)
            .expect("caller checked the label is an active member");
        let Some(rejoiner_sums) = backend_checksums(&rejoiner) else {
            return Ok(Routed::Synthesized(error_response(&format!(
                "rejoin `{label}` failed: backend unreachable"
            ))));
        };
        let holders = inventory(&backends);
        let entries: Vec<(&String, &Vec<Arc<Backend>>)> = holders.iter().collect();
        let mut plan = MigratePlan::new();
        for chunk in entries.chunks(REBALANCE_CHUNK) {
            {
                // Per-chunk write-lock hold: a repair restore never
                // races a write, and between chunks both copies advance
                // identically (the member is in the ring, so writes
                // reach it too).
                let topology = self.topology.write().expect("topology lock poisoned");
                for (id, holder_backends) in chunk {
                    migrate_one(
                        id,
                        holder_backends,
                        &topology,
                        self.data_replicas,
                        Some((label, &rejoiner_sums)),
                        &mut plan,
                    );
                }
            }
            // Same foreground-traffic yield as the incremental path.
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut report = plan.report;
        // The topology did not change, so there is no commit to wait
        // for: trim the stale copies of cascades the node no longer
        // owns immediately.
        for (holder, id) in plan.trims {
            if holder.round_trip(&evict_line(&id), false).is_ok() {
                report.evicted += 1;
            }
        }
        self.push_ring_version();
        self.handoff_micros.observe_duration(start.elapsed());
        dlm_obs::info!(
            "dlm-router",
            "rejoin `{label}` (member) repaired: ring_version={ring_version} repaired={} \
             evicted={} failed={} ms={:.1}",
            report.migrated,
            report.evicted,
            report.failed,
            start.elapsed().as_secs_f64() * 1e3
        );
        let backends_list = self.topology().membership.active_labels();
        Ok(admin_response(
            "rejoin",
            label,
            ring_version,
            backends_list,
            &report,
            start,
        ))
    }

    /// Post-commit tail shared by every topology-changing verb: close
    /// departed pools eagerly (nothing routes there again under this
    /// membership, and a later `join` must start from fresh dials),
    /// execute the planned trims — every one belongs to a cascade whose
    /// full new owner set is in place, so a trim can no longer strand a
    /// cascade — and re-push the committed ring version so `stats` can
    /// detect stragglers.
    fn finish_commit(
        &self,
        departed: Vec<Arc<Backend>>,
        trims: Vec<(Arc<Backend>, String)>,
        report: &mut HandoffReport,
    ) {
        for backend in departed {
            backend.close_idle();
        }
        for (holder, id) in trims {
            if holder.round_trip(&evict_line(&id), false).is_ok() {
                report.evicted += 1;
            }
        }
        self.push_ring_version();
        self.ring_bumps.inc();
    }

    /// Routes a write and, when it lands degraded, runs the
    /// anti-entropy repair inline: compare each missed owner's checksum
    /// against the owner holding the acked write and re-push the
    /// committed snapshot where they diverge. Inline (rather than
    /// deferred) keeps healing deterministic — by the time the degraded
    /// response reaches the client, repair has been attempted exactly
    /// once per missed owner.
    fn route_write_repairing(&self, owners: &[Arc<Backend>], cascade: &str, line: &str) -> Routed {
        let outcome = route_write(owners, line);
        if let Some(reference) = &outcome.applied {
            if !outcome.missed.is_empty() {
                self.repair_degraded(cascade, reference, &outcome.missed);
            }
        }
        outcome.routed
    }

    /// The post-degraded-write anti-entropy pass for one cascade.
    fn repair_degraded(&self, cascade: &str, reference: &Arc<Backend>, missed: &[Arc<Backend>]) {
        let Some(want) = backend_checksums(reference).and_then(|m| m.get(cascade).cloned()) else {
            // Without reference bytes there is nothing to repair from;
            // the degraded marker on the response stands.
            return;
        };
        let mut restore_line: Option<Option<String>> = None;
        for backend in missed {
            let have = backend_checksums(backend).and_then(|m| m.get(cascade).cloned());
            if have.as_ref() == Some(&want) {
                // The "missed" write was delivered after all (the
                // connection died after the bytes landed): the copies
                // agree, nothing to re-send.
                self.repairs.clean.inc();
                backend.repair_failures.store(0, Ordering::Relaxed);
                continue;
            }
            let line = restore_line
                .get_or_insert_with(|| {
                    fetch_snapshot_hex(reference, cascade)
                        .map(|hex| Request::Restore { snapshot: hex }.to_json().to_string())
                })
                .clone();
            let repaired = line.is_some_and(|l| restore_landed(backend, &l, cascade));
            self.note_repair(backend, repaired, cascade);
        }
    }

    /// Counts one repair outcome and applies the two-strikes eager
    /// idle-pool close.
    fn note_repair(&self, backend: &Arc<Backend>, repaired: bool, cascade: &str) {
        if repaired {
            self.repairs.repaired.inc();
            backend.repair_failures.store(0, Ordering::Relaxed);
            dlm_obs::info!(
                "dlm-router",
                "anti-entropy repaired `{cascade}` on {}",
                backend.addr
            );
        } else {
            self.repairs.failed.inc();
            let strikes = backend.repair_failures.fetch_add(1, Ordering::Relaxed) + 1;
            if strikes >= REPAIR_STRIKES {
                // The same eager close a departed backend gets: after
                // two straight failed repairs nothing pooled to this
                // node is trustworthy.
                backend.close_idle();
                dlm_obs::warn!(
                    "dlm-router",
                    "anti-entropy repair of `{cascade}` on {} failed {strikes} times in a row; \
                     closing idle pool",
                    backend.addr
                );
            }
        }
    }

    /// One anti-entropy pass over `cascade`'s owner set, usable by
    /// drills and operators (the degraded-write path runs the same
    /// comparison automatically). Every owner's copy is
    /// checksum-compared; when they disagree, the copy with the most
    /// ingested state wins — votes are append-only and replicas apply
    /// them in the same order, so the longest encoded snapshot is the
    /// one every acked write landed in — and it is re-pushed to the
    /// rest. Returns `(diverged, repaired)`: owners whose copy differed
    /// from the reference (a missing copy counts), and how many of
    /// those were restored to bit-identity.
    pub fn repair_cascade(&self, cascade: &str) -> (usize, usize) {
        let owners = {
            let topology = self.topology();
            topology.owners_of(cascade, self.data_replicas)
        };
        let sums: Vec<Option<String>> = owners
            .iter()
            .map(|b| backend_checksums(b).and_then(|m| m.get(cascade).cloned()))
            .collect();
        // Distinct checksums, in ring order.
        let mut groups: Vec<(String, usize)> = Vec::new();
        for (i, sum) in sums.iter().enumerate() {
            if let Some(sum) = sum {
                if !groups.iter().any(|(g, _)| g == sum) {
                    groups.push((sum.clone(), i));
                }
            }
        }
        if groups.is_empty() {
            // No owner holds the cascade: nothing to repair from.
            return (0, 0);
        }
        if groups.len() == 1 && sums.iter().all(Option::is_some) {
            self.repairs.clean.inc();
            return (0, 0);
        }
        // Reference: the longest encoded copy among the distinct ones.
        let mut reference: Option<(String, String)> = None; // (hex, checksum)
        for (sum, idx) in &groups {
            let Some(snapshot_hex) = fetch_snapshot_hex(&owners[*idx], cascade) else {
                continue;
            };
            if reference
                .as_ref()
                .is_none_or(|(best, _)| snapshot_hex.len() > best.len())
            {
                reference = Some((snapshot_hex, sum.clone()));
            }
        }
        let Some((snapshot_hex, ref_sum)) = reference else {
            // Divergence detected but no copy could be fetched.
            let first = &groups[0].0;
            let diverged = sums
                .iter()
                .filter(|s| s.as_deref() != Some(first.as_str()))
                .count();
            return (diverged, 0);
        };
        let restore_line = Request::Restore {
            snapshot: snapshot_hex,
        }
        .to_json()
        .to_string();
        let mut diverged = 0;
        let mut repaired = 0;
        for (owner, sum) in owners.iter().zip(&sums) {
            if sum.as_ref() == Some(&ref_sum) {
                continue;
            }
            diverged += 1;
            let ok = restore_landed(owner, &restore_line, cascade);
            if ok {
                repaired += 1;
            }
            self.note_repair(owner, ok, cascade);
        }
        (diverged, repaired)
    }

    /// Fans `{"type":"stats"}` out to every backend and folds the shard
    /// counters into one cluster view.
    fn handle_stats(&self) -> Json {
        let (backends_snapshot, ring_version, ownership) = {
            let topology = self.topology();
            (
                topology.backends.clone(),
                topology.membership.version(),
                topology.ring.ownership_fractions(),
            )
        };
        let indices: Vec<usize> = (0..backends_snapshot.len()).collect();
        let gathered: Vec<(f64, std::result::Result<Json, String>)> =
            parallel_map(self.parallelism, &indices, |_, &i| {
                let start = Instant::now();
                let outcome = backends_snapshot[i]
                    .round_trip(r#"{"type":"stats"}"#, true)
                    .and_then(|raw| {
                        Json::parse(&raw).map_err(|e| format!("bad stats response: {e}"))
                    });
                (start.elapsed().as_secs_f64() * 1e3, outcome)
            });

        let mut backends = Vec::with_capacity(backends_snapshot.len());
        let mut cache = CacheStats::default();
        let mut sums = Sums::default();
        let mut models: Option<Json> = None;
        let mut reachable = 0usize;
        let mut slowest_ms = 0f64;
        let mut skewed: Vec<String> = Vec::new();
        for (backend, (ms, outcome)) in backends_snapshot.iter().zip(gathered) {
            let mut entry = vec![("addr".to_owned(), Json::str(backend.addr.clone()))];
            match outcome {
                Ok(stats) => {
                    reachable += 1;
                    slowest_ms = slowest_ms.max(ms);
                    // A backend that reports a ring version (it omits the
                    // field until a router pushes one) must agree with
                    // the committed topology; a straggler either missed
                    // a push or belongs to another router's ring.
                    if let Some(reported) = stats.get("ring_version").and_then(Json::as_u64) {
                        if reported != ring_version {
                            skewed.push(format!("{}={reported}", backend.addr));
                        }
                    }
                    cache += CacheStats {
                        hits: nested_u64(&stats, "cache", "hits"),
                        misses: nested_u64(&stats, "cache", "misses"),
                        evictions: nested_u64(&stats, "cache", "evictions"),
                    };
                    sums.absorb(&stats);
                    if models.is_none() {
                        models = stats.get("models").cloned();
                    }
                    entry.push(("ok".to_owned(), Json::Bool(true)));
                    entry.push(("ms".to_owned(), Json::num(ms)));
                    entry.push(("stats".to_owned(), stats));
                }
                Err(reason) => {
                    entry.push(("ok".to_owned(), Json::Bool(false)));
                    entry.push(("error".to_owned(), Json::str(reason)));
                }
            }
            backends.push(Json::Obj(entry));
        }

        if reachable == 0 {
            return Json::Obj(vec![
                ("ok".to_owned(), Json::Bool(false)),
                ("error".to_owned(), Json::str("no backend reachable")),
                ("backends".to_owned(), Json::Arr(backends)),
            ]);
        }

        let aggregate = Json::Obj(vec![
            (
                "cache".to_owned(),
                Json::Obj(vec![
                    ("hits".to_owned(), Json::num(cache.hits as f64)),
                    ("misses".to_owned(), Json::num(cache.misses as f64)),
                    ("evictions".to_owned(), Json::num(cache.evictions as f64)),
                    ("len".to_owned(), Json::num(sums.cache_len as f64)),
                    ("capacity".to_owned(), Json::num(sums.cache_capacity as f64)),
                ]),
            ),
            ("cascades".to_owned(), Json::num(sums.cascades as f64)),
            (
                "cascade_evictions".to_owned(),
                Json::num(sums.cascade_evictions as f64),
            ),
            (
                "cascade_expirations".to_owned(),
                Json::num(sums.cascade_expirations as f64),
            ),
            ("requests".to_owned(), Json::num(sums.requests as f64)),
            ("refit_jobs".to_owned(), Json::num(sums.refit_jobs as f64)),
            (
                "hours_closed".to_owned(),
                Json::num(sums.hours_closed as f64),
            ),
            ("models".to_owned(), models.unwrap_or(Json::Arr(Vec::new()))),
        ]);
        let router = Json::Obj(vec![
            (
                "requests".to_owned(),
                Json::num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            ("ring_version".to_owned(), Json::num(ring_version as f64)),
            (
                "data_replicas".to_owned(),
                Json::num(self.data_replicas as f64),
            ),
            (
                "routed".to_owned(),
                Json::Arr(
                    backends_snapshot
                        .iter()
                        .map(|b| Json::num(b.routed.load(Ordering::Relaxed) as f64))
                        .collect(),
                ),
            ),
            (
                "backend_errors".to_owned(),
                Json::Arr(
                    backends_snapshot
                        .iter()
                        .map(|b| Json::num(b.errors.load(Ordering::Relaxed) as f64))
                        .collect(),
                ),
            ),
            (
                "ownership".to_owned(),
                Json::Arr(ownership.into_iter().map(Json::Num).collect()),
            ),
            ("replicas".to_owned(), Json::num(self.ring_replicas as f64)),
        ]);
        let mut fields = vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("role".to_owned(), Json::str("router")),
            (
                "degraded".to_owned(),
                Json::Bool(reachable < backends_snapshot.len()),
            ),
        ];
        if !skewed.is_empty() {
            dlm_obs::warn!(
                "dlm-router",
                "ring skew: router ring_version={ring_version}, backends disagree: {}",
                skewed.join(", ")
            );
            fields.push(("ring_skew".to_owned(), Json::Bool(true)));
        }
        fields.extend([
            ("aggregate".to_owned(), aggregate),
            ("slowest_backend_ms".to_owned(), Json::num(slowest_ms)),
            ("router".to_owned(), router),
            ("backends".to_owned(), Json::Arr(backends)),
        ]);
        Json::Obj(fields)
    }

    /// Fans `{"type":"metrics"}` out to every backend and merges the
    /// structured snapshots into one cluster-wide exposition holding
    /// three disjoint groups of series:
    ///
    /// * the **aggregate**: every backend snapshot merged identity-wise
    ///   (counters sum, histograms merge bucket by bucket), no extra
    ///   labels — the cluster total;
    /// * **per-backend** series, the same snapshots tagged
    ///   `backend="addr"` — attribution;
    /// * the **router's own** series, tagged `tier="router"` so the
    ///   front-end wire/reactor counters this state registers never
    ///   fold into the backend aggregate.
    fn handle_metrics(&self) -> Json {
        let backends_snapshot = { self.topology().backends.clone() };
        let indices: Vec<usize> = (0..backends_snapshot.len()).collect();
        let line = r#"{"type":"metrics"}"#;
        let gathered: Vec<std::result::Result<MetricsSnapshot, String>> =
            parallel_map(self.parallelism, &indices, |_, &i| {
                backends_snapshot[i]
                    .round_trip(line, true)
                    .and_then(|raw| {
                        Json::parse(&raw).map_err(|e| format!("bad metrics response: {e}"))
                    })
                    .and_then(|parsed| {
                        let snapshot = parsed
                            .get("snapshot")
                            .ok_or_else(|| "metrics response missing `snapshot`".to_owned())?;
                        snapshot_from_json(snapshot).map_err(|e| e.to_string())
                    })
            });
        let mut merged = self.metrics.snapshot().with_label("tier", "router");
        let mut aggregate = MetricsSnapshot::default();
        let mut unreachable = 0usize;
        for (backend, outcome) in backends_snapshot.iter().zip(gathered) {
            match outcome {
                Ok(snapshot) => {
                    aggregate.merge(&snapshot);
                    merged.merge(&snapshot.with_label("backend", &backend.addr));
                }
                Err(reason) => {
                    unreachable += 1;
                    dlm_obs::warn!(
                        "dlm-router",
                        "metrics scrape of {} failed: {reason}",
                        backend.addr
                    );
                }
            }
        }
        merged.merge(&aggregate);
        let response = metrics_response(&merged);
        let Json::Obj(mut fields) = response else {
            unreachable!("metrics_response builds an object");
        };
        if unreachable > 0 {
            fields.push((
                "backends_unreachable".to_owned(),
                Json::num(unreachable as f64),
            ));
        }
        Json::Obj(fields)
    }
}

/// The migrate phase's full outcome: the handoff counters, the
/// restores that landed (rollback targets if the verb aborts), and the
/// evictions to run only once the new topology is committed.
struct MigratePlan {
    report: HandoffReport,
    /// (target, cascade) of every restore that landed.
    landed: Vec<(Arc<Backend>, String)>,
    /// (holder, cascade) copies to evict after commit — only cascades
    /// whose migration fully succeeded are ever planned for trimming.
    trims: Vec<(Arc<Backend>, String)>,
}

impl MigratePlan {
    fn new() -> Self {
        Self {
            report: HandoffReport::default(),
            landed: Vec::new(),
            trims: Vec::new(),
        }
    }
}

/// Every reachable backend lists its resident cascades (`cascades`
/// verb) into a deterministic `id → holders` map. A dead node simply
/// lists nothing — its cascades are sourced from surviving replicas,
/// which is exactly the `remove` re-replication path.
fn inventory(backends: &[Arc<Backend>]) -> BTreeMap<String, Vec<Arc<Backend>>> {
    let mut holders: BTreeMap<String, Vec<Arc<Backend>>> = BTreeMap::new();
    let list_line = Request::Cascades.to_json().to_string();
    for backend in backends {
        let Ok(raw) = backend.round_trip(&list_line, true) else {
            continue; // unreachable: remove-path source loss
        };
        let Ok(parsed) = Json::parse(&raw) else {
            continue;
        };
        let Some(ids) = parsed.get("cascades").and_then(Json::as_array) else {
            continue;
        };
        for id in ids.iter().filter_map(Json::as_str) {
            holders
                .entry(id.to_owned())
                .or_default()
                .push(Arc::clone(backend));
        }
    }
    holders
}

/// Migrates one cascade toward its owner set under `next`, appending
/// handoffs and planned trims to `plan` — copies are added, never
/// removed (evictions are planned, not executed), so the caller can
/// abort losslessly. Owners that do not already hold the cascade
/// receive a `restore` of a snapshot fetched once from the first
/// trusted holder that answers; the snapshot carries the full ingest
/// state, so this is a handoff (watermark preserved), not a re-`open`.
///
/// `distrusted` names a rejoined backend whose resident copies may be
/// stale (its snapshot-dir replay can predate writes it missed while
/// down): it is never used as a snapshot source, and when it is an
/// owner-and-holder its copy is checksum-verified against the trusted
/// bytes (the map is the rejoiner's scraped `checksums` output) and
/// re-pushed on mismatch.
///
/// Trims — holders that remain members of `next` but are no longer
/// owners — are planned only when every restore landed, so a partially
/// migrated cascade keeps all of its old copies. A departing node is
/// never trimmed; it is leaving the topology anyway.
fn migrate_one(
    id: &str,
    holder_backends: &[Arc<Backend>],
    next: &Topology,
    data_replicas: usize,
    distrusted: Option<(&str, &BTreeMap<String, String>)>,
    plan: &mut MigratePlan,
) {
    let next_labels = next.membership.active_labels();
    let holder_addrs: Vec<&str> = holder_backends.iter().map(|b| b.addr.as_str()).collect();
    let owner_addrs: Vec<&str> = next
        .ring
        .route_n(id, data_replicas)
        .into_iter()
        .map(|i| next_labels[i].as_str())
        .collect();
    let sources: Vec<&Arc<Backend>> = holder_backends
        .iter()
        .filter(|b| distrusted.is_none_or(|(label, _)| b.addr != label))
        .collect();
    let mut needed: Vec<&Arc<Backend>> = owner_addrs
        .iter()
        .filter(|addr| !holder_addrs.contains(addr))
        .filter_map(|addr| next.backends.iter().find(|b| b.addr == **addr))
        .collect();
    // A distrusted owner-and-holder is verified below, once reference
    // bytes are in hand — but only if a trusted copy exists to verify
    // against.
    let verify = distrusted.filter(|(label, _)| {
        owner_addrs.contains(label) && holder_addrs.contains(label) && !sources.is_empty()
    });
    if needed.is_empty() && verify.is_none() {
        plan_trims(id, &holder_addrs, &owner_addrs, &next_labels, next, plan);
        return;
    }
    // Fetch the snapshot once from the first trusted holder that
    // answers (any holder when no trusted source exists — a rejoiner's
    // copy beats no copy); every trusted copy is bit-identical.
    let fetch_from: Vec<&Arc<Backend>> = if sources.is_empty() {
        holder_backends.iter().collect()
    } else {
        sources
    };
    let Some(snapshot_hex) = fetch_from.iter().find_map(|b| fetch_snapshot_hex(b, id)) else {
        plan.report.failed += (needed.len() + usize::from(verify.is_some())) as u64;
        // Old copies are this cascade's only complete placement now;
        // they must all survive, owners or not: no trims.
        return;
    };
    if let Some((label, sums)) = verify {
        if sums.get(id) != snapshot_hash(&snapshot_hex).as_ref() {
            if let Some(backend) = next.backends.iter().find(|b| b.addr == label) {
                needed.push(backend);
            }
        }
    }
    let restore_line = Request::Restore {
        snapshot: snapshot_hex,
    }
    .to_json()
    .to_string();
    let mut cascade_failed = false;
    for target in needed {
        if restore_landed(target, &restore_line, id) {
            plan.report.migrated += 1;
            plan.landed.push((Arc::clone(target), id.to_owned()));
        } else {
            plan.report.failed += 1;
            cascade_failed = true;
        }
    }
    if !cascade_failed {
        plan_trims(id, &holder_addrs, &owner_addrs, &next_labels, next, plan);
    }
}

/// Queues post-commit evictions for `id`: holders that remain members
/// under `next` but no longer own it. Only called for cascades whose
/// owner set is fully in place, so a trim can never strand a cascade.
fn plan_trims(
    id: &str,
    holder_addrs: &[&str],
    owner_addrs: &[&str],
    next_labels: &[String],
    next: &Topology,
    plan: &mut MigratePlan,
) {
    for &holder in holder_addrs {
        if next_labels.iter().any(|l| l == holder) && !owner_addrs.contains(&holder) {
            if let Some(backend) = next.backends.iter().find(|b| b.addr == holder) {
                plan.trims.push((Arc::clone(backend), id.to_owned()));
            }
        }
    }
}

/// The full migrate phase of a synchronous (`remove`) rebalance:
/// inventory the old backends, then [`migrate_one`] every cascade
/// toward its owners under `next`, trusting every resident copy.
fn migrate_cascades(
    old_backends: &[Arc<Backend>],
    next: &Topology,
    data_replicas: usize,
) -> MigratePlan {
    let holders = inventory(old_backends);
    let mut plan = MigratePlan::new();
    for (id, holder_backends) in &holders {
        migrate_one(id, holder_backends, next, data_replicas, None, &mut plan);
    }
    plan
}

/// Commit-time anti-entropy over an incremental rebalance's landed
/// restores. Between chunks the topology lock was released and writes
/// kept routing to the old owners, so a copy migrated in an early chunk
/// may be stale. Called under the commit write-lock hold (no write is
/// in flight, so the sources' checksums are final): compares every
/// landed `(target, cascade)` pair against a source holder — one
/// `checksums` round trip per distinct node, regardless of cascade
/// count — and re-pushes the snapshot where they differ. Returns the
/// number of copies refreshed, or `Err` with the number of failures
/// (unreachable node, vanished source copy, failed re-push), in which
/// case the caller aborts the transition.
fn refresh_landed(
    plan: &MigratePlan,
    holders: &BTreeMap<String, Vec<Arc<Backend>>>,
) -> std::result::Result<u64, u64> {
    if plan.landed.is_empty() {
        return Ok(0);
    }
    fn scraped<'a>(
        sums: &'a mut BTreeMap<String, Option<BTreeMap<String, String>>>,
        backend: &Arc<Backend>,
    ) -> &'a Option<BTreeMap<String, String>> {
        if !sums.contains_key(&backend.addr) {
            sums.insert(backend.addr.clone(), backend_checksums(backend));
        }
        &sums[&backend.addr]
    }
    let mut sums: BTreeMap<String, Option<BTreeMap<String, String>>> = BTreeMap::new();
    let mut failures = 0u64;
    let mut refreshed = 0u64;
    for (target, id) in &plan.landed {
        let Some(source) = holders
            .get(id)
            .and_then(|hs| hs.iter().find(|h| h.addr != target.addr))
        else {
            // No independent source holder: the landed copy is the only
            // lineage this cascade has; nothing to compare against.
            continue;
        };
        let source_sum = scraped(&mut sums, source)
            .as_ref()
            .map(|m| m.get(id.as_str()).cloned());
        let target_sum = scraped(&mut sums, target)
            .as_ref()
            .map(|m| m.get(id.as_str()).cloned());
        match (source_sum, target_sum) {
            // A node whose `checksums` scrape failed, or a source whose
            // copy vanished mid-transition, is a failure: the copy
            // cannot be proven fresh.
            (None, _) | (_, None) | (Some(None), _) => failures += 1,
            (Some(Some(s)), Some(t)) if t.as_ref() == Some(&s) => {}
            (Some(Some(_)), Some(_)) => {
                // The source moved on since this chunk: re-push.
                let ok = fetch_snapshot_hex(source, id)
                    .map(|hex| Request::Restore { snapshot: hex }.to_json().to_string())
                    .is_some_and(|line| restore_landed(target, &line, id));
                if ok {
                    refreshed += 1;
                } else {
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        Err(failures)
    } else {
        Ok(refreshed)
    }
}

/// Fetches one cascade's hex-armored snapshot from `backend`, or
/// `None` when the backend is unreachable or rejects.
fn fetch_snapshot_hex(backend: &Arc<Backend>, id: &str) -> Option<String> {
    let line = Request::Snapshot {
        cascade: id.to_owned(),
    }
    .to_json()
    .to_string();
    let raw = backend.round_trip(&line, true).ok()?;
    let parsed = Json::parse(&raw).ok()?;
    if parsed.get("ok") != Some(&Json::Bool(true)) {
        return None;
    }
    parsed
        .get("snapshot")
        .and_then(Json::as_str)
        .map(str::to_owned)
}

/// One `checksums` round trip: `backend`'s resident cascades and their
/// snapshot hashes (16-digit hex strings), or `None` when the backend
/// is unreachable or answers something that is not a checksum listing.
fn backend_checksums(backend: &Arc<Backend>) -> Option<BTreeMap<String, String>> {
    let raw = backend
        .round_trip(&Request::Checksums.to_json().to_string(), true)
        .ok()?;
    let parsed = Json::parse(&raw).ok()?;
    if parsed.get("ok") != Some(&Json::Bool(true)) {
        return None;
    }
    let mut map = BTreeMap::new();
    for entry in parsed.get("checksums")?.as_array()? {
        let pair = entry.as_array().filter(|p| p.len() == 2)?;
        match (pair[0].as_str(), pair[1].as_str()) {
            (Some(id), Some(sum)) => {
                map.insert(id.to_owned(), sum.to_owned());
            }
            _ => return None,
        }
    }
    Some(map)
}

/// The checksum a backend's `checksums` verb would report for
/// hex-armored snapshot bytes: `hash64` over the decoded encoding,
/// rendered as the same 16-digit hex string.
fn snapshot_hash(snapshot_hex: &str) -> Option<String> {
    let bytes = hex::decode(snapshot_hex).ok()?;
    Some(format!("{:016x}", hash64(&bytes)))
}

/// The uniform admin success response. `drain` reports the transition
/// wall time as `handoff_ms` (its historical name); `rejoin` reports
/// the same measurement as `rejoin_ms` plus the `repaired` copy count.
fn admin_response(
    verb: &str,
    label: &str,
    ring_version: u64,
    backends: Vec<String>,
    report: &HandoffReport,
    start: Instant,
) -> Routed {
    let mut fields = vec![
        ("ok".to_owned(), Json::Bool(true)),
        ("verb".to_owned(), Json::str(verb)),
        ("backend".to_owned(), Json::str(label)),
        ("ring_version".to_owned(), Json::num(ring_version as f64)),
        (
            "backends".to_owned(),
            Json::Arr(backends.into_iter().map(Json::Str).collect()),
        ),
        ("migrated".to_owned(), Json::num(report.migrated as f64)),
        ("evicted".to_owned(), Json::num(report.evicted as f64)),
        ("failed".to_owned(), Json::num(report.failed as f64)),
    ];
    match verb {
        "drain" => fields.push((
            "handoff_ms".to_owned(),
            Json::num(start.elapsed().as_secs_f64() * 1e3),
        )),
        "rejoin" => {
            fields.push(("repaired".to_owned(), Json::num(report.migrated as f64)));
            fields.push((
                "rejoin_ms".to_owned(),
                Json::num(start.elapsed().as_secs_f64() * 1e3),
            ));
        }
        _ => {}
    }
    Routed::Synthesized(Json::Obj(fields))
}

/// Sends one `restore` to `target`, returning whether it landed. An
/// `already open` rejection means a copy is already resident — e.g.
/// left behind by an aborted transition whose rollback could not reach
/// this node: the stale copy is evicted and the restore retried once,
/// so the target ends up holding the snapshot's bytes, not the stale
/// ones.
fn restore_landed(target: &Arc<Backend>, restore_line: &str, id: &str) -> bool {
    match try_restore(target, restore_line) {
        RestoreOutcome::Landed => true,
        RestoreOutcome::AlreadyOpen => {
            target.round_trip(&evict_line(id), false).is_ok()
                && matches!(try_restore(target, restore_line), RestoreOutcome::Landed)
        }
        RestoreOutcome::Failed => false,
    }
}

enum RestoreOutcome {
    Landed,
    AlreadyOpen,
    Failed,
}

fn try_restore(target: &Arc<Backend>, restore_line: &str) -> RestoreOutcome {
    let Ok(raw) = target.round_trip(restore_line, false) else {
        return RestoreOutcome::Failed;
    };
    let Ok(parsed) = Json::parse(&raw) else {
        return RestoreOutcome::Failed;
    };
    if parsed.get("ok") == Some(&Json::Bool(true)) {
        return RestoreOutcome::Landed;
    }
    if parsed
        .get("error")
        .and_then(Json::as_str)
        .is_some_and(|e| e.contains("already open"))
    {
        return RestoreOutcome::AlreadyOpen;
    }
    RestoreOutcome::Failed
}

fn evict_line(id: &str) -> String {
    Request::Evict {
        cascade: id.to_owned(),
    }
    .to_json()
    .to_string()
}

/// Routes a pure read (`forecast`, `snapshot`): owners are tried in
/// ring order and the first `{"ok":true,...}` response is relayed
/// verbatim. Both transport failures *and* application-level
/// rejections fall through to the next owner — a replica that missed a
/// write (or was never re-replicated after a `remove`) answers
/// `unknown cascade` even though a surviving owner holds the cascade.
/// Only when every owner rejects is the first rejection relayed, so an
/// error a direct server would produce still reaches the client
/// byte-identical.
fn route_read(owners: &[Arc<Backend>], line: &str) -> Routed {
    let mut rejected: Option<String> = None;
    let mut first_error: Option<String> = None;
    for backend in owners {
        match backend.round_trip(line, true) {
            Ok(response) => {
                if response_is_ok(&response) {
                    return Routed::Relayed(response);
                }
                backend.metrics.failovers.inc();
                if rejected.is_none() {
                    rejected = Some(response);
                }
            }
            Err(reason) => {
                backend.metrics.failovers.inc();
                if first_error.is_none() {
                    first_error = Some(reason);
                }
            }
        }
    }
    match rejected {
        Some(response) => Routed::Relayed(response),
        None => unavailable_response(&owners[0].addr, first_error),
    }
}

/// What [`route_write`] produced: the response to relay, the first
/// owner that applied the write (the anti-entropy reference), and the
/// owners the write missed (the repair candidates).
struct WriteOutcome {
    routed: Routed,
    applied: Option<Arc<Backend>>,
    missed: Vec<Arc<Backend>>,
}

/// Routes a state-changing verb (`open`, `ingest`) to ALL owners —
/// that is what keeps the replicas identical — relaying the first
/// owner's response (the primary's, unless the primary is down). A
/// write that lands on some owners but not all is surfaced, not
/// silently reported as a clean success: the relayed response gains
/// `"degraded":true` plus the missed addresses. The caller runs the
/// anti-entropy comparison over `missed` so the divergence is healed
/// rather than left until the missed node is `remove`d.
fn route_write(owners: &[Arc<Backend>], line: &str) -> WriteOutcome {
    let mut relayed: Option<String> = None;
    let mut applied: Option<Arc<Backend>> = None;
    let mut missed: Vec<Arc<Backend>> = Vec::new();
    let mut first_error: Option<String> = None;
    for backend in owners {
        match backend.round_trip(line, false) {
            Ok(response) => {
                if relayed.is_none() {
                    relayed = Some(response);
                    applied = Some(Arc::clone(backend));
                }
            }
            Err(reason) => {
                backend.metrics.degraded_writes.inc();
                missed.push(Arc::clone(backend));
                if first_error.is_none() {
                    first_error = Some(reason);
                }
            }
        }
    }
    let routed = match relayed {
        Some(response) if missed.is_empty() => Routed::Relayed(response),
        Some(response) => match Json::parse(&response) {
            Ok(Json::Obj(mut fields)) => {
                fields.push(("degraded".to_owned(), Json::Bool(true)));
                fields.push((
                    "missed_backends".to_owned(),
                    Json::Arr(missed.iter().map(|b| Json::str(b.addr.clone())).collect()),
                ));
                if let Some(reason) = first_error {
                    fields.push(("missed_error".to_owned(), Json::str(reason)));
                }
                Routed::Synthesized(Json::Obj(fields))
            }
            // A non-object response line has nowhere to carry the
            // degradation marker; relay it untouched.
            _ => Routed::Relayed(response),
        },
        None => unavailable_response(&owners[0].addr, first_error),
    };
    WriteOutcome {
        routed,
        applied,
        missed,
    }
}

/// Whether a backend response line is a success. Every server success
/// line serializes `"ok":true` first, so the prefix check keeps the
/// read-failover path from re-parsing large forecast bodies; the full
/// parse covers any other field order.
fn response_is_ok(response: &str) -> bool {
    response.starts_with(r#"{"ok":true"#)
        || Json::parse(response)
            .ok()
            .is_some_and(|r| r.get("ok") == Some(&Json::Bool(true)))
}

/// The router-originated failure line for a request no owner could
/// serve, naming the primary shard.
fn unavailable_response(primary: &str, reason: Option<String>) -> Routed {
    let reason = reason.unwrap_or_else(|| "no owners".into());
    Routed::Synthesized(Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(false)),
        (
            "error".to_owned(),
            Json::str(format!("backend `{primary}` unavailable: {reason}")),
        ),
        ("backend".to_owned(), Json::str(primary.to_owned())),
    ]))
}

impl LineService for RouterState {
    fn handle_line(&self, line: &str) -> String {
        RouterState::handle_line(self, line)
    }

    fn metrics_registry(&self) -> Option<&Registry> {
        Some(&self.metrics)
    }
}

/// What routing one line produced: a backend's bytes relayed verbatim,
/// or a response the router synthesized itself (stats aggregate, admin
/// responses, routing errors).
enum Routed {
    Relayed(String),
    Synthesized(Json),
}

/// Scalar counters summed across backends in the `stats` aggregate.
#[derive(Default)]
struct Sums {
    cache_len: u64,
    cache_capacity: u64,
    cascades: u64,
    cascade_evictions: u64,
    cascade_expirations: u64,
    requests: u64,
    refit_jobs: u64,
    hours_closed: u64,
}

impl Sums {
    fn absorb(&mut self, stats: &Json) {
        self.cache_len += nested_u64(stats, "cache", "len");
        self.cache_capacity += nested_u64(stats, "cache", "capacity");
        self.cascades += top_u64(stats, "cascades");
        self.cascade_evictions += top_u64(stats, "cascade_evictions");
        self.cascade_expirations += top_u64(stats, "cascade_expirations");
        self.requests += top_u64(stats, "requests");
        self.refit_jobs += top_u64(stats, "refit_jobs");
        self.hours_closed += top_u64(stats, "hours_closed");
    }
}

fn top_u64(stats: &Json, key: &str) -> u64 {
    stats.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn nested_u64(stats: &Json, outer: &str, key: &str) -> u64 {
    stats
        .get(outer)
        .and_then(|o| o.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}
