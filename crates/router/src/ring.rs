//! A hand-rolled consistent-hash ring with virtual nodes.
//!
//! Cascades are the sharding unit — the paper's model predicts each
//! cascade independently, so any cascade can live on any backend, and
//! all the router has to guarantee is that *every request for the same
//! cascade id lands on the same backend*. A consistent-hash ring gives
//! that with two extra properties a plain `hash % n` would not:
//!
//! * **placement is deterministic from configuration alone** — backends
//!   are hashed by their configured label (address), not their list
//!   position, so reordering the `--backend` flags does not reshuffle
//!   the keyspace;
//! * **topology changes move little** — removing a backend only remaps
//!   the keys that lived on it; keys on surviving backends stay put
//!   (`ring_removal_only_remaps_lost_keys` below proves it).
//!
//! Each backend contributes `replicas` *virtual nodes*: points on the
//! ring at `hash(label, replica)`. More virtual nodes smooth the load
//! split at the cost of a larger (binary-searched, read-only) table;
//! [`HashRing::DEFAULT_REPLICAS`] is plenty for single-digit backend
//! counts.
//!
//! Hashing is FNV-1a over the key bytes finished with a SplitMix64
//! avalanche — no external crates, stable across platforms and
//! processes (`DefaultHasher` guarantees neither), which is what makes
//! routing reproducible from a config file.

use dlm_serve::{Result, ServeError};

/// 64-bit FNV-1a over `bytes`, avalanched through the SplitMix64
/// finalizer so near-identical labels (`"c1"`, `"c2"`, ...) still
/// scatter across the whole ring.
#[must_use]
pub fn hash64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // SplitMix64 finalizer, shared with the multi-start seed grid.
    dlm_numerics::mix::splitmix64_mix(h)
}

/// A consistent-hash ring mapping string keys to backend indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, backend index)`, sorted by position. Position
    /// ties (astronomically unlikely with 64-bit hashes) are broken by
    /// backend index, keeping construction order-independent.
    points: Vec<(u64, usize)>,
    backends: usize,
    replicas: usize,
}

impl HashRing {
    /// Virtual nodes per backend when the caller has no opinion.
    pub const DEFAULT_REPLICAS: usize = 64;

    /// Builds a ring over `labels` (one per backend, typically the
    /// backend address) with `replicas` virtual nodes each.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidParameter`] for an empty backend list,
    /// duplicate labels (two backends hashing to identical point sets
    /// would shadow each other), or zero replicas.
    pub fn new(labels: &[String], replicas: usize) -> Result<Self> {
        if labels.is_empty() {
            return Err(ServeError::InvalidParameter {
                name: "backends",
                reason: "need at least one backend".into(),
            });
        }
        if replicas == 0 {
            return Err(ServeError::InvalidParameter {
                name: "replicas",
                reason: "must be positive".into(),
            });
        }
        for (i, label) in labels.iter().enumerate() {
            if labels[..i].contains(label) {
                return Err(ServeError::InvalidParameter {
                    name: "backends",
                    reason: format!("duplicate backend `{label}`"),
                });
            }
        }
        let mut points = Vec::with_capacity(labels.len() * replicas);
        for (index, label) in labels.iter().enumerate() {
            for replica in 0..replicas {
                // `label \0 replica` — the NUL keeps `("ab", 1)` and
                // `("a", "b1"-ish)` byte strings distinct.
                let mut key = Vec::with_capacity(label.len() + 9);
                key.extend_from_slice(label.as_bytes());
                key.push(0);
                key.extend_from_slice(&(replica as u64).to_le_bytes());
                points.push((hash64(&key), index));
            }
        }
        points.sort_unstable();
        Ok(Self {
            points,
            backends: labels.len(),
            replicas,
        })
    }

    /// Number of backends on the ring.
    #[must_use]
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// Virtual nodes per backend.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The backend index owning `key`: the first virtual node at or
    /// clockwise after `hash64(key)`, wrapping at the top of the ring.
    #[must_use]
    pub fn route(&self, key: &str) -> usize {
        let h = hash64(key.as_bytes());
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, index) = self.points[at % self.points.len()];
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7878")).collect()
    }

    #[test]
    fn rejects_degenerate_configurations() {
        assert!(HashRing::new(&[], 64).is_err());
        assert!(HashRing::new(&labels(2), 0).is_err());
        let mut dup = labels(2);
        dup.push(dup[0].clone());
        assert!(HashRing::new(&dup, 64).is_err());
    }

    #[test]
    fn routing_is_deterministic_and_label_driven() {
        let ring = HashRing::new(&labels(4), 64).unwrap();
        let again = HashRing::new(&labels(4), 64).unwrap();
        for i in 0..1000 {
            let key = format!("cascade-{i}");
            assert_eq!(ring.route(&key), again.route(&key));
        }
        // Reordering the backend list permutes indices but not the
        // owning *label*.
        let mut reversed = labels(4);
        reversed.reverse();
        let flipped = HashRing::new(&reversed, 64).unwrap();
        for i in 0..1000 {
            let key = format!("cascade-{i}");
            assert_eq!(
                labels(4)[ring.route(&key)],
                reversed[flipped.route(&key)],
                "key `{key}` moved because the config was reordered"
            );
        }
    }

    #[test]
    fn load_splits_roughly_evenly() {
        let ring = HashRing::new(&labels(4), HashRing::DEFAULT_REPLICAS).unwrap();
        let mut counts = [0usize; 4];
        let keys = 8000;
        for i in 0..keys {
            counts[ring.route(&format!("cascade-{i}"))] += 1;
        }
        let ideal = keys / 4;
        for (backend, &count) in counts.iter().enumerate() {
            assert!(
                count > ideal / 2 && count < ideal * 2,
                "backend {backend} owns {count} of {keys} keys: {counts:?}"
            );
        }
    }

    #[test]
    fn ring_removal_only_remaps_lost_keys() {
        let full = labels(4);
        let ring = HashRing::new(&full, 64).unwrap();
        let survivors: Vec<String> = full[..3].to_vec();
        let shrunk = HashRing::new(&survivors, 64).unwrap();
        let mut remapped = 0usize;
        let keys = 4000;
        for i in 0..keys {
            let key = format!("cascade-{i}");
            let before = ring.route(&key);
            let after = shrunk.route(&key);
            if before < 3 {
                assert_eq!(
                    full[before], survivors[after],
                    "key `{key}` moved off a surviving backend"
                );
            } else {
                remapped += 1;
            }
        }
        // The removed backend owned roughly a quarter of the keyspace.
        assert!(
            remapped > keys / 8 && remapped < keys / 2,
            "remapped {remapped} of {keys}"
        );
    }

    #[test]
    fn single_backend_owns_everything() {
        let ring = HashRing::new(&labels(1), 8).unwrap();
        for i in 0..100 {
            assert_eq!(ring.route(&format!("c{i}")), 0);
        }
    }
}
