//! The consistent-hash ring, re-exported from [`dlm_cluster::ring`].
//!
//! The ring started life in this crate; the elastic-cluster subsystem
//! moved it into `dlm-cluster` so the membership state machine, the
//! snapshot handoff engine, and the router all share one placement
//! function. This module keeps the original `dlm_router::ring` paths
//! (and the `dlm_router::HashRing` re-export) working — the ring's
//! behaviour, hash function, and documentation live in
//! [`dlm_cluster::ring`] now.
//!
//! Cascades are the sharding unit — the paper's model predicts each
//! cascade independently, so any cascade can live on any backend, and
//! all the router has to guarantee is that *every request for the same
//! cascade id lands on the same set of owners*. [`HashRing::route_n`]
//! extends single-owner routing to N-way replicated placement:
//! deterministic from labels alone, so failover needs no coordination.

pub use dlm_cluster::ring::{hash64, remap_fraction, HashRing};
