//! End-to-end contract of the routing tier, over real sockets:
//!
//! * **byte-identity** — every `open`/`ingest`/`forecast` response a
//!   client receives through `dlm-router` (two backend processes'
//!   worth of `ServerState`s) is byte-identical to the response the
//!   same request sequence gets from one direct `dlm-serve` server,
//!   for the full 8-model default lineup and for both distance
//!   metrics;
//! * **stats aggregation** — the router's scatter-gather `stats`
//!   aggregate equals the field-wise sum of the per-backend stats it
//!   embeds in the same response;
//! * **failure isolation** — killing one backend surfaces a
//!   per-backend error for cascades on its shard while every other
//!   shard keeps serving identical bytes.

use dlm_core::evaluate::Parallelism;
use dlm_data::simulate::simulate_story;
use dlm_data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use dlm_router::{HashRing, RouterConfig, RouterState};
use dlm_serve::server::{DlmServer, ServeConfig, ServerState};
use dlm_serve::{Json, LineClient};
use std::sync::Arc;

const MAX_HOPS: u32 = 4;
const HORIZON: u32 = 5;
const OBSERVE_THROUGH: u32 = 2;

/// World + story fixture shared by the smaller scenarios: (world,
/// submit_time, initiator, votes JSON, close_at).
fn fixture() -> (SyntheticWorld, u64, usize, String, u64) {
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.1)).unwrap();
    let story = simulate_story(
        &world,
        &StoryPreset::s1(),
        SimulationConfig {
            hours: HORIZON + 2,
            substeps: 2,
            seed: 13,
        },
    )
    .unwrap();
    let submit = story.submit_time();
    let initiator = story.initiator();
    let votes: Vec<String> = story
        .votes()
        .iter()
        .map(|v| format!("[{},{}]", v.timestamp, v.voter))
        .collect();
    let close_at = submit + u64::from(HORIZON) * 3600;
    (world, submit, initiator, votes.join(","), close_at)
}

fn backend_state(world: &SyntheticWorld) -> ServerState {
    ServerState::with_world(
        ServeConfig {
            parallelism: Parallelism::Fixed(2),
            ..ServeConfig::default()
        },
        world.clone(),
    )
    .expect("server state")
}

fn u(value: &Json, key: &str) -> u64 {
    value
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing counter `{key}` in {value}"))
}

#[test]
fn routed_cluster_matches_single_server_and_degrades_per_shard() {
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.1)).unwrap();
    let story = simulate_story(
        &world,
        &StoryPreset::s1(),
        SimulationConfig {
            hours: HORIZON + 2,
            substeps: 2,
            seed: 13,
        },
    )
    .unwrap();
    let submit = story.submit_time();
    let initiator = story.initiator();
    let votes_json: Vec<String> = story
        .votes()
        .iter()
        .map(|v| format!("[{},{}]", v.timestamp, v.voter))
        .collect();
    let votes = votes_json.join(",");
    let close_at = submit + u64::from(HORIZON) * 3600;

    // Two backend shards, one direct twin, one router in front.
    let mut b0 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let b1 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let direct = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let addrs = vec![b0.local_addr().to_string(), b1.local_addr().to_string()];
    let router = Arc::new(
        RouterState::new(RouterConfig {
            parallelism: Parallelism::Fixed(2),
            ..RouterConfig::new(addrs.clone())
        })
        .unwrap(),
    );
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router)).unwrap();

    // Pick cascade ids deterministically so each shard owns three.
    let mut ids: Vec<String> = Vec::new();
    let mut per_shard = [0usize; 2];
    for i in 0..64 {
        let id = format!("c{i}");
        let shard = router.shard_of(&id);
        if per_shard[shard] < 3 {
            per_shard[shard] += 1;
            ids.push(id);
        }
        if ids.len() == 6 {
            break;
        }
    }
    assert_eq!(per_shard, [3, 3], "both shards must own cascades");

    let mut routed = LineClient::connect(front.local_addr()).unwrap();
    let mut single = LineClient::connect(direct.local_addr()).unwrap();
    let gate_hours: Vec<String> = (OBSERVE_THROUGH + 1..=HORIZON)
        .map(|h| h.to_string())
        .collect();
    let gate_hours = gate_hours.join(",");

    // The same request stream through the router and through one direct
    // server must produce byte-identical response lines — the hop metric
    // with the full 8-model lineup, plus one interest-metric cascade.
    let mut forecast_lines = Vec::new();
    for id in &ids {
        let mut requests = vec![
            format!(
                r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
            ),
            format!(r#"{{"type":"ingest","cascade":"{id}","votes":[{votes}],"now":{close_at}}}"#),
            format!(
                r#"{{"type":"forecast","cascade":"{id}","hours":[{gate_hours}],"through":{OBSERVE_THROUGH}}}"#
            ),
        ];
        if id == &ids[0] {
            let interest_id = format!("{id}-interest");
            requests.push(format!(
                r#"{{"type":"open","cascade":"{interest_id}","initiator":{initiator},"metric":"interest","groups":5,"strategy":"width","horizon":{HORIZON},"submit_time":{submit}}}"#
            ));
            requests.push(format!(
                r#"{{"type":"ingest","cascade":"{interest_id}","votes":[{votes}],"now":{close_at}}}"#
            ));
            requests.push(format!(
                r#"{{"type":"forecast","cascade":"{interest_id}","hours":[{gate_hours}],"through":{OBSERVE_THROUGH}}}"#
            ));
        }
        for line in &requests {
            let via_router = routed.send_raw(line).unwrap();
            let via_single = single.send_raw(line).unwrap();
            assert_eq!(
                via_router, via_single,
                "routed and direct bytes diverge for `{line}`"
            );
            if line.contains(r#""type":"forecast""#) {
                let parsed = Json::parse(&via_router).unwrap();
                assert_eq!(
                    parsed.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "{via_router}"
                );
                assert_eq!(
                    parsed
                        .get("models")
                        .and_then(Json::as_array)
                        .map(<[_]>::len),
                    Some(8),
                    "full lineup must be served: {via_router}"
                );
                forecast_lines.push((line.clone(), via_router));
            }
        }
    }

    // Scatter-gather stats: the aggregate must equal the field-wise sum
    // of the per-backend stats embedded in the same response.
    let stats = Json::parse(&routed.send_raw(r#"{"type":"stats"}"#).unwrap()).unwrap();
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(stats.get("degraded").and_then(Json::as_bool), Some(false));
    let aggregate = stats.get("aggregate").expect("aggregate");
    let backends = stats.get("backends").and_then(Json::as_array).unwrap();
    assert_eq!(backends.len(), 2);
    let shard_stats: Vec<&Json> = backends
        .iter()
        .map(|b| {
            assert_eq!(b.get("ok").and_then(Json::as_bool), Some(true), "{b}");
            b.get("stats").expect("embedded shard stats")
        })
        .collect();
    for key in [
        "cascades",
        "cascade_evictions",
        "cascade_expirations",
        "requests",
        "refit_jobs",
        "hours_closed",
    ] {
        let sum: u64 = shard_stats.iter().map(|s| u(s, key)).sum();
        assert_eq!(u(aggregate, key), sum, "aggregate `{key}` is not the sum");
    }
    let agg_cache = aggregate.get("cache").expect("aggregate cache");
    for key in ["hits", "misses", "evictions", "len", "capacity"] {
        let sum: u64 = shard_stats
            .iter()
            .map(|s| u(s.get("cache").expect("shard cache"), key))
            .sum();
        assert_eq!(u(agg_cache, key), sum, "cache `{key}` is not the sum");
    }
    // Both hop shards closed every hour once per owned cascade; the
    // interest cascade adds one more close cycle on its shard.
    assert_eq!(u(aggregate, "hours_closed"), u64::from(HORIZON) * 7);
    let routed_counts = stats
        .get("router")
        .and_then(|r| r.get("routed"))
        .and_then(Json::as_array)
        .unwrap();
    assert!(
        routed_counts
            .iter()
            .all(|c| c.as_u64().is_some_and(|n| n > 0)),
        "every shard should have received traffic: {routed_counts:?}"
    );

    // Kill shard 0. Its cascades surface a per-backend error; shard 1
    // keeps serving byte-identical forecasts, and stats degrade instead
    // of failing.
    b0.shutdown();
    drop(b0);
    let shard_of = |id: &str| router.shard_of(id);
    let (dead_line, _) = forecast_lines
        .iter()
        .find(|(line, _)| {
            let id = Json::parse(line.as_str())
                .unwrap()
                .get("cascade")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned();
            shard_of(&id) == 0
        })
        .expect("some forecast lives on shard 0");
    let response = Json::parse(&routed.send_raw(dead_line).unwrap()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("backend").and_then(Json::as_str),
        Some(addrs[0].as_str()),
        "the failing shard must be named: {response}"
    );
    assert!(
        response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unavailable"),
        "{response}"
    );
    for (line, before) in forecast_lines
        .iter()
        .filter(|(line, _)| {
            let parsed = Json::parse(line.as_str()).unwrap();
            shard_of(parsed.get("cascade").and_then(Json::as_str).unwrap()) == 1
        })
        .take(2)
    {
        let after = routed.send_raw(line).unwrap();
        assert_eq!(&after, before, "surviving shard diverged after the kill");
    }
    let degraded = Json::parse(&routed.send_raw(r#"{"type":"stats"}"#).unwrap()).unwrap();
    assert_eq!(degraded.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(degraded.get("degraded").and_then(Json::as_bool), Some(true));
    let entries = degraded.get("backends").and_then(Json::as_array).unwrap();
    assert_eq!(entries[0].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(entries[1].get("ok").and_then(Json::as_bool), Some(true));

    drop(front);
}

#[test]
fn kill_and_rebalance_loses_nothing_with_replication() {
    // Three backends, every cascade written to two of them
    // (`data_replicas: 2`). Killing one backend mid-run must lose
    // nothing: every forecast keeps serving, byte-identical to the
    // direct mirror, and the `remove` admin verb re-replicates the
    // survivors' copies under a bumped ring version.
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.1)).unwrap();
    let story = simulate_story(
        &world,
        &StoryPreset::s1(),
        SimulationConfig {
            hours: HORIZON + 2,
            substeps: 2,
            seed: 13,
        },
    )
    .unwrap();
    let submit = story.submit_time();
    let initiator = story.initiator();
    let votes: Vec<String> = story
        .votes()
        .iter()
        .map(|v| format!("[{},{}]", v.timestamp, v.voter))
        .collect();
    let votes = votes.join(",");
    let close_at = submit + u64::from(HORIZON) * 3600;

    let b0 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let mut b1 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let b2 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let direct = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let addrs = vec![
        b0.local_addr().to_string(),
        b1.local_addr().to_string(),
        b2.local_addr().to_string(),
    ];
    let router = Arc::new(
        RouterState::new(RouterConfig {
            parallelism: Parallelism::Fixed(2),
            data_replicas: 2,
            ..RouterConfig::new(addrs.clone())
        })
        .unwrap(),
    );
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router)).unwrap();
    assert_eq!(router.ring_version(), 1);

    let mut routed = LineClient::connect(front.local_addr()).unwrap();
    let mut single = LineClient::connect(direct.local_addr()).unwrap();
    let ids: Vec<String> = (0..4).map(|i| format!("repl-{i}")).collect();
    let mut forecast_lines = Vec::new();
    for id in &ids {
        for line in [
            format!(
                r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
            ),
            format!(r#"{{"type":"ingest","cascade":"{id}","votes":[{votes}],"now":{close_at}}}"#),
            format!(
                r#"{{"type":"forecast","cascade":"{id}","hours":[{HORIZON}],"through":{OBSERVE_THROUGH}}}"#
            ),
        ] {
            let via_router = routed.send_raw(&line).unwrap();
            let via_single = single.send_raw(&line).unwrap();
            assert_eq!(via_router, via_single, "diverged on `{line}`");
            if line.contains(r#""type":"forecast""#) {
                forecast_lines.push((line, via_router));
            }
        }
    }

    // Kill one backend. Every forecast must still come back — the
    // surviving replica answers for cascades the dead node owned — and
    // every byte must match the direct mirror. Zero lost responses.
    b1.shutdown();
    drop(b1);
    for (line, before) in &forecast_lines {
        let after = routed.send_raw(line).unwrap();
        assert_eq!(&after, before, "replicated forecast diverged after kill");
        let parsed = Json::parse(&after).unwrap();
        assert_eq!(
            parsed.get("ok").and_then(Json::as_bool),
            Some(true),
            "forecast lost after kill: {after}"
        );
    }

    // Fail-stop removal: survivors re-replicate what they hold, the
    // ring version bumps, and the dead node leaves the topology.
    let removal = Json::parse(
        &routed
            .send_raw(&format!(r#"{{"type":"remove","backend":"{}"}}"#, addrs[1]))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(
        removal.get("ok").and_then(Json::as_bool),
        Some(true),
        "{removal}"
    );
    assert_eq!(removal.get("ring_version").and_then(Json::as_u64), Some(2));
    assert_eq!(u(&removal, "failed"), 0, "re-replication failed: {removal}");
    assert_eq!(
        removal
            .get("backends")
            .and_then(Json::as_array)
            .map(<[_]>::len),
        Some(2),
        "{removal}"
    );
    assert_eq!(router.backend_addrs().len(), 2);

    // Post-removal, reads and writes keep matching the direct mirror —
    // including a brand-new cascade on the shrunken ring.
    for (line, before) in &forecast_lines {
        let after = routed.send_raw(line).unwrap();
        assert_eq!(&after, before, "forecast diverged after removal");
    }
    for line in [
        format!(
            r#"{{"type":"open","cascade":"post-remove","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
        ),
        format!(
            r#"{{"type":"ingest","cascade":"post-remove","votes":[{votes}],"now":{close_at}}}"#
        ),
        format!(
            r#"{{"type":"forecast","cascade":"post-remove","hours":[{HORIZON}],"through":{OBSERVE_THROUGH}}}"#
        ),
    ] {
        let via_router = routed.send_raw(&line).unwrap();
        let via_single = single.send_raw(&line).unwrap();
        assert_eq!(via_router, via_single, "post-removal diverged on `{line}`");
    }

    // The stats `router` object reports the new epoch and the ownership
    // split of the surviving ring.
    let stats = Json::parse(&routed.send_raw(r#"{"type":"stats"}"#).unwrap()).unwrap();
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    let router_obj = stats.get("router").expect("router stats");
    assert_eq!(u(router_obj, "ring_version"), 2);
    assert_eq!(u(router_obj, "data_replicas"), 2);
    let ownership = router_obj
        .get("ownership")
        .and_then(Json::as_array)
        .expect("ownership fractions");
    assert_eq!(ownership.len(), 2);
    let total: f64 = ownership.iter().filter_map(Json::as_f64).sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "fractions must sum to 1: {total}"
    );

    drop(front);
    drop(b0);
    drop(b2);
}

#[test]
fn drain_hands_off_cascades_without_reopening_them() {
    // `drain` must stream each owned cascade's snapshot to its new
    // owner before the node leaves: the new owner serves byte-identical
    // forecasts (gate D) and keeps the hour watermark — a late vote is
    // still rejected, which a naive re-`open` would silently accept.
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.1)).unwrap();
    let story = simulate_story(
        &world,
        &StoryPreset::s1(),
        SimulationConfig {
            hours: HORIZON + 2,
            substeps: 2,
            seed: 13,
        },
    )
    .unwrap();
    let submit = story.submit_time();
    let initiator = story.initiator();
    let votes: Vec<String> = story
        .votes()
        .iter()
        .map(|v| format!("[{},{}]", v.timestamp, v.voter))
        .collect();
    let votes = votes.join(",");
    let close_at = submit + u64::from(HORIZON) * 3600;

    let b0 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let b1 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let direct = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let addrs = vec![b0.local_addr().to_string(), b1.local_addr().to_string()];
    let router = Arc::new(
        RouterState::new(RouterConfig {
            parallelism: Parallelism::Fixed(2),
            ..RouterConfig::new(addrs.clone())
        })
        .unwrap(),
    );
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router)).unwrap();
    let mut routed = LineClient::connect(front.local_addr()).unwrap();
    let mut single = LineClient::connect(direct.local_addr()).unwrap();

    // Cascades on both shards, so the drain moves a real subset.
    let mut ids: Vec<String> = Vec::new();
    let mut per_shard = [0usize; 2];
    for i in 0..64 {
        let id = format!("drain-{i}");
        let shard = router.shard_of(&id);
        if per_shard[shard] < 2 {
            per_shard[shard] += 1;
            ids.push(id);
        }
        if ids.len() == 4 {
            break;
        }
    }
    assert_eq!(per_shard, [2, 2], "both shards must own cascades");
    let on_drained = per_shard[0] as u64;

    let mut forecast_lines = Vec::new();
    for id in &ids {
        for line in [
            format!(
                r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
            ),
            format!(r#"{{"type":"ingest","cascade":"{id}","votes":[{votes}],"now":{close_at}}}"#),
            format!(
                r#"{{"type":"forecast","cascade":"{id}","hours":[{HORIZON}],"through":{OBSERVE_THROUGH}}}"#
            ),
        ] {
            let via_router = routed.send_raw(&line).unwrap();
            let via_single = single.send_raw(&line).unwrap();
            assert_eq!(via_router, via_single, "diverged on `{line}`");
            if line.contains(r#""type":"forecast""#) {
                forecast_lines.push((line, via_router));
            }
        }
    }

    // Drain shard 0: its cascades hand off to shard 1 before it leaves.
    let drain = Json::parse(
        &routed
            .send_raw(&format!(r#"{{"type":"drain","backend":"{}"}}"#, addrs[0]))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(
        drain.get("ok").and_then(Json::as_bool),
        Some(true),
        "{drain}"
    );
    assert_eq!(drain.get("verb").and_then(Json::as_str), Some("drain"));
    assert_eq!(drain.get("ring_version").and_then(Json::as_u64), Some(2));
    assert_eq!(u(&drain, "migrated"), on_drained, "{drain}");
    assert_eq!(u(&drain, "failed"), 0, "{drain}");
    assert!(
        drain.get("handoff_ms").and_then(Json::as_f64).is_some(),
        "drain must report its pause: {drain}"
    );
    assert_eq!(router.backend_addrs(), vec![addrs[1].clone()]);

    // Every forecast — including the migrated cascades' — must be
    // byte-identical to its pre-drain answer and to the direct mirror.
    for (line, before) in &forecast_lines {
        let after = routed.send_raw(line).unwrap();
        assert_eq!(&after, before, "handoff changed forecast bytes");
    }

    // The watermark survived the handoff: a vote for hour 1 is still a
    // late vote on the new owner. A re-`open` would have accepted it.
    for id in &ids {
        let late = format!(
            r#"{{"type":"ingest","cascade":"{id}","votes":[[{},0]]}}"#,
            submit + 10
        );
        let response = Json::parse(&routed.send_raw(&late).unwrap()).unwrap();
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
        assert!(
            response
                .get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("late vote"),
            "watermark lost in handoff: {response}"
        );
    }

    drop(front);
    drop(b0);
    drop(b1);
}

#[test]
fn aborted_join_keeps_every_cascade_servable() {
    // Joining an unreachable node must abort the transition WITHOUT
    // touching cascade placement: the old owner keeps its copy even
    // though it would no longer own the cascade under the joined ring.
    // (A one-phase rebalance that evicts as it goes would strand the
    // cascade on no node here — permanent data loss.)
    let (world, submit, initiator, votes, close_at) = fixture();
    let b0 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let addr = b0.local_addr().to_string();
    let router = Arc::new(
        RouterState::new(RouterConfig {
            parallelism: Parallelism::Fixed(2),
            connect_timeout: std::time::Duration::from_millis(250),
            ..RouterConfig::new(vec![addr.clone()])
        })
        .unwrap(),
    );
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router)).unwrap();
    let mut routed = LineClient::connect(front.local_addr()).unwrap();

    // Pick an id the unreachable joiner would own, so the (aborted)
    // rebalance really tries — and fails — to move it. Port 1 on
    // loopback refuses the dial immediately.
    const DEAD: &str = "127.0.0.1:1";
    let next_ring =
        HashRing::new(&[addr.clone(), DEAD.to_owned()], HashRing::DEFAULT_REPLICAS).unwrap();
    let id = (0..256)
        .map(|i| format!("abort-{i}"))
        .find(|id| next_ring.route(id) == 1)
        .expect("some id lands on the joiner");

    for line in [
        format!(
            r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
        ),
        format!(r#"{{"type":"ingest","cascade":"{id}","votes":[{votes}],"now":{close_at}}}"#),
    ] {
        let response = Json::parse(&routed.send_raw(&line).unwrap()).unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
    }
    let forecast = format!(
        r#"{{"type":"forecast","cascade":"{id}","hours":[{HORIZON}],"through":{OBSERVE_THROUGH}}}"#
    );
    let before = routed.send_raw(&forecast).unwrap();
    assert!(before.starts_with(r#"{"ok":true"#), "{before}");

    let join = Json::parse(
        &routed
            .send_raw(&format!(r#"{{"type":"join","backend":"{DEAD}"}}"#))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(
        join.get("ok").and_then(Json::as_bool),
        Some(false),
        "{join}"
    );
    assert!(
        join.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("aborted"),
        "{join}"
    );
    assert_eq!(
        router.ring_version(),
        1,
        "aborted join must not bump the epoch"
    );
    assert_eq!(router.backend_addrs(), vec![addr]);

    let after = routed.send_raw(&forecast).unwrap();
    assert_eq!(after, before, "aborted join lost or changed cascade state");

    drop(front);
    drop(b0);
}

#[test]
fn partial_writes_are_surfaced_as_degraded() {
    // With `data_replicas: 2` and one owner dead, a write that lands on
    // the surviving owner must not come back as a clean success: the
    // replicas have diverged, and the response says so.
    let (world, submit, initiator, votes, close_at) = fixture();
    let b0 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let mut b1 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let addrs = vec![b0.local_addr().to_string(), b1.local_addr().to_string()];
    let router = Arc::new(
        RouterState::new(RouterConfig {
            parallelism: Parallelism::Fixed(2),
            data_replicas: 2,
            connect_timeout: std::time::Duration::from_millis(250),
            ..RouterConfig::new(addrs.clone())
        })
        .unwrap(),
    );
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router)).unwrap();
    let mut routed = LineClient::connect(front.local_addr()).unwrap();

    let open = format!(
        r#"{{"type":"open","cascade":"pw","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
    );
    let opened = Json::parse(&routed.send_raw(&open).unwrap()).unwrap();
    assert_eq!(opened.get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        opened.get("degraded").is_none(),
        "healthy write must not be degraded: {opened}"
    );

    b1.shutdown();
    drop(b1);
    let ingest =
        format!(r#"{{"type":"ingest","cascade":"pw","votes":[{votes}],"now":{close_at}}}"#);
    let response = Json::parse(&routed.send_raw(&ingest).unwrap()).unwrap();
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "the surviving owner applied the write: {response}"
    );
    assert_eq!(
        response.get("degraded").and_then(Json::as_bool),
        Some(true),
        "partial write must be flagged: {response}"
    );
    let missed = response
        .get("missed_backends")
        .and_then(Json::as_array)
        .expect("missed_backends");
    assert_eq!(
        missed.iter().filter_map(Json::as_str).collect::<Vec<_>>(),
        vec![addrs[1].as_str()],
        "{response}"
    );

    // The applied replica still serves the written state.
    let forecast = format!(
        r#"{{"type":"forecast","cascade":"pw","hours":[{HORIZON}],"through":{OBSERVE_THROUGH}}}"#
    );
    let served = Json::parse(&routed.send_raw(&forecast).unwrap()).unwrap();
    assert_eq!(served.get("ok").and_then(Json::as_bool), Some(true));

    drop(front);
    drop(b0);
}

#[test]
fn reads_fail_over_past_application_level_rejections() {
    // A replica that missed a write answers `unknown cascade` with a
    // healthy transport; the router must try the next owner instead of
    // relaying that rejection while a surviving owner holds the
    // cascade.
    let (world, submit, initiator, votes, close_at) = fixture();
    let b0 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let b1 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let addrs = vec![b0.local_addr().to_string(), b1.local_addr().to_string()];
    let router = Arc::new(
        RouterState::new(RouterConfig {
            parallelism: Parallelism::Fixed(2),
            data_replicas: 2,
            ..RouterConfig::new(addrs)
        })
        .unwrap(),
    );
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router)).unwrap();
    let mut routed = LineClient::connect(front.local_addr()).unwrap();

    // Install the cascade ONLY on the secondary owner (directly, past
    // the router) — the primary answering `unknown cascade` is exactly
    // the missed-write / not-yet-re-replicated shape.
    let id = "failover-0";
    let labels = router.backend_addrs();
    let primary = labels[router.shard_of(id)].clone();
    let secondary = labels
        .into_iter()
        .find(|l| *l != primary)
        .expect("two owners");
    let mut direct = LineClient::connect(secondary.as_str()).unwrap();
    for line in [
        format!(
            r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
        ),
        format!(r#"{{"type":"ingest","cascade":"{id}","votes":[{votes}],"now":{close_at}}}"#),
    ] {
        let response = Json::parse(&direct.send_raw(&line).unwrap()).unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
    }
    let forecast = format!(
        r#"{{"type":"forecast","cascade":"{id}","hours":[{HORIZON}],"through":{OBSERVE_THROUGH}}}"#
    );
    let via_secondary = direct.send_raw(&forecast).unwrap();
    let via_router = routed.send_raw(&forecast).unwrap();
    assert_eq!(
        via_router, via_secondary,
        "router must fail over past the primary's rejection"
    );
    assert!(via_router.starts_with(r#"{"ok":true"#), "{via_router}");

    // When EVERY owner rejects, the first rejection is relayed verbatim
    // — the same bytes a direct server would send, no `backend` field.
    let missing = Json::parse(
        &routed
            .send_raw(r#"{"type":"forecast","cascade":"nobody","hours":[2]}"#)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(missing.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        missing
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown cascade"),
        "{missing}"
    );
    assert!(
        missing.get("backend").is_none(),
        "an all-owner rejection is relayed, not synthesized: {missing}"
    );

    drop(front);
    drop(b0);
    drop(b1);
}

#[test]
fn admin_verbs_validate_membership_transitions() {
    // No live backends needed: these all fail in the membership state
    // machine (or the parser) before any handoff traffic.
    let router = RouterState::new(RouterConfig::new(vec![
        "127.0.0.1:9".into(),
        "127.0.0.1:10".into(),
    ]))
    .unwrap();
    for (line, needle) in [
        (r#"{"type":"join"}"#, "missing field `backend`"),
        (
            r#"{"type":"join","backend":"127.0.0.1:9"}"#,
            "already a member",
        ),
        (
            r#"{"type":"drain","backend":"127.0.0.1:99"}"#,
            "is not a member",
        ),
        (
            r#"{"type":"remove","backend":"127.0.0.1:99"}"#,
            "is not a member",
        ),
        (r#"{"type":"restore","snapshot":"00"}"#, "backend-scoped"),
        (r#"{"type":"cascades"}"#, "backend-scoped"),
        (r#"{"type":"evict","cascade":"x"}"#, "backend-scoped"),
    ] {
        let response = Json::parse(&router.handle_line(line)).unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{line}"
        );
        let message = response.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains(needle), "`{line}` -> `{message}`");
    }
    // Rejected transitions must not bump the epoch.
    assert_eq!(router.ring_version(), 1);

    // Draining everything is refused: the last active node has nowhere
    // to send its cascades.
    let drained =
        Json::parse(&router.handle_line(r#"{"type":"drain","backend":"127.0.0.1:9"}"#)).unwrap();
    assert_eq!(
        drained.get("ok").and_then(Json::as_bool),
        Some(true),
        "{drained}"
    );
    let last =
        Json::parse(&router.handle_line(r#"{"type":"drain","backend":"127.0.0.1:10"}"#)).unwrap();
    assert_eq!(last.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        last.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("last active"),
        "{last}"
    );
}

#[test]
fn dials_are_bounded_by_the_connect_timeout() {
    // A shard whose backend never answers the dial must come back as a
    // router-originated error in bounded time, not pin the handler
    // thread for the OS connect timeout (minutes). 192.0.2.1 is
    // TEST-NET-1 (RFC 5737): never routable, so the dial either fails
    // immediately (network unreachable) or blackholes until the
    // configured timeout fires — both well under the generous bound
    // asserted here, neither anywhere near the OS default.
    let state = RouterState::new(RouterConfig {
        connect_timeout: std::time::Duration::from_millis(250),
        ..RouterConfig::new(vec!["192.0.2.1:7878".into()])
    })
    .expect("router state");
    let start = std::time::Instant::now();
    let response =
        Json::parse(&state.handle_line(r#"{"type":"forecast","cascade":"c1","hours":[2]}"#))
            .expect("response json");
    let elapsed = start.elapsed();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("backend").and_then(Json::as_str),
        Some("192.0.2.1:7878")
    );
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "dead dial took {elapsed:?}; connect timeout did not bound it"
    );
}

#[test]
fn merged_metrics_are_the_bucket_wise_sum_of_backend_snapshots() {
    // The router's `metrics` scatter-gather returns three disjoint
    // series groups: the unlabeled cluster aggregate, each backend's
    // snapshot tagged `backend=addr`, and the router's own series
    // tagged `tier=router`. The PR's acceptance gate: the aggregate is
    // bit-for-bit the bucket-wise sum of the embedded backend
    // snapshots, and the deterministic counters match the traffic sent.
    use dlm_obs::MetricsSnapshot;
    use dlm_serve::snapshot_from_json;

    let (world, submit, initiator, votes, close_at) = fixture();
    let b0 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let b1 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let addrs = vec![b0.local_addr().to_string(), b1.local_addr().to_string()];
    let router = Arc::new(
        RouterState::new(RouterConfig {
            parallelism: Parallelism::Fixed(2),
            ..RouterConfig::new(addrs.clone())
        })
        .unwrap(),
    );
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router)).unwrap();
    let mut routed = LineClient::connect(front.local_addr()).unwrap();

    // Cascades on both shards, so both backends carry real counts.
    let mut ids: Vec<String> = Vec::new();
    let mut per_shard = [0usize; 2];
    for i in 0..64 {
        let id = format!("obs-{i}");
        let shard = router.shard_of(&id);
        if per_shard[shard] < 2 {
            per_shard[shard] += 1;
            ids.push(id);
        }
        if ids.len() == 4 {
            break;
        }
    }
    assert_eq!(per_shard, [2, 2], "both shards must own cascades");
    for id in &ids {
        for line in [
            format!(
                r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
            ),
            format!(r#"{{"type":"ingest","cascade":"{id}","votes":[{votes}],"now":{close_at}}}"#),
            format!(
                r#"{{"type":"forecast","cascade":"{id}","hours":[{HORIZON}],"through":{OBSERVE_THROUGH}}}"#
            ),
        ] {
            let response = Json::parse(&routed.send_raw(&line).unwrap()).unwrap();
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "{response}"
            );
        }
    }

    let scrape = Json::parse(&routed.send_raw(r#"{"type":"metrics"}"#).unwrap()).unwrap();
    assert_eq!(scrape.get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        scrape.get("backends_unreachable").is_none(),
        "every backend was reachable: {scrape}"
    );
    let exposition = scrape.get("exposition").unwrap().as_str().unwrap();
    assert!(exposition.contains("# TYPE dlm_requests_total counter"));
    assert!(exposition.contains("# TYPE dlm_router_requests_total counter"));
    let merged = snapshot_from_json(scrape.get("snapshot").unwrap()).unwrap();

    // Rebuild the sum from the backend-tagged copies in the same
    // response and compare it to the unlabeled aggregate bit-for-bit
    // (counters add, histogram buckets add element-wise via `merge`).
    let tagged = |labels: &[(String, String)], key: &str| labels.iter().any(|(k, _)| k == key);
    let mut summed = MetricsSnapshot::default();
    for addr in &addrs {
        let backend_series: Vec<_> = merged
            .series
            .iter()
            .filter(|s| {
                !tagged(&s.labels, "tier")
                    && s.labels.iter().any(|(k, v)| k == "backend" && v == addr)
            })
            .cloned()
            .map(|mut s| {
                s.labels.retain(|(k, _)| k != "backend");
                s
            })
            .collect();
        assert!(
            !backend_series.is_empty(),
            "backend {addr} snapshot missing from the merge"
        );
        summed.merge(&MetricsSnapshot {
            series: backend_series,
        });
    }
    let aggregate = MetricsSnapshot {
        series: merged
            .series
            .iter()
            .filter(|s| !tagged(&s.labels, "backend") && !tagged(&s.labels, "tier"))
            .cloned()
            .collect(),
    };
    assert!(!aggregate.series.is_empty(), "aggregate group missing");
    assert_eq!(
        aggregate, summed,
        "aggregate is not the bucket-wise sum of the backend snapshots"
    );

    // Deterministic cluster totals: one open/ingest/forecast per
    // cascade, one startup ring push per backend, zero errors. The
    // fan-out scrape itself counts only after its own snapshot.
    for (verb, n) in [
        ("open", 4),
        ("ingest", 4),
        ("forecast", 4),
        ("ring", 2),
        ("metrics", 0),
        ("invalid", 0),
    ] {
        assert_eq!(
            aggregate.counter("dlm_requests_total", &[("verb", verb)]),
            Some(n),
            "cluster dlm_requests_total verb={verb}"
        );
        assert_eq!(
            aggregate.counter("dlm_request_errors_total", &[("verb", verb)]),
            Some(0),
            "cluster dlm_request_errors_total verb={verb}"
        );
    }
    // The router's own tier counts the same client traffic once.
    for (verb, n) in [("open", 4), ("ingest", 4), ("forecast", 4), ("metrics", 0)] {
        assert_eq!(
            merged.counter(
                "dlm_router_requests_total",
                &[("verb", verb), ("tier", "router")]
            ),
            Some(n),
            "router dlm_router_requests_total verb={verb}"
        );
    }
    for addr in &addrs {
        let routed_to = merged
            .counter(
                "dlm_router_backend_requests_total",
                &[("backend", addr), ("tier", "router")],
            )
            .unwrap_or_else(|| panic!("missing backend counter for {addr}"));
        assert!(routed_to > 0, "backend {addr} should have received traffic");
    }

    drop(front);
    drop(b0);
    drop(b1);
}

#[test]
fn stats_flag_ring_skew_when_a_backend_disagrees() {
    // A backend whose ring version diverges from the router's committed
    // epoch is routing-inconsistent; the scatter-gather `stats` must
    // surface that as `"ring_skew":true` — and only then.
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.1)).unwrap();
    let b0 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let b1 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let addrs = vec![b0.local_addr().to_string(), b1.local_addr().to_string()];
    let router = Arc::new(
        RouterState::new(RouterConfig {
            parallelism: Parallelism::Fixed(2),
            ..RouterConfig::new(addrs.clone())
        })
        .unwrap(),
    );
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router)).unwrap();
    let mut routed = LineClient::connect(front.local_addr()).unwrap();

    // Healthy cluster: the startup push aligned every backend with
    // epoch 1, so the field is absent entirely.
    let healthy = Json::parse(&routed.send_raw(r#"{"type":"stats"}"#).unwrap()).unwrap();
    assert_eq!(healthy.get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        healthy.get("ring_skew").is_none(),
        "aligned backends must not report skew: {healthy}"
    );

    // Push a rogue epoch directly to one backend, behind the router's
    // back — the missed-update / split-brain shape.
    let mut direct = LineClient::connect(addrs[0].as_str()).unwrap();
    let rogue = Json::parse(&direct.send_raw(r#"{"type":"ring","version":99}"#).unwrap()).unwrap();
    assert_eq!(rogue.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(rogue.get("ring_version").and_then(Json::as_u64), Some(99));

    let skewed = Json::parse(&routed.send_raw(r#"{"type":"stats"}"#).unwrap()).unwrap();
    assert_eq!(skewed.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        skewed.get("ring_skew").and_then(Json::as_bool),
        Some(true),
        "diverged backend must flag skew: {skewed}"
    );
    // The embedded per-backend stats carry the rogue epoch for triage.
    let backends = skewed.get("backends").and_then(Json::as_array).unwrap();
    let reported: Vec<Option<u64>> = backends
        .iter()
        .map(|b| {
            b.get("stats")
                .and_then(|s| s.get("ring_version"))
                .and_then(Json::as_u64)
        })
        .collect();
    assert_eq!(reported, vec![Some(99), Some(1)], "{skewed}");

    // Re-aligning the backend clears the flag.
    let healed_push =
        Json::parse(&direct.send_raw(r#"{"type":"ring","version":1}"#).unwrap()).unwrap();
    assert_eq!(healed_push.get("ok").and_then(Json::as_bool), Some(true));
    let healed = Json::parse(&routed.send_raw(r#"{"type":"stats"}"#).unwrap()).unwrap();
    assert!(
        healed.get("ring_skew").is_none(),
        "re-aligned backend must clear the flag: {healed}"
    );

    drop(front);
    drop(b0);
    drop(b1);
}

#[test]
fn router_front_end_rejects_what_it_cannot_route() {
    // No live backends needed: these requests fail before any dial.
    let router = RouterState::new(RouterConfig::new(vec!["127.0.0.1:9".into()])).unwrap();
    for (line, needle) in [
        ("not json", "protocol error"),
        (r#"{"cascade":"x"}"#, "missing field `type`"),
        (r#"{"type":"warp"}"#, "unknown request type"),
        (
            r#"{"type":"forecast","hours":[2]}"#,
            "missing field `cascade`",
        ),
    ] {
        let response = Json::parse(&router.handle_line(line)).unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{line}"
        );
        let message = response.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains(needle), "`{line}` -> `{message}`");
    }
    // A routable request against a dead backend surfaces the shard.
    let response =
        Json::parse(&router.handle_line(r#"{"type":"ingest","cascade":"x","votes":[]}"#)).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("backend").and_then(Json::as_str),
        Some("127.0.0.1:9")
    );
}

#[test]
fn admin_verbs_racing_the_data_path_keep_responses_whole() {
    // `join` / `drain` / `rejoin` run while readers and writers soak
    // the data path from their own connections. The contract under the
    // race: every data-path response is a whole, parseable line that
    // matches the direct mirror byte for byte (no torn responses, no
    // transient errors), and the ring version observed through `stats`
    // never regresses.
    let (world, submit, initiator, votes, close_at) = fixture();
    let backends: Vec<_> = (0..4)
        .map(|_| DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap())
        .collect();
    let direct = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let addrs: Vec<String> = backends
        .iter()
        .map(|b| b.local_addr().to_string())
        .collect();
    // The fourth backend starts outside the cluster; the admin
    // sequence joins and drains it repeatedly while traffic flows.
    let spare = addrs[3].clone();
    let router = Arc::new(
        RouterState::new(RouterConfig {
            parallelism: Parallelism::Fixed(2),
            data_replicas: 2,
            ..RouterConfig::new(addrs[..3].to_vec())
        })
        .unwrap(),
    );
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router)).unwrap();

    // Seed a read-only working set and record its expected bytes.
    let mut seeding = LineClient::connect(front.local_addr()).unwrap();
    let mut mirror = LineClient::connect(direct.local_addr()).unwrap();
    let mut frozen: Vec<(String, String)> = Vec::new();
    for i in 0..12 {
        let id = format!("race-{i}");
        for line in [
            format!(
                r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
            ),
            format!(r#"{{"type":"ingest","cascade":"{id}","votes":[{votes}],"now":{close_at}}}"#),
        ] {
            assert_eq!(
                seeding.send_raw(&line).unwrap(),
                mirror.send_raw(&line).unwrap(),
                "seeding diverged on `{line}`"
            );
        }
        let forecast = format!(
            r#"{{"type":"forecast","cascade":"{id}","hours":[{HORIZON}],"through":{OBSERVE_THROUGH}}}"#
        );
        let expected = mirror.send_raw(&forecast).unwrap();
        assert_eq!(seeding.send_raw(&forecast).unwrap(), expected);
        frozen.push((forecast, expected));
    }

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let front_addr = front.local_addr();
    let reader = {
        let stop = Arc::clone(&stop);
        let frozen = frozen.clone();
        std::thread::spawn(move || {
            let mut client = LineClient::connect(front_addr).unwrap();
            let mut served = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                for (line, expected) in &frozen {
                    let got = client.send_raw(line).expect("read during admin verb");
                    assert_eq!(&got, expected, "torn or diverged read: `{line}`");
                    served += 1;
                }
            }
            served
        })
    };
    let writer = {
        let stop = Arc::clone(&stop);
        let direct_addr = direct.local_addr();
        let votes = votes.clone();
        std::thread::spawn(move || {
            let mut routed = LineClient::connect(front_addr).unwrap();
            let mut mirror = LineClient::connect(direct_addr).unwrap();
            let mut written = 0u64;
            for i in 0.. {
                if stop.load(std::sync::atomic::Ordering::SeqCst) {
                    break;
                }
                let id = format!("race-w{i}");
                for line in [
                    format!(
                        r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
                    ),
                    format!(
                        r#"{{"type":"ingest","cascade":"{id}","votes":[{votes}],"now":{close_at}}}"#
                    ),
                ] {
                    let via_router = routed.send_raw(&line).expect("write during admin verb");
                    let via_mirror = mirror.send_raw(&line).unwrap();
                    assert_eq!(
                        via_router, via_mirror,
                        "torn or degraded write under race: `{line}`"
                    );
                    written += 1;
                }
            }
            written
        })
    };
    let versions = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = LineClient::connect(front_addr).unwrap();
            let mut last = 0u64;
            let mut polls = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let stats = Json::parse(&client.send_raw(r#"{"type":"stats"}"#).unwrap()).unwrap();
                let version = u(stats.get("router").expect("router stats"), "ring_version");
                assert!(
                    version >= last,
                    "ring version regressed mid-race: {last} -> {version}"
                );
                last = version;
                polls += 1;
            }
            polls
        })
    };

    // The admin storm, from the main connection: a member rejoin
    // (anti-entropy sweep, no bump), two join/drain cycles of the
    // spare — one of them via the `rejoin` spelling a restarted
    // non-member announces with — each an incremental, chunked
    // rebalance racing the threads above.
    let mut admin = LineClient::connect(front.local_addr()).unwrap();
    let sequence: [(String, u64); 5] = [
        (
            format!(r#"{{"type":"rejoin","backend":"{}"}}"#, addrs[0]),
            1,
        ),
        (format!(r#"{{"type":"join","backend":"{spare}"}}"#), 2),
        (format!(r#"{{"type":"drain","backend":"{spare}"}}"#), 3),
        (format!(r#"{{"type":"rejoin","backend":"{spare}"}}"#), 4),
        (format!(r#"{{"type":"drain","backend":"{spare}"}}"#), 5),
    ];
    for (line, want_version) in &sequence {
        let response = Json::parse(&admin.send_raw(line).unwrap()).unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "`{line}` -> {response}"
        );
        assert_eq!(u(&response, "failed"), 0, "{response}");
        assert_eq!(
            u(&response, "ring_version"),
            *want_version,
            "wrong epoch after `{line}`: {response}"
        );
    }

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let served = reader.join().expect("reader thread");
    let written = writer.join().expect("writer thread");
    let polls = versions.join().expect("version monitor thread");
    assert!(served > 0, "reader never completed a request");
    assert!(written > 0, "writer never completed a request");
    assert!(polls > 0, "version monitor never polled");

    // After the storm: the frozen set still serves the recorded bytes
    // and the ring settled where the sequence left it.
    for (line, expected) in &frozen {
        assert_eq!(
            &seeding.send_raw(line).unwrap(),
            expected,
            "post-race read diverged: `{line}`"
        );
    }
    assert_eq!(router.ring_version(), 5);
    drop(front);
    drop(backends);
}
