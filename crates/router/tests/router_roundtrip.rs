//! End-to-end contract of the routing tier, over real sockets:
//!
//! * **byte-identity** — every `open`/`ingest`/`forecast` response a
//!   client receives through `dlm-router` (two backend processes'
//!   worth of `ServerState`s) is byte-identical to the response the
//!   same request sequence gets from one direct `dlm-serve` server,
//!   for the full 8-model default lineup and for both distance
//!   metrics;
//! * **stats aggregation** — the router's scatter-gather `stats`
//!   aggregate equals the field-wise sum of the per-backend stats it
//!   embeds in the same response;
//! * **failure isolation** — killing one backend surfaces a
//!   per-backend error for cascades on its shard while every other
//!   shard keeps serving identical bytes.

use dlm_core::evaluate::Parallelism;
use dlm_data::simulate::simulate_story;
use dlm_data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use dlm_router::{RouterConfig, RouterState};
use dlm_serve::server::{DlmServer, ServeConfig, ServerState};
use dlm_serve::{Json, LineClient};
use std::sync::Arc;

const MAX_HOPS: u32 = 4;
const HORIZON: u32 = 5;
const OBSERVE_THROUGH: u32 = 2;

fn backend_state(world: &SyntheticWorld) -> ServerState {
    ServerState::with_world(
        ServeConfig {
            parallelism: Parallelism::Fixed(2),
            ..ServeConfig::default()
        },
        world.clone(),
    )
    .expect("server state")
}

fn u(value: &Json, key: &str) -> u64 {
    value
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing counter `{key}` in {value}"))
}

#[test]
fn routed_cluster_matches_single_server_and_degrades_per_shard() {
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.1)).unwrap();
    let story = simulate_story(
        &world,
        &StoryPreset::s1(),
        SimulationConfig {
            hours: HORIZON + 2,
            substeps: 2,
            seed: 13,
        },
    )
    .unwrap();
    let submit = story.submit_time();
    let initiator = story.initiator();
    let votes_json: Vec<String> = story
        .votes()
        .iter()
        .map(|v| format!("[{},{}]", v.timestamp, v.voter))
        .collect();
    let votes = votes_json.join(",");
    let close_at = submit + u64::from(HORIZON) * 3600;

    // Two backend shards, one direct twin, one router in front.
    let mut b0 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let b1 = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let direct = DlmServer::bind("127.0.0.1:0", backend_state(&world)).unwrap();
    let addrs = vec![b0.local_addr().to_string(), b1.local_addr().to_string()];
    let router = Arc::new(
        RouterState::new(RouterConfig {
            parallelism: Parallelism::Fixed(2),
            ..RouterConfig::new(addrs.clone())
        })
        .unwrap(),
    );
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router)).unwrap();

    // Pick cascade ids deterministically so each shard owns three.
    let mut ids: Vec<String> = Vec::new();
    let mut per_shard = [0usize; 2];
    for i in 0..64 {
        let id = format!("c{i}");
        let shard = router.shard_of(&id);
        if per_shard[shard] < 3 {
            per_shard[shard] += 1;
            ids.push(id);
        }
        if ids.len() == 6 {
            break;
        }
    }
    assert_eq!(per_shard, [3, 3], "both shards must own cascades");

    let mut routed = LineClient::connect(front.local_addr()).unwrap();
    let mut single = LineClient::connect(direct.local_addr()).unwrap();
    let gate_hours: Vec<String> = (OBSERVE_THROUGH + 1..=HORIZON)
        .map(|h| h.to_string())
        .collect();
    let gate_hours = gate_hours.join(",");

    // The same request stream through the router and through one direct
    // server must produce byte-identical response lines — the hop metric
    // with the full 8-model lineup, plus one interest-metric cascade.
    let mut forecast_lines = Vec::new();
    for id in &ids {
        let mut requests = vec![
            format!(
                r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#
            ),
            format!(r#"{{"type":"ingest","cascade":"{id}","votes":[{votes}],"now":{close_at}}}"#),
            format!(
                r#"{{"type":"forecast","cascade":"{id}","hours":[{gate_hours}],"through":{OBSERVE_THROUGH}}}"#
            ),
        ];
        if id == &ids[0] {
            let interest_id = format!("{id}-interest");
            requests.push(format!(
                r#"{{"type":"open","cascade":"{interest_id}","initiator":{initiator},"metric":"interest","groups":5,"strategy":"width","horizon":{HORIZON},"submit_time":{submit}}}"#
            ));
            requests.push(format!(
                r#"{{"type":"ingest","cascade":"{interest_id}","votes":[{votes}],"now":{close_at}}}"#
            ));
            requests.push(format!(
                r#"{{"type":"forecast","cascade":"{interest_id}","hours":[{gate_hours}],"through":{OBSERVE_THROUGH}}}"#
            ));
        }
        for line in &requests {
            let via_router = routed.send_raw(line).unwrap();
            let via_single = single.send_raw(line).unwrap();
            assert_eq!(
                via_router, via_single,
                "routed and direct bytes diverge for `{line}`"
            );
            if line.contains(r#""type":"forecast""#) {
                let parsed = Json::parse(&via_router).unwrap();
                assert_eq!(
                    parsed.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "{via_router}"
                );
                assert_eq!(
                    parsed
                        .get("models")
                        .and_then(Json::as_array)
                        .map(<[_]>::len),
                    Some(8),
                    "full lineup must be served: {via_router}"
                );
                forecast_lines.push((line.clone(), via_router));
            }
        }
    }

    // Scatter-gather stats: the aggregate must equal the field-wise sum
    // of the per-backend stats embedded in the same response.
    let stats = Json::parse(&routed.send_raw(r#"{"type":"stats"}"#).unwrap()).unwrap();
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(stats.get("degraded").and_then(Json::as_bool), Some(false));
    let aggregate = stats.get("aggregate").expect("aggregate");
    let backends = stats.get("backends").and_then(Json::as_array).unwrap();
    assert_eq!(backends.len(), 2);
    let shard_stats: Vec<&Json> = backends
        .iter()
        .map(|b| {
            assert_eq!(b.get("ok").and_then(Json::as_bool), Some(true), "{b}");
            b.get("stats").expect("embedded shard stats")
        })
        .collect();
    for key in [
        "cascades",
        "cascade_evictions",
        "cascade_expirations",
        "requests",
        "refit_jobs",
        "hours_closed",
    ] {
        let sum: u64 = shard_stats.iter().map(|s| u(s, key)).sum();
        assert_eq!(u(aggregate, key), sum, "aggregate `{key}` is not the sum");
    }
    let agg_cache = aggregate.get("cache").expect("aggregate cache");
    for key in ["hits", "misses", "evictions", "len", "capacity"] {
        let sum: u64 = shard_stats
            .iter()
            .map(|s| u(s.get("cache").expect("shard cache"), key))
            .sum();
        assert_eq!(u(agg_cache, key), sum, "cache `{key}` is not the sum");
    }
    // Both hop shards closed every hour once per owned cascade; the
    // interest cascade adds one more close cycle on its shard.
    assert_eq!(u(aggregate, "hours_closed"), u64::from(HORIZON) * 7);
    let routed_counts = stats
        .get("router")
        .and_then(|r| r.get("routed"))
        .and_then(Json::as_array)
        .unwrap();
    assert!(
        routed_counts
            .iter()
            .all(|c| c.as_u64().is_some_and(|n| n > 0)),
        "every shard should have received traffic: {routed_counts:?}"
    );

    // Kill shard 0. Its cascades surface a per-backend error; shard 1
    // keeps serving byte-identical forecasts, and stats degrade instead
    // of failing.
    b0.shutdown();
    drop(b0);
    let shard_of = |id: &str| router.shard_of(id);
    let (dead_line, _) = forecast_lines
        .iter()
        .find(|(line, _)| {
            let id = Json::parse(line.as_str())
                .unwrap()
                .get("cascade")
                .and_then(Json::as_str)
                .unwrap()
                .to_owned();
            shard_of(&id) == 0
        })
        .expect("some forecast lives on shard 0");
    let response = Json::parse(&routed.send_raw(dead_line).unwrap()).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("backend").and_then(Json::as_str),
        Some(addrs[0].as_str()),
        "the failing shard must be named: {response}"
    );
    assert!(
        response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unavailable"),
        "{response}"
    );
    for (line, before) in forecast_lines
        .iter()
        .filter(|(line, _)| {
            let parsed = Json::parse(line.as_str()).unwrap();
            shard_of(parsed.get("cascade").and_then(Json::as_str).unwrap()) == 1
        })
        .take(2)
    {
        let after = routed.send_raw(line).unwrap();
        assert_eq!(&after, before, "surviving shard diverged after the kill");
    }
    let degraded = Json::parse(&routed.send_raw(r#"{"type":"stats"}"#).unwrap()).unwrap();
    assert_eq!(degraded.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(degraded.get("degraded").and_then(Json::as_bool), Some(true));
    let entries = degraded.get("backends").and_then(Json::as_array).unwrap();
    assert_eq!(entries[0].get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(entries[1].get("ok").and_then(Json::as_bool), Some(true));

    drop(front);
}

#[test]
fn dials_are_bounded_by_the_connect_timeout() {
    // A shard whose backend never answers the dial must come back as a
    // router-originated error in bounded time, not pin the handler
    // thread for the OS connect timeout (minutes). 192.0.2.1 is
    // TEST-NET-1 (RFC 5737): never routable, so the dial either fails
    // immediately (network unreachable) or blackholes until the
    // configured timeout fires — both well under the generous bound
    // asserted here, neither anywhere near the OS default.
    let state = RouterState::new(RouterConfig {
        connect_timeout: std::time::Duration::from_millis(250),
        ..RouterConfig::new(vec!["192.0.2.1:7878".into()])
    })
    .expect("router state");
    let start = std::time::Instant::now();
    let response =
        Json::parse(&state.handle_line(r#"{"type":"forecast","cascade":"c1","hours":[2]}"#))
            .expect("response json");
    let elapsed = start.elapsed();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("backend").and_then(Json::as_str),
        Some("192.0.2.1:7878")
    );
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "dead dial took {elapsed:?}; connect timeout did not bound it"
    );
}

#[test]
fn router_front_end_rejects_what_it_cannot_route() {
    // No live backends needed: these requests fail before any dial.
    let router = RouterState::new(RouterConfig::new(vec!["127.0.0.1:9".into()])).unwrap();
    for (line, needle) in [
        ("not json", "protocol error"),
        (r#"{"cascade":"x"}"#, "missing field `type`"),
        (r#"{"type":"warp"}"#, "unknown request type"),
        (
            r#"{"type":"forecast","hours":[2]}"#,
            "missing field `cascade`",
        ),
    ] {
        let response = Json::parse(&router.handle_line(line)).unwrap();
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{line}"
        );
        let message = response.get("error").and_then(Json::as_str).unwrap();
        assert!(message.contains(needle), "`{line}` -> `{message}`");
    }
    // A routable request against a dead backend surfaces the shard.
    let response =
        Json::parse(&router.handle_line(r#"{"type":"ingest","cascade":"x","votes":[]}"#)).unwrap();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("backend").and_then(Json::as_str),
        Some("127.0.0.1:9")
    );
}
