//! The generated unit of work: one cascade as a schedule of wire-level
//! ingest deliveries, plus the pure helpers the soak harness's gates
//! are built on.

use dlm_data::Vote;

/// One `ingest` call's worth of votes, as the serving tier would
/// receive it.
///
/// Clean deliveries carry hour `h`'s votes with `now` at the end of
/// that hour, so applying delivery `h` closes hour `h`. Late
/// deliveries (storm regimes only) carry exactly one vote whose
/// timestamp falls in an hour the preceding clean delivery already
/// closed — the server must reject it with a `LateVote` error and
/// leave every byte of cascade state untouched. They ride alone
/// because the server's documented partial-apply contract stops an
/// ingest batch at the first rejected vote; mixing a late vote into a
/// clean batch would make the clean suffix's fate order-dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Wall-clock the client reports with the batch (`now` field);
    /// the server closes every hour ending at or before it.
    pub now: u64,
    /// `(timestamp, voter)` pairs in delivery order. Storm regimes
    /// shuffle within the hour, so this is *not* timestamp-sorted.
    pub votes: Vec<(u64, usize)>,
    /// Whether the server is expected to reject this delivery as late.
    pub late: bool,
}

/// One deterministic synthetic cascade: identity, ground-truth graph
/// coordinates, and the full delivery schedule.
///
/// Everything here is a pure function of `(regime, seed, index)` — see
/// [`crate::Regime::cascade`] — which is what makes any slice of any
/// stream independently re-derivable. [`ScenarioCascade::canonical_bytes`]
/// is the byte form that contract is checked against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioCascade {
    /// Catalog name of the generating regime.
    pub regime: &'static str,
    /// Position in the regime's stream.
    pub index: u64,
    /// Initiating node in the regime's graph.
    pub initiator: usize,
    /// Submission epoch (seconds).
    pub submit_time: u64,
    /// Forecast horizon in hours; clean deliveries run `1..=horizon`.
    pub horizon: u32,
    /// The ingest schedule, in wire order.
    pub deliveries: Vec<Delivery>,
}

impl ScenarioCascade {
    /// The votes a correct server ends up counting: every vote of
    /// every non-late delivery, in delivery order. This is the pure
    /// "batch side" of the live-vs-batch identity gate — feed it to
    /// [`dlm_data::Cascade::from_parts`] and the offline builders.
    #[must_use]
    pub fn accepted_votes(&self) -> Vec<(u64, usize)> {
        self.deliveries
            .iter()
            .filter(|d| !d.late)
            .flat_map(|d| d.votes.iter().copied())
            .collect()
    }

    /// [`ScenarioCascade::accepted_votes`] as Digg-model [`Vote`]s,
    /// tagged with `story`.
    #[must_use]
    pub fn accepted_as_votes(&self, story: u32) -> Vec<Vote> {
        self.accepted_votes()
            .into_iter()
            .map(|(timestamp, voter)| Vote {
                timestamp,
                voter,
                story,
            })
            .collect()
    }

    /// Number of deliveries the server is expected to reject as late.
    #[must_use]
    pub fn late_deliveries(&self) -> usize {
        self.deliveries.iter().filter(|d| d.late).count()
    }

    /// A canonical, platform-independent byte rendering of the whole
    /// cascade. Two generation paths agree on a cascade iff they agree
    /// on these bytes; the soak harness and the determinism proptests
    /// compare slices through this.
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "scenario/v1 regime={} index={} initiator={} submit={} horizon={}\n",
            self.regime, self.index, self.initiator, self.submit_time, self.horizon
        );
        for d in &self.deliveries {
            out.push_str(&format!("D now={} late={}", d.now, u8::from(d.late)));
            for &(ts, voter) in &d.votes {
                out.push_str(&format!(" {ts}:{voter}"));
            }
            out.push('\n');
        }
        out.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioCascade {
        ScenarioCascade {
            regime: "test",
            index: 3,
            initiator: 7,
            submit_time: 1000,
            horizon: 2,
            deliveries: vec![
                Delivery {
                    now: 4600,
                    votes: vec![(1100, 2), (1050, 4)],
                    late: false,
                },
                Delivery {
                    now: 8200,
                    votes: vec![(1200, 9)],
                    late: true,
                },
                Delivery {
                    now: 8200,
                    votes: vec![(5000, 5)],
                    late: false,
                },
            ],
        }
    }

    #[test]
    fn accepted_votes_skip_late_deliveries_and_keep_order() {
        let c = sample();
        assert_eq!(c.accepted_votes(), vec![(1100, 2), (1050, 4), (5000, 5)]);
        assert_eq!(c.late_deliveries(), 1);
        let votes = c.accepted_as_votes(42);
        assert_eq!(votes.len(), 3);
        assert!(votes.iter().all(|v| v.story == 42));
    }

    #[test]
    fn canonical_bytes_round_out_every_field() {
        let c = sample();
        let text = String::from_utf8(c.canonical_bytes()).unwrap();
        assert!(
            text.starts_with("scenario/v1 regime=test index=3 initiator=7 submit=1000 horizon=2\n")
        );
        assert!(text.contains("D now=4600 late=0 1100:2 1050:4\n"));
        assert!(text.contains("D now=8200 late=1 1200:9\n"));
        // Any field change moves the bytes.
        let mut other = c.clone();
        other.deliveries[0].votes[0].0 += 1;
        assert_ne!(other.canonical_bytes(), c.canonical_bytes());
    }
}
