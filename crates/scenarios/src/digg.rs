//! Deterministic synthetic dataset in the real Digg 2009 CSV shape.
//!
//! The actual crawl is non-redistributable, so CI's `--digg-dir`
//! replay writes this fixture through [`dlm_data::DiggDataset`]'s CSV
//! *writers*, reads it back through the CSV *readers*, and drives the
//! result end-to-end through the serving tiers — exercising the whole
//! loader path with bytes that regenerate identically from a seed.

use dlm_data::simulate::SIMULATED_SUBMIT_TIME;
use dlm_data::{DiggDataset, FriendLink, Vote};

use crate::regime::{Diffusivity, Regime, Shape, Topology};
use crate::Result;

/// Tuning for [`digg_fixture`]. The defaults are small enough for a
/// smoke job yet large enough that every story clears the serving
/// tier's hop-group and accuracy machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiggFixtureConfig {
    /// Master seed — the entire dataset is a pure function of it.
    pub seed: u64,
    /// Number of stories (1-based ids `1..=stories`).
    pub stories: u32,
    /// Users in the synthetic follower graph.
    pub nodes: usize,
}

impl Default for DiggFixtureConfig {
    fn default() -> Self {
        Self {
            seed: 2009,
            stories: 6,
            nodes: 300,
        }
    }
}

/// Stories are spaced this many hours apart so their vote windows
/// never overlap (real Digg stories are submitted over months).
const STORY_SPACING_HOURS: u64 = 1000;

/// Generates the synthetic Digg-format dataset: a preferential-
/// attachment follower graph rendered as friend links, plus one vote
/// cascade per story (alternating broadcast and viral shapes, each
/// opened by its initiator's own vote at submission, like the real
/// logs). Pure in `config` — regenerating with the same config is
/// byte-identical.
///
/// # Errors
///
/// Propagates graph generation errors (config with too few nodes).
pub fn digg_fixture(config: &DiggFixtureConfig) -> Result<DiggDataset> {
    let base = fixture_regime("digg-fixture", Shape::Broadcast, config.nodes);
    let graph = base.graph(config.seed)?;
    let mut votes: Vec<Vote> = Vec::new();
    for s in 0..config.stories {
        let (name, shape) = if s % 2 == 0 {
            ("digg-fixture-broadcast", Shape::Broadcast)
        } else {
            ("digg-fixture-viral", Shape::Viral)
        };
        let regime = fixture_regime(name, shape, config.nodes);
        let cascade = regime.cascade(&graph, config.seed, u64::from(s))?;
        let story = s + 1;
        let offset = u64::from(s) * STORY_SPACING_HOURS * 3600;
        // The submitter's own vote opens the story — that's how
        // `DiggDataset::initiator` identifies it in the real logs.
        votes.push(Vote {
            timestamp: cascade.submit_time + offset,
            voter: cascade.initiator,
            story,
        });
        for (ts, voter) in cascade.accepted_votes() {
            votes.push(Vote {
                timestamp: ts + offset,
                voter,
                story,
            });
        }
    }
    // Friend links predate every vote; one non-mutual link per directed
    // edge reproduces the graph exactly through `follower_graph`.
    let link_time = SIMULATED_SUBMIT_TIME - 86_400;
    let links: Vec<FriendLink> = graph
        .edges()
        .map(|(followee, follower)| FriendLink {
            mutual: false,
            timestamp: link_time,
            follower,
            followee,
        })
        .collect();
    Ok(DiggDataset::new(votes, links))
}

fn fixture_regime(name: &'static str, shape: Shape, nodes: usize) -> Regime {
    Regime {
        name,
        summary: "digg fixture generator",
        topology: Topology::PreferentialAttachment {
            nodes,
            edges_per_node: 4,
        },
        shape,
        diffusivity: Diffusivity::Constant,
        storm: false,
        horizon: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_pure_in_config_and_round_trips_csv() {
        let config = DiggFixtureConfig::default();
        let a = digg_fixture(&config).unwrap();
        let b = digg_fixture(&config).unwrap();
        assert_eq!(a, b);
        let mut votes_csv = Vec::new();
        let mut friends_csv = Vec::new();
        a.write_votes_csv(&mut votes_csv).unwrap();
        a.write_friends_csv(&mut friends_csv).unwrap();
        let back = DiggDataset::read_csv(&votes_csv[..], &friends_csv[..]).unwrap();
        assert_eq!(back, a);
        assert_ne!(
            digg_fixture(&DiggFixtureConfig {
                seed: 2010,
                ..config
            })
            .unwrap(),
            a
        );
    }

    #[test]
    fn fixture_stories_have_initiators_and_disjoint_windows() {
        let config = DiggFixtureConfig::default();
        let data = digg_fixture(&config).unwrap();
        assert_eq!(data.story_ids().len(), config.stories as usize);
        let graph = data.follower_graph();
        for story in data.story_ids() {
            let initiator = data.initiator(story).unwrap();
            assert!(graph.out_degree(initiator) > 0);
            let story_votes = data.story_votes(story);
            // Submitter's vote is first; everyone else follows within
            // the 8-hour horizon.
            let submit = story_votes[0].timestamp;
            assert_eq!(story_votes[0].voter, initiator);
            assert!(story_votes.len() > 8, "story {story} too sparse");
            for v in &story_votes {
                assert!(v.timestamp >= submit && v.timestamp < submit + 9 * 3600);
            }
        }
    }
}
