//! # dlm-scenarios — deterministic cascade workload factory
//!
//! The serving stack's soak layer: named **regimes** that stream
//! unbounded synthetic cascade workloads, each an iterator of
//! [`ScenarioCascade`]s whose content is a *pure function of
//! `(regime, seed, index)`*. Any slice of any stream can be re-derived
//! independently — for proptest shrinking, for CI replay of a failure,
//! or for fanning generation across threads without changing a byte
//! (see [`generate_batch`]).
//!
//! A regime is the cross product of
//!
//! * **topology** — Erdős–Rényi, preferential attachment, or
//!   Watts–Strogatz small-world (via [`dlm_graph::generators`]);
//! * **shape** — *broadcast* (one hub reaches its audience directly,
//!   deeper hops stay quiet — the dominant pattern the Twitter study in
//!   PAPERS.md found for popular content), *viral* (a wave passes
//!   distance by distance, the regime the DL model was built for), or
//!   *community-bridged* (near hops saturate first, far hops light up
//!   only after a bridge crosses mid-horizon);
//! * **diffusivity** — constant or a mid-horizon surge;
//! * **storm** — in-hour vote reordering plus late echoes targeting
//!   already-closed hours, which a correct server must *reject*
//!   deterministically.
//!
//! The catalog lives in [`catalog`]; `docs/SCENARIOS.md` is the
//! narrative reference (seeding scheme, determinism contract, how to
//! add a regime). [`digg_fixture`] generates a small synthetic dataset
//! in the real Digg 2009 CSV shape so the `--digg-dir` replay path can
//! be exercised end-to-end (writer → reader → serving tier) without
//! redistributing the crawl.

#![warn(missing_docs)]

mod cascade;
mod digg;
mod regime;
mod stream;

pub use cascade::{Delivery, ScenarioCascade};
pub use digg::{digg_fixture, DiggFixtureConfig};
pub use regime::{catalog, find_regime, Diffusivity, Regime, Shape, Topology, SCENARIO_MAX_HOPS};
pub use stream::{generate_batch, ScenarioStream};

/// Errors from scenario construction.
#[derive(Debug)]
pub enum ScenarioError {
    /// No regime with the requested name in the catalog.
    UnknownRegime(String),
    /// Graph generation failed (invalid catalog parameters — a bug).
    Graph(dlm_graph::GraphError),
    /// Hop grouping failed for every candidate initiator.
    Cascade(dlm_cascade::CascadeError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownRegime(name) => {
                let names: Vec<&str> = catalog().iter().map(|r| r.name).collect();
                write!(f, "unknown regime `{name}`; catalog: {}", names.join(", "))
            }
            Self::Graph(e) => write!(f, "scenario graph generation: {e}"),
            Self::Cascade(e) => write!(f, "scenario hop grouping: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<dlm_graph::GraphError> for ScenarioError {
    fn from(e: dlm_graph::GraphError) -> Self {
        Self::Graph(e)
    }
}

impl From<dlm_cascade::CascadeError> for ScenarioError {
    fn from(e: dlm_cascade::CascadeError) -> Self {
        Self::Cascade(e)
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ScenarioError>;
