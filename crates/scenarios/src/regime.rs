//! The regime catalog and the deterministic cascade generator.
//!
//! Everything an index `i` of a regime stream produces is derived from
//! one [`SmallRng`] seeded with `splitmix64_at(base, i + 1)`, where
//! `base` mixes the regime name with the caller's seed and
//! `splitmix64_at(base, 0)` seeds the regime's graph. Random access
//! into the SplitMix64 sequence is what makes slices re-derivable
//! without replaying a prefix; see `docs/SCENARIOS.md` for the
//! contract in full.

use dlm_cascade::hops::hop_groups;
use dlm_data::simulate::SIMULATED_SUBMIT_TIME;
use dlm_graph::generators::{
    erdos_renyi, preferential_attachment, watts_strogatz, PreferentialAttachmentConfig,
};
use dlm_graph::DiGraph;
use dlm_numerics::mix::{splitmix64_at, splitmix64_mix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::cascade::{Delivery, ScenarioCascade};
use crate::{Result, ScenarioError};

/// Hop-group depth every scenario cascade is bucketed to — matches the
/// paper's protocol (distances 1..=4 carry the signal on Digg-like
/// graphs) and the soak harness's `open` requests.
pub const SCENARIO_MAX_HOPS: u32 = 4;

/// Seconds per modeled hour.
const HOUR: u64 = 3600;

/// How a regime's social graph is wired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// Erdős–Rényi `G(n, p)`: no hubs, no clustering — the null model.
    ErdosRenyi {
        /// Node count.
        nodes: usize,
        /// Independent edge probability.
        p: f64,
    },
    /// Digg-like preferential attachment with reciprocation and triad
    /// closure: heavy-tailed degrees, real hubs.
    PreferentialAttachment {
        /// Node count.
        nodes: usize,
        /// Out-edges per arriving node.
        edges_per_node: usize,
    },
    /// Watts–Strogatz small world: strong local community structure
    /// with a few long-range shortcuts.
    WattsStrogatz {
        /// Node count.
        nodes: usize,
        /// Ring neighbors per side before rewiring.
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
}

/// The macroscopic spread pattern votes follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// One hub reaches its direct audience; deeper hops stay nearly
    /// silent. The Twitter model-comparison study found this is how
    /// *most* popular content actually spreads.
    Broadcast,
    /// A wave passes distance by distance — hop `d` peaks around hour
    /// `1.5 · d`. The regime the DL model's moving influence front was
    /// built for.
    Viral,
    /// Near hops (1–2) saturate early; far hops (3–4) light up only
    /// after the midpoint, as if a bridge node carried the story into
    /// another community.
    Bridged,
}

impl Shape {
    /// Per-scan adoption probability for a not-yet-voted node at hop
    /// distance `d` during hour `h`. Built only from exactly-rounded
    /// IEEE ops (add/sub/mul/div/abs) so the threshold a random draw
    /// is compared against is bit-identical on every platform.
    fn probability(self, d: u32, h: u32, horizon: u32) -> f64 {
        let hf = f64::from(h);
        match self {
            Self::Broadcast => {
                let decay = geometric(0.55, h - 1);
                if d == 1 {
                    0.5 * decay
                } else {
                    // Deep hop groups on a scale-free graph hold most
                    // of the population, so the per-node trickle must
                    // be tiny for the cascade to stay a broadcast.
                    0.002 * geometric(0.6, h - 1)
                }
            }
            Self::Viral => {
                // Triangular bump centered at h = 1.5 d, half-width 2.5.
                let center = 1.5 * f64::from(d);
                let w = 1.0 - (hf - center).abs() / 2.5;
                0.35 * w.max(0.0)
            }
            Self::Bridged => {
                let mid = horizon / 2;
                if h <= mid {
                    if d <= 2 {
                        0.22 * geometric(0.7, h - 1)
                    } else {
                        0.0
                    }
                } else if d >= 3 {
                    0.3 * geometric(0.75, h - mid - 1)
                } else {
                    0.01
                }
            }
        }
    }
}

/// `base * ratio^n` by repeated multiplication — `powi`'s rounding is
/// implementation-defined, a plain product loop is not.
fn geometric(ratio: f64, n: u32) -> f64 {
    let mut out = 1.0;
    for _ in 0..n {
        out *= ratio;
    }
    out
}

/// Time-varying modulation of the adoption probabilities — the
/// "diffusivity" knob of the DL PDE, varied over wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diffusivity {
    /// No modulation.
    Constant,
    /// Quiet start, a 1.8× burst through the middle third of the
    /// horizon, quiet tail — stresses fits observed before the burst.
    Surge,
}

impl Diffusivity {
    fn factor(self, h: u32, horizon: u32) -> f64 {
        match self {
            Self::Constant => 1.0,
            Self::Surge => {
                if h > horizon / 3 && h <= 2 * horizon / 3 {
                    1.8
                } else {
                    0.5
                }
            }
        }
    }
}

/// A named workload family: topology × shape × diffusivity × storm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regime {
    /// Catalog name — the `--scenario <name>` / wire `regime` value.
    pub name: &'static str,
    /// One-line description for docs and artifacts.
    pub summary: &'static str,
    /// Graph family.
    pub topology: Topology,
    /// Spread pattern.
    pub shape: Shape,
    /// Time modulation.
    pub diffusivity: Diffusivity,
    /// Whether deliveries are reordered in-hour and spiked with late
    /// echoes the server must reject.
    pub storm: bool,
    /// Forecast horizon in hours.
    pub horizon: u32,
}

/// Every named regime. Names are wire-visible (the `regime` label on
/// `dlm_cascades_opened_total`) — add, don't rename.
static CATALOG: [Regime; 6] = [
    Regime {
        name: "broadcast",
        summary: "hub blasts its direct audience on a scale-free graph; deeper hops stay quiet",
        topology: Topology::PreferentialAttachment {
            nodes: 600,
            edges_per_node: 4,
        },
        shape: Shape::Broadcast,
        diffusivity: Diffusivity::Constant,
        storm: false,
        horizon: 8,
    },
    Regime {
        name: "viral",
        summary: "hop-by-hop wave on a scale-free graph; the DL model's home turf",
        topology: Topology::PreferentialAttachment {
            nodes: 600,
            edges_per_node: 4,
        },
        shape: Shape::Viral,
        diffusivity: Diffusivity::Constant,
        storm: false,
        horizon: 8,
    },
    Regime {
        name: "bridged",
        summary: "small-world communities: near hops saturate, far hops ignite after a mid-horizon bridge",
        topology: Topology::WattsStrogatz {
            nodes: 500,
            k: 3,
            beta: 0.08,
        },
        shape: Shape::Bridged,
        diffusivity: Diffusivity::Constant,
        storm: false,
        horizon: 8,
    },
    Regime {
        name: "erdos-viral",
        summary: "viral wave on a hubless Erdos-Renyi graph — the null-topology control",
        topology: Topology::ErdosRenyi {
            nodes: 500,
            p: 0.012,
        },
        shape: Shape::Viral,
        diffusivity: Diffusivity::Constant,
        storm: false,
        horizon: 8,
    },
    Regime {
        name: "surge",
        summary: "viral shape with a mid-horizon diffusivity burst the observed hours never see",
        topology: Topology::PreferentialAttachment {
            nodes: 600,
            edges_per_node: 4,
        },
        shape: Shape::Viral,
        diffusivity: Diffusivity::Surge,
        storm: false,
        horizon: 8,
    },
    Regime {
        name: "storm",
        summary: "broadcast shape with in-hour reordering and late echoes the server must reject",
        topology: Topology::PreferentialAttachment {
            nodes: 600,
            edges_per_node: 4,
        },
        shape: Shape::Broadcast,
        diffusivity: Diffusivity::Constant,
        storm: true,
        horizon: 8,
    },
];

/// The full regime catalog, in stable order.
#[must_use]
pub fn catalog() -> &'static [Regime] {
    &CATALOG
}

/// Looks a regime up by its catalog name.
///
/// # Errors
///
/// [`ScenarioError::UnknownRegime`] when no regime carries `name`.
pub fn find_regime(name: &str) -> Result<&'static Regime> {
    CATALOG
        .iter()
        .find(|r| r.name == name)
        .ok_or_else(|| ScenarioError::UnknownRegime(name.to_owned()))
}

/// Folds a regime name into a 64-bit tag so distinct regimes at the
/// same seed get unrelated streams.
fn regime_tag(name: &str) -> u64 {
    name.bytes().fold(0x5343_454E_5F54_4147, |acc, b| {
        splitmix64_mix(acc ^ u64::from(b))
    })
}

impl Regime {
    /// The SplitMix64 base state every derived seed of `(self, seed)`
    /// comes from: position 0 seeds the graph, position `i + 1` seeds
    /// cascade `i`.
    #[must_use]
    pub fn stream_base(&self, seed: u64) -> u64 {
        splitmix64_mix(regime_tag(self.name) ^ splitmix64_mix(seed))
    }

    /// Generates the regime's graph for `seed`. Same `(regime, seed)`
    /// → byte-identical graph, independent of which cascades are ever
    /// drawn from it.
    ///
    /// # Errors
    ///
    /// Propagates generator parameter errors (a catalog bug).
    pub fn graph(&self, seed: u64) -> Result<DiGraph> {
        let graph_seed = splitmix64_at(self.stream_base(seed), 0);
        let graph = match self.topology {
            Topology::ErdosRenyi { nodes, p } => erdos_renyi(nodes, p, graph_seed)?,
            Topology::PreferentialAttachment {
                nodes,
                edges_per_node,
            } => preferential_attachment(
                PreferentialAttachmentConfig {
                    nodes,
                    edges_per_node,
                    reciprocation: 0.4,
                    triad_closure: 0.3,
                },
                graph_seed,
            )?,
            Topology::WattsStrogatz { nodes, k, beta } => {
                watts_strogatz(nodes, k, beta, graph_seed)?
            }
        };
        Ok(graph)
    }

    /// Generates cascade `index` of the `(self, seed)` stream — a pure
    /// function of its three arguments given the stream's graph (itself
    /// pure in `(self, seed)`). O(index) nowhere: any index is direct.
    ///
    /// # Errors
    ///
    /// Propagates hop-grouping failure for a graph with no usable
    /// initiator (catalog graphs always have one).
    pub fn cascade(&self, graph: &DiGraph, seed: u64, index: u64) -> Result<ScenarioCascade> {
        let mut rng =
            SmallRng::seed_from_u64(splitmix64_at(self.stream_base(seed), index.wrapping_add(1)));
        let initiator = self.pick_initiator(graph, &mut rng);
        let groups = hop_groups(graph, initiator, SCENARIO_MAX_HOPS)?;
        let submit = SIMULATED_SUBMIT_TIME;
        let mut voted = vec![false; graph.node_count()];
        let mut deliveries = Vec::with_capacity(self.horizon as usize);
        for h in 1..=self.horizon {
            let mut hour: Vec<(u64, usize)> = Vec::new();
            for (gi, group) in groups.iter().enumerate() {
                let d = gi as u32 + 1;
                let p = (self.shape.probability(d, h, self.horizon)
                    * self.diffusivity.factor(h, self.horizon))
                .clamp(0.0, 0.95);
                if p <= 0.0 {
                    continue;
                }
                for &u in group {
                    if !voted[u] && rng.gen::<f64>() < p {
                        voted[u] = true;
                        // Offsets stay strictly positive so no follower
                        // ever ties the initiator's own vote at the
                        // submission instant (the Digg fixture relies
                        // on that vote being uniquely first).
                        let ts = submit + u64::from(h - 1) * HOUR + 1 + rng.gen_range(0..HOUR - 1);
                        hour.push((ts, u));
                    }
                }
            }
            hour.sort_unstable();
            if self.storm {
                // Fisher–Yates: the wire sees the hour's votes in a
                // scrambled (but still fully deterministic) order.
                for i in (1..hour.len()).rev() {
                    hour.swap(i, rng.gen_range(0..i + 1));
                }
            }
            deliveries.push(Delivery {
                now: submit + u64::from(h) * HOUR,
                votes: hour,
                late: false,
            });
            if self.storm && rng.gen::<f64>() < 0.6 {
                // A late echo into an hour the delivery above closed.
                let j = rng.gen_range(1..h + 1);
                let ts = submit + u64::from(j - 1) * HOUR + rng.gen_range(0..HOUR);
                let mut gi = rng.gen_range(0..groups.len());
                while groups[gi].is_empty() {
                    gi = (gi + 1) % groups.len();
                }
                let voter = groups[gi][rng.gen_range(0..groups[gi].len())];
                deliveries.push(Delivery {
                    now: submit + u64::from(h) * HOUR,
                    votes: vec![(ts, voter)],
                    late: true,
                });
            }
        }
        Ok(ScenarioCascade {
            regime: self.name,
            index,
            initiator,
            submit_time: submit,
            horizon: self.horizon,
            deliveries,
        })
    }

    /// Chooses the cascade's initiator: broadcast regimes start at one
    /// of the graph's top hubs (that's what a broadcast *is*), other
    /// shapes at a uniformly drawn node with at least one follower.
    fn pick_initiator(&self, graph: &DiGraph, rng: &mut SmallRng) -> usize {
        let hubs = top_hubs(graph, 8);
        if matches!(self.shape, Shape::Broadcast) {
            return hubs[rng.gen_range(0..hubs.len())];
        }
        for _ in 0..16 {
            let u = rng.gen_range(0..graph.node_count());
            if graph.out_degree(u) > 0 {
                return u;
            }
        }
        hubs[0]
    }
}

/// The `k` nodes with the highest out-degree (most followers), ties to
/// the lowest id — a single O(n·k) pass, no allocation beyond the
/// result.
fn top_hubs(graph: &DiGraph, k: usize) -> Vec<usize> {
    let mut hubs: Vec<usize> = Vec::with_capacity(k);
    for u in 0..graph.node_count() {
        let d = graph.out_degree(u);
        let pos = hubs
            .iter()
            .position(|&h| graph.out_degree(h) < d)
            .unwrap_or(hubs.len());
        if pos < k {
            hubs.insert(pos, u);
            hubs.truncate(k);
        }
    }
    hubs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_findable() {
        for r in catalog() {
            assert!(std::ptr::eq(find_regime(r.name).unwrap(), r));
        }
        let mut names: Vec<&str> = catalog().iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), catalog().len());
        assert!(find_regime("no-such-regime").is_err());
    }

    #[test]
    fn cascade_is_pure_in_regime_seed_index() {
        for r in catalog() {
            let graph = r.graph(11).unwrap();
            let a = r.cascade(&graph, 11, 5).unwrap();
            let b = r.cascade(&graph, 11, 5).unwrap();
            assert_eq!(a.canonical_bytes(), b.canonical_bytes(), "{}", r.name);
            let other_index = r.cascade(&graph, 11, 6).unwrap();
            assert_ne!(a.canonical_bytes(), other_index.canonical_bytes());
            let other_seed_graph = r.graph(12).unwrap();
            let other_seed = r.cascade(&other_seed_graph, 12, 5).unwrap();
            assert_ne!(a.canonical_bytes(), other_seed.canonical_bytes());
        }
    }

    #[test]
    fn regimes_at_one_seed_have_unrelated_streams() {
        let broadcast = find_regime("broadcast").unwrap();
        let viral = find_regime("viral").unwrap();
        assert_ne!(broadcast.stream_base(7), viral.stream_base(7));
    }

    #[test]
    fn every_regime_produces_votes_and_valid_hours() {
        for r in catalog() {
            let graph = r.graph(3).unwrap();
            let c = r.cascade(&graph, 3, 0).unwrap();
            let accepted = c.accepted_votes();
            assert!(
                accepted.len() >= 8,
                "{} produced only {} votes",
                r.name,
                accepted.len()
            );
            // No duplicate voters, nobody votes before submission or
            // past the horizon, and the initiator never votes.
            let mut voters: Vec<usize> = accepted.iter().map(|&(_, u)| u).collect();
            voters.sort_unstable();
            let n = voters.len();
            voters.dedup();
            assert_eq!(voters.len(), n, "{}", r.name);
            let end = c.submit_time + u64::from(c.horizon) * HOUR;
            for &(ts, u) in &accepted {
                assert!(ts >= c.submit_time && ts < end);
                assert_ne!(u, c.initiator);
            }
        }
    }

    #[test]
    fn only_storm_regimes_emit_late_deliveries() {
        for r in catalog() {
            let graph = r.graph(5).unwrap();
            let mut late_total = 0;
            for i in 0..8 {
                let c = r.cascade(&graph, 5, i).unwrap();
                late_total += c.late_deliveries();
                for d in c.deliveries.iter().filter(|d| d.late) {
                    assert_eq!(d.votes.len(), 1, "late echoes ride alone");
                }
            }
            if r.storm {
                assert!(late_total > 0, "{} never stormed", r.name);
            } else {
                assert_eq!(late_total, 0, "{}", r.name);
            }
        }
    }

    #[test]
    fn broadcast_concentrates_at_hop_one_and_viral_reaches_deeper() {
        let count_by_depth = |name: &str| -> (usize, usize) {
            let r = find_regime(name).unwrap();
            let graph = r.graph(9).unwrap();
            let mut near = 0;
            let mut far = 0;
            for i in 0..6 {
                let c = r.cascade(&graph, 9, i).unwrap();
                let groups = hop_groups(&graph, c.initiator, SCENARIO_MAX_HOPS).unwrap();
                for (ts, u) in c.accepted_votes() {
                    let _ = ts;
                    match groups.iter().position(|g| g.contains(&u)) {
                        Some(0) => near += 1,
                        Some(_) => far += 1,
                        None => panic!("voter outside hop groups"),
                    }
                }
            }
            (near, far)
        };
        let (b_near, b_far) = count_by_depth("broadcast");
        let (v_near, v_far) = count_by_depth("viral");
        assert!(b_near > 10 * b_far.max(1), "broadcast: {b_near} vs {b_far}");
        assert!(v_far > b_far, "viral depth {v_far} <= broadcast {b_far}");
        assert!(v_near > 0);
    }
}
