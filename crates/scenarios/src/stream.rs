//! Streaming and batch generation over a regime.

use std::sync::Arc;

use dlm_graph::DiGraph;
use dlm_numerics::pool::{parallel_map, Parallelism};

use crate::cascade::ScenarioCascade;
use crate::regime::Regime;
use crate::Result;

/// An unbounded, seeded iterator over one regime's cascades.
///
/// The iterator is a convenience cursor — element `i` is exactly
/// `regime.cascade(&graph, seed, i)`, so consuming a prefix here and
/// re-deriving any index directly (or via [`generate_batch`] on
/// another machine) yields byte-identical cascades.
pub struct ScenarioStream {
    regime: &'static Regime,
    graph: Arc<DiGraph>,
    seed: u64,
    next: u64,
}

impl ScenarioStream {
    /// Opens the `(regime, seed)` stream at index 0, generating the
    /// regime's graph once up front.
    ///
    /// # Errors
    ///
    /// Propagates graph generation errors.
    pub fn new(regime: &'static Regime, seed: u64) -> Result<Self> {
        Ok(Self {
            regime,
            graph: Arc::new(regime.graph(seed)?),
            seed,
            next: 0,
        })
    }

    /// The graph every cascade of this stream spreads over.
    #[must_use]
    pub fn graph(&self) -> &Arc<DiGraph> {
        &self.graph
    }

    /// The regime this stream draws from.
    #[must_use]
    pub fn regime(&self) -> &'static Regime {
        self.regime
    }

    /// Index the next `next()` call will produce.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.next
    }
}

impl Iterator for ScenarioStream {
    type Item = ScenarioCascade;

    fn next(&mut self) -> Option<ScenarioCascade> {
        let index = self.next;
        self.next += 1;
        Some(
            self.regime
                .cascade(&self.graph, self.seed, index)
                .expect("catalog regime generated an unusable graph"),
        )
    }
}

/// Generates `count` cascades of the `(regime, seed)` stream starting
/// at `start`, fanned across the given [`Parallelism`]. Because each
/// index is generated from its own derived seed, `Serial`, `Fixed(n)`,
/// and `Auto` all produce byte-identical output — the property the
/// determinism proptests pin.
///
/// # Errors
///
/// Propagates graph generation errors; per-index generation inside the
/// pool panics only on catalog bugs.
pub fn generate_batch(
    regime: &'static Regime,
    seed: u64,
    start: u64,
    count: usize,
    parallelism: Parallelism,
) -> Result<Vec<ScenarioCascade>> {
    let graph = Arc::new(regime.graph(seed)?);
    let indices: Vec<u64> = (0..count as u64).map(|i| start + i).collect();
    Ok(parallel_map(parallelism, &indices, |_, &index| {
        regime
            .cascade(&graph, seed, index)
            .expect("catalog regime generated an unusable graph")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regime::find_regime;

    #[test]
    fn stream_prefix_equals_random_access_and_batch() {
        let regime = find_regime("viral").unwrap();
        let streamed: Vec<ScenarioCascade> =
            ScenarioStream::new(regime, 4).unwrap().take(6).collect();
        let batched = generate_batch(regime, 4, 0, 6, Parallelism::Serial).unwrap();
        assert_eq!(streamed, batched);
        // A slice re-derived out of context matches the stream at the
        // same offsets.
        let slice = generate_batch(regime, 4, 3, 2, Parallelism::Serial).unwrap();
        assert_eq!(&streamed[3..5], &slice[..]);
        let graph = regime.graph(4).unwrap();
        assert_eq!(regime.cascade(&graph, 4, 5).unwrap(), streamed[5]);
    }

    #[test]
    fn stream_reports_position() {
        let regime = find_regime("broadcast").unwrap();
        let mut s = ScenarioStream::new(regime, 1).unwrap();
        assert_eq!(s.position(), 0);
        let first = s.next().unwrap();
        assert_eq!(first.index, 0);
        assert_eq!(s.position(), 1);
    }
}
