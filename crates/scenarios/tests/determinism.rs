//! The factory's determinism contract, pinned property-wise:
//!
//! 1. any slice of any regime stream regenerates byte-identically, no
//!    matter which [`Parallelism`] fans the generation out;
//! 2. how a cascade's accepted vote stream is regrouped into ingest
//!    batches never changes the server's snapshot bytes;
//! 3. storm schedules are rejected/accepted by a live server exactly
//!    as the pure [`ScenarioCascade::accepted_votes`] classifier says,
//!    and the surviving state matches the offline batch builder bit
//!    for bit.
//!
//! These are the invariants the `serve_load --scenario` soak gates
//! lean on; here they get adversarial inputs instead of one seed.

use dlm_cascade::hops::hop_density_matrix;
use dlm_data::Cascade;
use dlm_numerics::pool::Parallelism;
use dlm_scenarios::{
    catalog, find_regime, generate_batch, Regime, ScenarioCascade, ScenarioStream,
    SCENARIO_MAX_HOPS,
};
use dlm_serve::{Json, ServeConfig, ServerState};
use proptest::prelude::*;
use std::sync::Arc;

fn any_regime() -> impl Strategy<Value = &'static Regime> {
    (0usize..catalog().len()).prop_map(|i| &catalog()[i])
}

/// A server core ready to replay one cascade over `graph` — lazy fits
/// (these tests never forecast, so no model work should run at all).
fn server_for(graph: &Arc<dlm_graph::DiGraph>) -> ServerState {
    let config = ServeConfig {
        prewarm: false,
        ..ServeConfig::default()
    };
    ServerState::with_graph(config, Arc::clone(graph)).expect("default lineup builds")
}

fn open_line(cascade: &ScenarioCascade) -> String {
    format!(
        r#"{{"type":"open","cascade":"c","initiator":{},"max_hops":{SCENARIO_MAX_HOPS},"horizon":{},"submit_time":{}}}"#,
        cascade.initiator, cascade.horizon, cascade.submit_time
    )
}

fn ingest_line(votes: &[(u64, usize)], now: Option<u64>) -> String {
    let votes: Vec<String> = votes
        .iter()
        .map(|&(ts, voter)| format!("[{ts},{voter}]"))
        .collect();
    match now {
        Some(now) => format!(
            r#"{{"type":"ingest","cascade":"c","votes":[{}],"now":{now}}}"#,
            votes.join(",")
        ),
        None => format!(
            r#"{{"type":"ingest","cascade":"c","votes":[{}]}}"#,
            votes.join(",")
        ),
    }
}

fn response_ok(line: &str) -> bool {
    Json::parse(line)
        .expect("server responses are JSON")
        .get("ok")
        .and_then(Json::as_bool)
        .expect("server responses carry `ok`")
}

/// Replays `chunks` of one cascade's accepted votes into a fresh server
/// (no per-chunk clocks — hours close from the votes themselves), then
/// advances to the end of the horizon and returns the full `snapshot`
/// response line.
fn snapshot_after(
    graph: &Arc<dlm_graph::DiGraph>,
    cascade: &ScenarioCascade,
    chunks: &[&[(u64, usize)]],
) -> String {
    let state = server_for(graph);
    assert!(response_ok(&state.handle_line(&open_line(cascade))));
    for chunk in chunks {
        assert!(
            response_ok(&state.handle_line(&ingest_line(chunk, None))),
            "a clean, ordered chunk was rejected"
        );
    }
    let end = cascade.submit_time + u64::from(cascade.horizon) * 3600;
    assert!(response_ok(
        &state.handle_line(&ingest_line(&[], Some(end)))
    ));
    state.handle_line(r#"{"type":"snapshot","cascade":"c"}"#)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Contract 1: `Serial`, `Fixed(n)`, and a streamed prefix all
    /// produce the same bytes for the same `(regime, seed, index)`
    /// coordinates — a slice can be re-derived anywhere, any way.
    #[test]
    fn slices_regenerate_identically_across_parallelism(
        regime in any_regime(),
        seed in 0u64..1_000_000,
        start in 0u64..40,
        count in 1usize..5,
        threads in 2usize..5,
    ) {
        let serial = generate_batch(regime, seed, start, count, Parallelism::Serial).unwrap();
        let fanned = generate_batch(regime, seed, start, count, Parallelism::Fixed(threads)).unwrap();
        prop_assert_eq!(serial.len(), fanned.len());
        for (s, f) in serial.iter().zip(&fanned) {
            prop_assert_eq!(s.canonical_bytes(), f.canonical_bytes());
        }
        let streamed: Vec<ScenarioCascade> = ScenarioStream::new(regime, seed)
            .unwrap()
            .skip(start as usize)
            .take(count)
            .collect();
        for (s, st) in serial.iter().zip(&streamed) {
            prop_assert_eq!(s.canonical_bytes(), st.canonical_bytes());
            prop_assert_eq!(s.index, st.index);
        }
    }

    /// Contract 2: the chunk boundaries a client happens to pick for
    /// its ingest batches are invisible — any regrouping of any prefix
    /// of the accepted vote stream leaves the server's snapshot bytes
    /// identical to the single-batch replay of that prefix.
    #[test]
    fn ingest_regrouping_never_changes_snapshot_bytes(
        regime in any_regime(),
        seed in 0u64..1_000_000,
        index in 0u64..30,
        prefix in 0usize..500,
        cuts in prop::collection::vec(0usize..500, 0..6),
    ) {
        let stream = ScenarioStream::new(regime, seed).unwrap();
        let graph = Arc::clone(stream.graph());
        let cascade = regime.cascade(&graph, seed, index).unwrap();

        let votes = cascade.accepted_votes();
        let votes = &votes[..prefix % (votes.len() + 1)];

        // Arbitrary, order-preserving chunk boundaries over the prefix.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (votes.len() + 1)).collect();
        bounds.push(0);
        bounds.push(votes.len());
        bounds.sort_unstable();
        bounds.dedup();
        let chunks: Vec<&[(u64, usize)]> = bounds
            .windows(2)
            .map(|w| &votes[w[0]..w[1]])
            .collect();

        let one_shot = snapshot_after(&graph, &cascade, &[votes]);
        let regrouped = snapshot_after(&graph, &cascade, &chunks);
        prop_assert!(response_ok(&one_shot));
        prop_assert_eq!(one_shot, regrouped);
    }

    /// Contract 3: replaying a storm schedule delivery-by-delivery, the
    /// server rejects exactly the deliveries the schedule marks late,
    /// and what it counted is bit-identical to the batch builder fed
    /// the pure classifier's accepted votes.
    #[test]
    fn storm_rejections_match_the_batch_classifier(
        seed in 0u64..1_000_000,
        index in 0u64..30,
    ) {
        let regime = find_regime("storm").unwrap();
        let graph = Arc::new(regime.graph(seed).unwrap());
        let cascade = regime.cascade(&graph, seed, index).unwrap();

        let state = server_for(&graph);
        prop_assert!(response_ok(&state.handle_line(&open_line(&cascade))));
        for (i, delivery) in cascade.deliveries.iter().enumerate() {
            let ok = response_ok(
                &state.handle_line(&ingest_line(&delivery.votes, Some(delivery.now))),
            );
            prop_assert_eq!(
                ok,
                !delivery.late,
                "delivery {} (late={}) answered {}",
                i,
                delivery.late,
                ok
            );
        }

        // What survived must be exactly the classifier's accepted set:
        // decode the server's own snapshot and compare densities bit
        // for bit against the offline pipeline on `accepted_votes`.
        let response = state.handle_line(r#"{"type":"snapshot","cascade":"c"}"#);
        let hex = Json::parse(&response)
            .expect("snapshot response is JSON")
            .get("snapshot")
            .and_then(Json::as_str)
            .expect("snapshot response carries hex bytes")
            .to_owned();
        let snap = dlm_cluster::CascadeSnapshot::decode_hex(&hex).unwrap();
        let live = dlm_serve::LiveCascade::from_snapshot(&snap).unwrap();
        prop_assert_eq!(live.closed_hours(), cascade.horizon);

        let offline = Cascade::from_parts(
            1,
            cascade.initiator,
            cascade.submit_time,
            cascade.accepted_as_votes(1),
        )
        .unwrap();
        let batch =
            hop_density_matrix(&graph, &offline, SCENARIO_MAX_HOPS, cascade.horizon).unwrap();
        let served = live.matrix().unwrap();
        prop_assert_eq!(served.max_distance(), batch.max_distance());
        for d in 1..=batch.max_distance() {
            for h in 1..=cascade.horizon {
                prop_assert_eq!(
                    served.at(d, h).unwrap().to_bits(),
                    batch.at(d, h).unwrap().to_bits(),
                    "d={} h={}",
                    d,
                    h
                );
            }
        }
    }
}
