//! The standalone `dlm-serve` binary: a synthetic world behind a
//! JSON-lines-over-TCP forecasting service.
//!
//! ```text
//! dlm-serve [--addr 127.0.0.1:7878] [--scale 0.15] [--capacity 1024]
//!           [--cascades 4096] [--cascade-ttl SECS] [--workers N]
//!           [--no-prewarm] [--quick-lineup] [--starts N]
//!           [--snapshot-dir DIR] [--front reactor|legacy] [--io-threads N]
//!           [--announce ROUTER_ADDR] [--log-level error|warn|info|debug]
//! ```
//!
//! Prints one `READY {"addr":...,"version":...}` line carrying the
//! bound address plus a one-line config summary (front end, workers,
//! snapshot dir) once the socket is bound (the load generator and
//! scripts wait for it), then serves until killed.

use dlm_core::evaluate::Parallelism;
use dlm_core::registry::ModelSpec;
use dlm_data::{SyntheticWorld, WorldConfig};
use dlm_serve::server::{DlmServer, FrontEnd, ServeConfig, ServerState};

fn usage() -> ! {
    eprintln!(
        "usage: dlm-serve [--addr HOST:PORT] [--scale F] [--capacity N] [--cascades N] \
         [--cascade-ttl SECS] [--workers N] [--no-prewarm] [--quick-lineup] [--starts N] \
         [--snapshot-dir DIR] [--front reactor|legacy] [--io-threads N] \
         [--announce ROUTER_ADDR] [--log-level error|warn|info|debug]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_owned();
    let mut scale = 0.15f64;
    let mut starts = 1usize;
    let mut io_threads = 0usize;
    let mut legacy_front = false;
    let mut announce: Option<String> = None;
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--scale" => {
                scale = value("--scale").parse().unwrap_or_else(|_| usage());
            }
            "--capacity" => {
                config.cache_capacity = value("--capacity").parse().unwrap_or_else(|_| usage());
            }
            "--cascades" => {
                config.cascade_capacity = value("--cascades").parse().unwrap_or_else(|_| usage());
            }
            "--cascade-ttl" => {
                let secs: u64 = value("--cascade-ttl").parse().unwrap_or_else(|_| usage());
                config.cascade_ttl = Some(std::time::Duration::from_secs(secs));
            }
            "--workers" => {
                config.parallelism =
                    Parallelism::Fixed(value("--workers").parse().unwrap_or_else(|_| usage()));
            }
            "--no-prewarm" => config.prewarm = false,
            "--snapshot-dir" => {
                // Persist every cascade mutation and replay on restart;
                // see ServeConfig::snapshot_dir.
                config.snapshot_dir = Some(value("--snapshot-dir").into());
            }
            "--starts" => {
                starts = value("--starts").parse().unwrap_or_else(|_| usage());
            }
            "--front" => match value("--front").as_str() {
                // The nonblocking readiness reactor (default) vs the
                // original thread-per-connection loop, kept for
                // comparison runs (`serve_load --compare-fronts`).
                "reactor" => legacy_front = false,
                "legacy" => legacy_front = true,
                _ => usage(),
            },
            "--io-threads" => {
                // Reactor I/O worker count; 0 = one per available core
                // (clamped). Ignored by the legacy front end.
                io_threads = value("--io-threads").parse().unwrap_or_else(|_| usage());
            }
            "--announce" => {
                // Announce this backend to a dlm-router after binding:
                // one `rejoin` admin line, so a restarted node is
                // re-admitted without waiting for an operator `join`.
                announce = Some(value("--announce"));
            }
            "--log-level" => {
                // Structured-log threshold on stderr; default warn, so
                // a quiet server emits nothing.
                let level: dlm_obs::Level =
                    value("--log-level").parse().unwrap_or_else(|e: String| {
                        eprintln!("{e}");
                        usage()
                    });
                dlm_obs::set_level(level);
            }
            "--quick-lineup" => {
                // The cheap half of the zoo — for latency-focused runs.
                config.lineup = vec![
                    ModelSpec::paper_hops_dl(),
                    ModelSpec::LogisticOnly {
                        capacity: 25.0,
                        growth: dlm_core::predict::GrowthFamily::PaperHops,
                    },
                    ModelSpec::Naive,
                    ModelSpec::LinearTrend,
                ];
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }

    if starts > 1 {
        // Upgrade the calibrating lineup entries to multi-start (see
        // docs/CALIBRATION.md): the refit scheduler fans one fit job
        // per model, and each calibrating fit searches `starts` seeds.
        config.lineup = config
            .lineup
            .into_iter()
            .map(|spec| spec.with_multi_start(starts, 0))
            .collect();
    }

    eprintln!("generating synthetic world (scale {scale})...");
    let world =
        SyntheticWorld::generate(WorldConfig::default().scaled(scale)).expect("world generation");
    let config_snapshot_dir = config.snapshot_dir.clone();
    let state = ServerState::with_world(config, world).expect("server construction");
    let lineup = state.lineup();
    let front = if legacy_front {
        FrontEnd::ThreadPerConnection
    } else {
        FrontEnd::Reactor { io_threads }
    };
    let snapshot_dir = config_snapshot_dir.clone();
    let (front_name, workers) = match front {
        FrontEnd::Reactor { io_threads: 0 } => ("reactor", "auto".to_owned()),
        FrontEnd::Reactor { io_threads } => ("reactor", io_threads.to_string()),
        FrontEnd::ThreadPerConnection => ("legacy", "per-conn".to_owned()),
    };
    let server =
        DlmServer::bind_with(addr.as_str(), std::sync::Arc::new(state), front).expect("bind");
    println!(
        "READY {{\"addr\":\"{}\",\"models\":{},\"version\":\"{}\",\"front\":\"{front_name}\",\
         \"workers\":\"{workers}\",\"snapshot_dir\":\"{}\"}}",
        server.local_addr(),
        lineup.len(),
        env!("CARGO_PKG_VERSION"),
        snapshot_dir
            .as_deref()
            .map_or_else(|| "-".to_owned(), |p| p.display().to_string()),
    );
    eprintln!(
        "dlm-serve {} serving {} models on {} (front={front_name} workers={workers}); \
         Ctrl-C to stop",
        env!("CARGO_PKG_VERSION"),
        lineup.len(),
        server.local_addr()
    );
    if let Some(router) = announce {
        // Best-effort: a router that is down right now will still admit
        // this node when an operator issues `join`/`rejoin` later.
        let line = format!(
            "{{\"type\":\"rejoin\",\"backend\":\"{}\"}}",
            server.local_addr()
        );
        match dlm_serve::client::LineClient::connect_timeout(
            router.as_str(),
            std::time::Duration::from_secs(2),
        )
        .and_then(|mut client| client.send_ok(&line))
        {
            Ok(_) => eprintln!("announced {} to router {router}", server.local_addr()),
            Err(e) => eprintln!("announce to router {router} failed: {e}"),
        }
    }
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}
