//! A minimal blocking client for the JSON-lines protocol.
//!
//! One writer + one buffered reader over a single TCP connection, one
//! request line out, one response line back. This is the client the
//! load generator, the integration tests, and the examples all share —
//! a framing change lives in exactly one place.

use crate::error::{Result, ServeError};
use crate::json::Json;
use crate::wire::{self, Transport};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client.
///
/// ```no_run
/// use dlm_serve::LineClient;
///
/// # fn main() -> dlm_serve::Result<()> {
/// // Works against a `dlm-serve` backend or a `dlm-router` tier —
/// // both ends speak the same protocol (docs/PROTOCOL.md).
/// let mut client = LineClient::connect("127.0.0.1:7878")?;
/// let open = client.send_ok(r#"{"type":"open","cascade":"c1","story":1,"horizon":24}"#)?;
/// assert_eq!(open.get("cascade").and_then(|v| v.as_str()), Some("c1"));
/// let stats = client.send_ok(r#"{"type":"stats"}"#)?;
/// println!("cache counters: {}", stats.get("cache").unwrap());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    transport: Transport,
}

impl LineClient {
    /// Connects to a running server (`TCP_NODELAY` enabled — the
    /// protocol is strictly request/response, so coalescing only adds
    /// latency).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// Like [`LineClient::connect`], but bounds the TCP dial itself.
    /// A blackholed endpoint (dropped SYNs, no RST) fails after
    /// `timeout` instead of pinning the caller for the OS connect
    /// timeout (minutes on most systems) — this is what lets a routing
    /// tier degrade a dead backend's shard instead of hanging a handler
    /// thread (see `docs/PROTOCOL.md` §5).
    ///
    /// When `addr` resolves to several endpoints, each is tried in
    /// order with the full `timeout`.
    ///
    /// # Errors
    ///
    /// Propagates resolution and socket errors; a timeout surfaces as
    /// the OS's `TimedOut`/`WouldBlock` I/O error. `timeout` must be
    /// nonzero — [`std::net::TcpStream::connect_timeout`] rejects a
    /// zero duration (use [`LineClient::connect`] for an untimed
    /// dial).
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self> {
        let mut last_err: Option<std::io::Error> = None;
        for endpoint in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&endpoint, timeout) {
                Ok(stream) => return Self::from_stream(stream),
                Err(e) => last_err = Some(e),
            }
        }
        Err(ServeError::Io(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no endpoints",
            )
        })))
    }

    fn from_stream(writer: TcpStream) -> Result<Self> {
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            reader,
            writer,
            transport: Transport::Lines,
        })
    }

    /// The framing this connection currently speaks.
    #[must_use]
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Negotiates the connection onto `transport` with a `hello`
    /// exchange (`docs/PROTOCOL.md` §2-bis). Requesting the framing
    /// already in effect is a no-op beyond the handshake line.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`ServeError::Protocol`] when the server rejects
    /// or garbles the negotiation — the connection is then left in its
    /// previous framing.
    pub fn negotiate(&mut self, transport: Transport) -> Result<()> {
        if self.transport == transport {
            return Ok(());
        }
        if self.transport == Transport::Binary {
            return Err(ServeError::Protocol(
                "a binary connection cannot negotiate back to lines".into(),
            ));
        }
        let response = self.send(&wire::hello_line(transport))?;
        let confirmed = response.get("ok").and_then(Json::as_bool) == Some(true)
            && response.get("transport").and_then(Json::as_str) == Some(transport.wire_name());
        if !confirmed {
            return Err(ServeError::Protocol(format!(
                "transport negotiation rejected: {response}"
            )));
        }
        self.transport = transport;
        Ok(())
    }

    /// Sends one `ingest` in the connection's cheapest encoding: the
    /// compact binary payload on a negotiated binary connection, the
    /// canonical JSON line otherwise. Responses are identical either
    /// way — the server expands the binary form onto the same handling
    /// path.
    ///
    /// # Errors
    ///
    /// Same as [`LineClient::send`].
    pub fn send_ingest(
        &mut self,
        cascade: &str,
        votes: &[(u64, usize)],
        now: Option<u64>,
    ) -> Result<Json> {
        let raw = match self.transport {
            Transport::Binary => {
                let payload = wire::encode_ingest_payload(cascade, votes, now);
                self.round_trip_frame(&payload)?
            }
            Transport::Lines => {
                let line = crate::protocol::Request::Ingest {
                    cascade: cascade.to_owned(),
                    votes: votes.to_vec(),
                    now,
                }
                .to_json()
                .to_string();
                self.send_raw(&line)?
            }
        };
        Json::parse(&raw).map_err(|e| ServeError::Protocol(format!("bad response `{raw}`: {e}")))
    }

    /// One framed round trip: request payload out, response text back.
    fn round_trip_frame(&mut self, payload: &[u8]) -> Result<String> {
        self.writer.write_all(&wire::encode_frame(payload))?;
        self.writer.flush()?;
        let response = wire::read_frame(&mut self.reader)?.ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a response frame",
            ))
        })?;
        String::from_utf8(response)
            .map_err(|_| ServeError::Protocol("response frame is not UTF-8".into()))
    }

    /// Sends one request line and returns the raw response line
    /// (without the trailing newline).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on socket failure or a connection closed
    /// before a full response line arrived.
    pub fn send_raw(&mut self, line: &str) -> Result<String> {
        if self.transport == Transport::Binary {
            // On a negotiated binary connection the same request text
            // rides a tagged frame; the response text is identical.
            return self.round_trip_frame(&wire::encode_json_payload(line));
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 || !response.ends_with('\n') {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a full response line",
            )));
        }
        Ok(response.trim_end().to_owned())
    }

    /// Sends one request line and parses the response. The response is
    /// returned whether or not it carries `"ok": true` — use
    /// [`LineClient::send_ok`] to also enforce success.
    ///
    /// # Errors
    ///
    /// I/O errors from [`LineClient::send_raw`];
    /// [`ServeError::Protocol`] when the response is not valid JSON.
    pub fn send(&mut self, line: &str) -> Result<Json> {
        let raw = self.send_raw(line)?;
        Json::parse(&raw).map_err(|e| ServeError::Protocol(format!("bad response `{raw}`: {e}")))
    }

    /// Like [`LineClient::send`], but turns an `"ok": false` response
    /// into its `error` message.
    ///
    /// # Errors
    ///
    /// Everything [`LineClient::send`] returns, plus
    /// [`ServeError::Protocol`] carrying the server's error message for
    /// rejected requests.
    pub fn send_ok(&mut self, line: &str) -> Result<Json> {
        let response = self.send(line)?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            let message = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("request failed without an error message");
            Err(ServeError::Protocol(message.to_owned()))
        }
    }
}
