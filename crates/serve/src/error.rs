//! Error type for the serving layer.

use std::fmt;

/// Result alias for `dlm-serve`.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Everything that can go wrong while ingesting or serving forecasts.
#[derive(Debug)]
pub enum ServeError {
    /// A structurally invalid argument (empty groups, zero horizon, ...).
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// A vote arrived for an hour that has already been closed and
    /// served — accepting it would silently change published forecasts.
    LateVote {
        /// The hour the vote belongs to (1-based).
        hour: u32,
        /// Hours `1..=closed` are already closed.
        closed: u32,
    },
    /// A query referenced an hour that is not closed yet (or zero).
    HourNotClosed {
        /// The requested hour.
        hour: u32,
        /// Hours `1..=closed` are closed.
        closed: u32,
    },
    /// An unknown cascade id.
    UnknownCascade(String),
    /// A cascade id was opened twice.
    DuplicateCascade(String),
    /// A protocol-level problem: unparseable request, missing field,
    /// wrong type.
    Protocol(String),
    /// An underlying cluster-layer error (snapshot codec, ring,
    /// membership).
    Cluster(dlm_cluster::ClusterError),
    /// An underlying cascade-analytics error.
    Cascade(dlm_cascade::CascadeError),
    /// An underlying model-layer error.
    Model(dlm_core::DlError),
    /// An underlying dataset error.
    Data(dlm_data::DataError),
    /// An I/O error from the TCP front end.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Self::LateVote { hour, closed } => write!(
                f,
                "late vote for hour {hour}: hours 1..={closed} are already closed"
            ),
            Self::HourNotClosed { hour, closed } => write!(
                f,
                "hour {hour} is not closed yet (closed hours: 1..={closed})"
            ),
            Self::UnknownCascade(id) => write!(f, "unknown cascade `{id}`"),
            Self::DuplicateCascade(id) => write!(f, "cascade `{id}` is already open"),
            Self::Protocol(reason) => write!(f, "protocol error: {reason}"),
            Self::Cluster(e) => write!(f, "cluster error: {e}"),
            Self::Cascade(e) => write!(f, "cascade error: {e}"),
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::Data(e) => write!(f, "data error: {e}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Cluster(e) => Some(e),
            Self::Cascade(e) => Some(e),
            Self::Model(e) => Some(e),
            Self::Data(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dlm_cluster::ClusterError> for ServeError {
    fn from(e: dlm_cluster::ClusterError) -> Self {
        Self::Cluster(e)
    }
}

impl From<dlm_cascade::CascadeError> for ServeError {
    fn from(e: dlm_cascade::CascadeError) -> Self {
        Self::Cascade(e)
    }
}

impl From<dlm_core::DlError> for ServeError {
    fn from(e: dlm_core::DlError) -> Self {
        Self::Model(e)
    }
}

impl From<dlm_data::DataError> for ServeError {
    fn from(e: dlm_data::DataError) -> Self {
        Self::Data(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}
