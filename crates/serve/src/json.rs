//! A minimal JSON value type with a hand-rolled parser and serializer.
//!
//! The build environment is fully offline and the vendored `serde` shim
//! has no JSON backend, so the wire format is implemented here: exactly
//! the subset of JSON the `dlm-serve` protocol needs, with two
//! guarantees the protocol relies on:
//!
//! * **Round-trip-exact floats** — numbers are serialized with Rust's
//!   shortest-round-trip `Display` for `f64`, so a density that crosses
//!   the wire parses back to the identical bit pattern. This is what
//!   makes "the served forecast is byte-identical to the offline
//!   pipeline" a testable claim across a TCP boundary.
//! * **Order-preserving objects** — objects keep insertion order
//!   (`Vec<(String, Json)>`, not a map), so a response serializes
//!   identically every time and byte-level comparison of two responses
//!   is meaningful.
//!
//! Non-finite numbers have no JSON representation; they serialize as
//! `null` (and predictors never emit them in valid responses).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Self::Str(s.into())
    }

    /// Builds a number value.
    #[must_use]
    pub fn num(n: f64) -> Self {
        Self::Num(n)
    }

    /// Builds an array of numbers.
    #[must_use]
    pub fn nums(values: &[f64]) -> Self {
        Self::Arr(values.iter().map(|&v| Self::Num(v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Null => write!(f, "null"),
            Self::Bool(b) => write!(f, "{b}"),
            Self::Num(n) if n.is_finite() => write!(f, "{n}"),
            Self::Num(_) => write!(f, "null"),
            Self::Str(s) => write_escaped(f, s),
            Self::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Self::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for ch in s.chars() {
        match ch {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {pos}",
            char::from(byte),
            pos = *pos
        ))
    }
}

/// Nesting bound for [`parse_value`]: far deeper than any legitimate
/// protocol message, shallow enough that hostile input (one line of
/// `[[[[...`) errors out instead of overflowing the handler's stack.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    text.parse::<f64>()
        .ok()
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        // Decode one scalar at a time from at most 4 bytes — validating
        // the whole remaining input per character would make parsing a
        // long string quadratic.
        let rest = &bytes[*pos..(*pos + 4).min(bytes.len())];
        if rest.is_empty() {
            return Err("unterminated string".to_string());
        }
        let ch = match std::str::from_utf8(rest) {
            Ok(s) => s.chars().next().expect("nonempty"),
            // A trailing multi-byte scalar can be cut off by the 4-byte
            // window only at the very end of the input; from_utf8_lossy
            // semantics are wrong here, so inspect the error.
            Err(e) if e.valid_up_to() > 0 => std::str::from_utf8(&rest[..e.valid_up_to()])
                .expect("validated prefix")
                .chars()
                .next()
                .expect("nonempty prefix"),
            Err(_) => return Err("invalid UTF-8".to_string()),
        };
        *pos += ch.len_utf8();
        match ch {
            '"' => return Ok(out),
            '\\' => {
                let esc = bytes
                    .get(*pos)
                    .copied()
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogates are not paired; the protocol never
                        // emits them (escapes only cover control chars).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", char::from(other))),
                }
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-1.5", "42", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
            1e-300,
            6.02e23,
            -0.0,
            123_456_789.123_456,
        ] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text}");
        }
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let text = r#"{"b": [1, 2, {"x": null}], "a": "y\n\"z\"", "c": true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.to_string(),
            "{\"b\":[1,2,{\"x\":null}],\"a\":\"y\\n\\\"z\\\"\",\"c\":true}"
        );
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_str(), Some("y\n\"z\""));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("missing").is_none());
        // Reparsing the serialized form is stable.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn u64_extraction_guards_type_and_range() {
        assert_eq!(
            Json::parse("1244000000").unwrap().as_u64(),
            Some(1244000000)
        );
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn syntax_errors_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} extra",
            "nan",
            "[1 2]",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn hostile_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(200_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // The bound itself is permissive: 100 levels still parse.
        let fine = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&fine).is_ok());
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        let body = "é".repeat(1 << 19); // multi-byte scalars included
        let text = format!("\"{body}\"");
        let start = std::time::Instant::now();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.as_str(), Some(body.as_str()));
        // Quadratic re-validation would take minutes here.
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "string parsing is not linear"
        );
    }

    #[test]
    fn unicode_and_escapes_parse() {
        let v = Json::parse(r#""café ✓/\/""#).unwrap();
        assert_eq!(v.as_str(), Some("café ✓//"));
    }
}
