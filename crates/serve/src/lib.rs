//! # dlm-serve
//!
//! Online forecasting for the diffusive logistic model: the paper's
//! whole pitch is *prediction* — fit on the first hours of a cascade,
//! forecast the hours that have not happened yet — and this crate turns
//! the workspace's batch machinery into a std-only, multi-threaded
//! serving subsystem with three layers:
//!
//! * [`live`] — **incremental ingestion**: [`live::LiveCascade`]
//!   consumes vote events one at a time and maintains a rolling density
//!   matrix whose hour-boundary snapshots are bit-identical to the batch
//!   `dlm-cascade` builders on the same prefix;
//! * [`server`] — **the service core and refit scheduler**: closing an
//!   hour enqueues one fit job per registered model onto the
//!   work-stealing executor in [`dlm_numerics::pool`], with outcomes
//!   cached in the bounded LRU
//!   [`dlm_core::evaluate::FittedModelCache`]; forecasts replay the
//!   cache through the exact fit path of the offline
//!   [`dlm_core::evaluate::EvaluationPipeline`], so a served forecast is
//!   byte-identical to offline evaluation of the same observation;
//! * [`store`] — **bounded cascade residency**: the live-cascade table
//!   is an LRU-ordered [`store::CascadeStore`] with an optional idle
//!   TTL, so abandoned cascades release memory the same way fitted
//!   models age out of the bounded cache;
//! * [`protocol`] + [`json`] + [`wire`] — **the wire**: JSON lines over
//!   TCP (`std::net`, hand-rolled framing and JSON with round-trip-exact
//!   floats), with `open` (hop or shared-interest metric), `ingest`,
//!   `forecast`, `batch`, and `stats` requests, plus an opt-in
//!   length-prefixed binary framing negotiated per connection
//!   (`{"type":"hello","transport":"binary"}`) that is byte-identical
//!   to the JSON path. The normative spec lives in `docs/PROTOCOL.md`
//!   at the repository root; the `dlm-router` crate speaks the same
//!   protocol in front of many backends.
//!
//! [`server::DlmServer`] serves it all over TCP — by default through a
//! nonblocking, std-only readiness reactor (a fixed I/O worker pool
//! multiplexing every connection, so thousands of connections cost
//! buffers rather than threads), with the original
//! thread-per-connection loop selectable via
//! [`server::FrontEnd::ThreadPerConnection`] for comparison runs.
//!
//! The elastic-cluster layer rides on `dlm-cluster`'s versioned
//! snapshot codec: [`live::LiveCascade::to_snapshot`] captures a
//! cascade's entire ingest state (density counters, hour watermark,
//! late-vote accounting, seed voters) and
//! [`live::LiveCascade::from_snapshot`] restores a bit-identical twin.
//! The `snapshot` / `restore` / `cascades` / `evict` verbs move those
//! bytes between nodes during drain handoff, and
//! [`server::ServeConfig::snapshot_dir`] persists the same bytes to
//! disk so a restarted `dlm-serve --snapshot-dir DIR` replays to the
//! exact pre-crash forecasts.
//!
//! ## Example (in-process)
//!
//! ```no_run
//! use dlm_serve::protocol::Request;
//! use dlm_serve::server::{ServeConfig, ServerState};
//! use dlm_data::{SyntheticWorld, WorldConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let world = SyntheticWorld::generate(WorldConfig::default())?;
//! let state = ServerState::with_world(ServeConfig::default(), world)?;
//! println!(
//!     "{}",
//!     state.handle_line(r#"{"type":"open","cascade":"c1","story":1,"horizon":24}"#)
//! );
//! // ... stream {"type":"ingest",...} lines, then {"type":"forecast",...}.
//! # let _ = Request::Stats;
//! # Ok(())
//! # }
//! ```
//!
//! Over TCP, bind a [`server::DlmServer`] instead and speak the same
//! lines on a socket; `cargo run -p dlm-serve` starts a standalone
//! server, and `cargo bench -p dlm-bench --bench serve_load` replays
//! synthetic cascades against one at configurable concurrency.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod error;
pub mod json;
pub mod live;
pub mod protocol;
mod reactor;
pub mod server;
pub mod store;
pub mod telemetry;
pub mod wire;

pub use client::LineClient;
pub use error::{Result, ServeError};
pub use json::Json;
pub use live::{IngestOutcome, LiveCascade};
pub use protocol::{OpenMetric, Request};
pub use server::{DlmServer, FrontEnd, LineService, ServeConfig, ServerState};
pub use store::{CascadeStore, StoreStats};
pub use telemetry::{metrics_response, snapshot_from_json, snapshot_to_json};
pub use wire::Transport;
