//! Incremental cascade ingestion: vote events in, rolling `I(x, t)` out.
//!
//! [`LiveCascade`] is the streaming twin of the batch builders in
//! `dlm-cascade`: it consumes [`Vote`] events one at a time, buckets
//! them into the same distance groups and hour bins the batch
//! [`dlm_cascade::hops::hop_density_matrix`] pipeline uses, and produces
//! density matrices over any closed prefix of hours that are
//! **bit-identical** to what the batch path computes on the same votes
//! (`crates/serve/tests/properties.rs` proves it property-wise). The
//! same integer counts and the same `100 · count / size` division run in
//! both paths, so there is no float drift to paper over.
//!
//! ## Hour closing
//!
//! Hour `h` covers `[submit + (h-1)·3600, submit + h·3600)`. The live
//! view only exposes *closed* hours: hour `h` closes when an event
//! proves time has moved past it — a vote landing in a later hour, or an
//! explicit [`LiveCascade::advance_to`] with a wall-clock timestamp.
//! Votes for already-closed hours are rejected as [`ServeError::LateVote`]
//! instead of silently rewriting observations that forecasts may already
//! have been served from.

use crate::error::{Result, ServeError};
use dlm_cascade::hops::hop_groups;
use dlm_cascade::DensityMatrix;
use dlm_cluster::CascadeSnapshot;
use dlm_data::Vote;
use dlm_graph::DiGraph;
use std::sync::Arc;

/// What one [`LiveCascade::ingest`] call did with the vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The vote landed in a (current or future) hour bucket of a known
    /// group member and was counted.
    Counted,
    /// The vote was ignored: the voter is outside every distance group,
    /// or the vote falls outside the observation horizon. The batch
    /// builders skip exactly these votes too.
    Ignored,
}

/// A cascade under live observation: per-group per-hour vote counts,
/// maintained incrementally.
///
/// ```
/// use dlm_serve::live::{IngestOutcome, LiveCascade};
/// use dlm_data::Vote;
///
/// # fn main() -> dlm_serve::Result<()> {
/// // Two distance groups, submission at t = 0, 6 tracked hours.
/// let groups = vec![vec![1, 2, 3], vec![4, 5]];
/// let mut live = LiveCascade::new(&groups, 0, 6)?;
///
/// // A vote in hour 1 is counted; nothing is queryable yet because
/// // hour 1 is still in progress.
/// let outcome = live.ingest(Vote { timestamp: 600, voter: 2, story: 1 })?;
/// assert_eq!(outcome, IngestOutcome::Counted);
/// assert_eq!(live.closed_hours(), 0);
///
/// // A vote in hour 3 proves hours 1 and 2 are over; the density over
/// // the closed prefix is now available and bit-identical to the batch
/// // builders on the same votes.
/// live.ingest(Vote { timestamp: 2 * 3600 + 5, voter: 4, story: 1 })?;
/// assert_eq!(live.closed_hours(), 2);
/// let matrix = live.matrix()?;
/// assert_eq!(matrix.at(1, 1)?, 100.0 / 3.0); // 1 of 3 group-1 users
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LiveCascade {
    /// user id -> distance-group index, `None` outside every group.
    group_of: Vec<Option<u32>>,
    /// `|U_x|` per group (the density denominators).
    sizes: Vec<usize>,
    submit_time: u64,
    /// Hours tracked: `1..=horizon`.
    horizon: u32,
    /// Per-hour (non-cumulative) vote increments: `counts[g][h - 1]`.
    counts: Vec<Vec<usize>>,
    /// Persistent cumulative counters over the *closed* prefix:
    /// `cumulative[g]` has length `closed` and holds the running sums of
    /// `counts[g][..closed]`. Closed hours are immutable (late votes are
    /// rejected, in-progress votes land past the watermark), so rows
    /// only ever grow — closing an hour appends one cell per group and
    /// never rewrites history. `matrix_through` reads prefix slices of
    /// these rows instead of re-summing `counts` on every forecast.
    cumulative: Vec<Vec<usize>>,
    /// Copy-on-close matrix snapshots: `snapshots[h - 1]` memoizes the
    /// density matrix over hours `1..=h`. Valid forever once built (the
    /// closed prefix it covers is immutable), shared by `Arc` so the
    /// forecast hot path hands out views without cloning the grid.
    snapshots: Vec<Option<Arc<DensityMatrix>>>,
    /// Hours `1..=closed` are complete and queryable.
    closed: u32,
    /// Votes counted into a group/hour bucket.
    counted: u64,
    /// Votes ignored (outside groups, before submission, past horizon).
    ignored: u64,
    /// Voters seen in hour 1, in arrival order — the epidemic seed set,
    /// matching `cascade.votes_within(1)` on a timestamp-ordered stream.
    hour1_voters: Vec<usize>,
}

impl LiveCascade {
    /// Creates a live cascade over explicit distance groups (any
    /// metric): `groups[d - 1]` holds the user ids at distance `d`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidParameter`] for empty groups, a group with
    /// zero users, or a zero horizon.
    pub fn new(groups: &[Vec<usize>], submit_time: u64, horizon: u32) -> Result<Self> {
        if groups.is_empty() {
            return Err(ServeError::InvalidParameter {
                name: "groups",
                reason: "need at least one distance group".into(),
            });
        }
        if horizon == 0 {
            return Err(ServeError::InvalidParameter {
                name: "horizon",
                reason: "must be positive".into(),
            });
        }
        if let Some(empty) = groups.iter().position(Vec::is_empty) {
            return Err(ServeError::InvalidParameter {
                name: "groups",
                reason: format!("distance group {} is empty", empty + 1),
            });
        }
        let max_user = groups.iter().flatten().copied().max().unwrap_or(0);
        let mut group_of: Vec<Option<u32>> = vec![None; max_user + 1];
        for (g, members) in groups.iter().enumerate() {
            for &u in members {
                group_of[u] = Some(g as u32);
            }
        }
        Ok(Self {
            group_of,
            sizes: groups.iter().map(Vec::len).collect(),
            submit_time,
            horizon,
            counts: vec![vec![0; horizon as usize]; groups.len()],
            cumulative: vec![Vec::new(); groups.len()],
            snapshots: vec![None; horizon as usize],
            closed: 0,
            counted: 0,
            ignored: 0,
            hour1_voters: Vec::new(),
        })
    }

    /// Advances the closed watermark to `hour` (no-op when already
    /// past), extending every group's persistent cumulative row over the
    /// newly closed hours. The same left-to-right integer accumulation
    /// the batch `cumulative_counts` performs, done once per hour close
    /// instead of once per forecast.
    fn close_through(&mut self, hour: u32) {
        let hour = hour.min(self.horizon);
        if hour <= self.closed {
            return;
        }
        for (g, row) in self.cumulative.iter_mut().enumerate() {
            let mut acc = row.last().copied().unwrap_or(0);
            for h in self.closed as usize..hour as usize {
                acc += self.counts[g][h];
                row.push(acc);
            }
        }
        self.closed = hour;
    }

    /// Creates a live cascade over the friendship-hop metric: the exact
    /// BFS groups (empty tails truncated) the batch
    /// [`dlm_cascade::hops::hop_density_matrix`] counts over.
    ///
    /// # Errors
    ///
    /// Propagates [`hop_groups`] errors and [`LiveCascade::new`]
    /// validation.
    pub fn for_hops(
        graph: &DiGraph,
        initiator: usize,
        max_hops: u32,
        submit_time: u64,
        horizon: u32,
    ) -> Result<Self> {
        let groups = hop_groups(graph, initiator, max_hops)?;
        Self::new(&groups, submit_time, horizon)
    }

    /// Number of distance groups.
    #[must_use]
    pub fn max_distance(&self) -> u32 {
        self.sizes.len() as u32
    }

    /// The observation horizon (hours tracked).
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The cascade submission time.
    #[must_use]
    pub fn submit_time(&self) -> u64 {
        self.submit_time
    }

    /// Hours `1..=closed_hours()` are complete and queryable.
    #[must_use]
    pub fn closed_hours(&self) -> u32 {
        self.closed
    }

    /// Votes counted into a bucket so far.
    #[must_use]
    pub fn counted_votes(&self) -> u64 {
        self.counted
    }

    /// Votes ignored so far (outside every group, before submission, or
    /// past the horizon).
    #[must_use]
    pub fn ignored_votes(&self) -> u64 {
        self.ignored
    }

    /// Voters observed in hour 1, in arrival order — the seed set
    /// epidemic predictors take. On a timestamp-ordered stream this
    /// equals the voters of `cascade.votes_within(1)`.
    #[must_use]
    pub fn hour1_voters(&self) -> &[usize] {
        &self.hour1_voters
    }

    /// Consumes one vote event.
    ///
    /// A vote in hour `h` proves hours `1..=h-1` are over and closes
    /// them; a vote past the horizon closes every tracked hour. Votes
    /// before the submission time or by users outside every group are
    /// ignored, exactly as the batch counters ignore them.
    ///
    /// # Errors
    ///
    /// [`ServeError::LateVote`] when the vote belongs to an
    /// already-closed hour.
    pub fn ingest(&mut self, vote: Vote) -> Result<IngestOutcome> {
        if vote.timestamp < self.submit_time {
            self.ignored += 1;
            return Ok(IngestOutcome::Ignored);
        }
        let bucket = (vote.timestamp - self.submit_time) / 3600;
        if bucket >= u64::from(self.horizon) {
            // Time has provably moved past the whole horizon.
            self.close_through(self.horizon);
            self.ignored += 1;
            return Ok(IngestOutcome::Ignored);
        }
        let bucket = bucket as u32; // < horizon <= u32::MAX
        if bucket < self.closed {
            return Err(ServeError::LateVote {
                hour: bucket + 1,
                closed: self.closed,
            });
        }
        // Hour `bucket + 1` is in progress, so hours 1..=bucket are done.
        self.close_through(bucket);
        if bucket == 0 {
            self.hour1_voters.push(vote.voter);
        }
        match self.group_of.get(vote.voter).copied().flatten() {
            Some(g) => {
                self.counts[g as usize][bucket as usize] += 1;
                self.counted += 1;
                Ok(IngestOutcome::Counted)
            }
            None => {
                self.ignored += 1;
                Ok(IngestOutcome::Ignored)
            }
        }
    }

    /// Closes every hour that ends at or before the wall-clock time
    /// `now` (capped at the horizon) and returns the number of closed
    /// hours. Lets quiet cascades make progress between votes; moving
    /// backwards is a no-op.
    pub fn advance_to(&mut self, now: u64) -> u32 {
        if now > self.submit_time {
            let complete = ((now - self.submit_time) / 3600).min(u64::from(self.horizon)) as u32;
            self.close_through(complete);
        }
        self.closed
    }

    /// The rolling density matrix over the first `hours` closed hours —
    /// bit-identical to the batch builder run on the same votes with the
    /// same groups and horizon `hours`.
    ///
    /// # Errors
    ///
    /// [`ServeError::HourNotClosed`] for `hours` of zero or beyond the
    /// closed prefix; propagates matrix construction errors.
    pub fn matrix_through(&self, hours: u32) -> Result<DensityMatrix> {
        if hours == 0 || hours > self.closed {
            return Err(ServeError::HourNotClosed {
                hour: hours,
                closed: self.closed,
            });
        }
        // Prefix slices of the persistent cumulative rows maintained on
        // hour close — the same sums the batch `cumulative_counts`
        // computes, without re-accumulating them per call.
        let rows: Vec<&[usize]> = self
            .cumulative
            .iter()
            .map(|row| &row[..hours as usize])
            .collect();
        Ok(DensityMatrix::from_cumulative_rows(&rows, &self.sizes)?)
    }

    /// The memoized, shared form of [`LiveCascade::matrix_through`]: the
    /// matrix over hours `1..=hours` is built once when that prefix
    /// first gets queried (its hours are closed, hence immutable) and
    /// every later call returns the same `Arc` — the forecast hot path
    /// does no counting and no grid allocation at all.
    ///
    /// # Errors
    ///
    /// Same as [`LiveCascade::matrix_through`].
    pub fn matrix_snapshot(&mut self, hours: u32) -> Result<Arc<DensityMatrix>> {
        if hours == 0 || hours > self.closed {
            return Err(ServeError::HourNotClosed {
                hour: hours,
                closed: self.closed,
            });
        }
        let slot = (hours - 1) as usize;
        if let Some(snapshot) = &self.snapshots[slot] {
            return Ok(Arc::clone(snapshot));
        }
        let snapshot = Arc::new(self.matrix_through(hours)?);
        self.snapshots[slot] = Some(Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// The rolling density matrix over every closed hour.
    ///
    /// # Errors
    ///
    /// [`ServeError::HourNotClosed`] when no hour has closed yet.
    pub fn matrix(&self) -> Result<DensityMatrix> {
        self.matrix_through(self.closed)
    }

    /// Captures the cascade's *entire* ingest state — density counters,
    /// hour watermark, late-vote accounting, seed voters — as a
    /// [`CascadeSnapshot`]. All state is integer-valued, so the restored
    /// twin produced by [`LiveCascade::from_snapshot`] serves matrices
    /// (and therefore forecasts) bit-identical to this one, and enforces
    /// the same late-vote watermark.
    ///
    /// `id` and `initiator` are carried for the serving layer: the id
    /// names the cascade at the restoring node, and the initiator (when
    /// the cascade was opened over a shared world graph) lets the
    /// restorer re-attach the graph context epidemic predictors use.
    #[must_use]
    pub fn to_snapshot(&self, id: &str, initiator: Option<u64>) -> CascadeSnapshot {
        CascadeSnapshot {
            id: id.to_string(),
            initiator,
            submit_time: self.submit_time,
            horizon: self.horizon,
            closed: self.closed,
            counted: self.counted,
            ignored: self.ignored,
            sizes: self.sizes.iter().map(|&s| s as u64).collect(),
            group_of: self.group_of.clone(),
            counts: self
                .counts
                .iter()
                .map(|row| row.iter().map(|&c| c as u64).collect())
                .collect(),
            hour1_voters: self.hour1_voters.iter().map(|&v| v as u64).collect(),
        }
    }

    /// Rebuilds a live cascade from a decoded [`CascadeSnapshot`] —
    /// the receiving half of drain handoff and `--snapshot-dir` replay.
    /// No re-`open`, no vote replay: the watermark, counters, and seed
    /// set come back exactly as captured.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidParameter`] when the snapshot is internally
    /// inconsistent (a decoded-but-hostile snapshot): zero horizon, no
    /// groups, a zero group size, count rows not matching the group
    /// count, a count row not matching the horizon, a group index out
    /// of range, a watermark past the horizon, or values that do not
    /// fit this platform's `usize`.
    pub fn from_snapshot(snap: &CascadeSnapshot) -> Result<Self> {
        let bad = |reason: String| ServeError::InvalidParameter {
            name: "snapshot",
            reason,
        };
        if snap.horizon == 0 {
            return Err(bad("horizon must be positive".into()));
        }
        if snap.sizes.is_empty() {
            return Err(bad("need at least one distance group".into()));
        }
        if snap.closed > snap.horizon {
            return Err(bad(format!(
                "closed watermark {} exceeds horizon {}",
                snap.closed, snap.horizon
            )));
        }
        let groups = snap.sizes.len();
        let mut sizes = Vec::with_capacity(groups);
        for (g, &s) in snap.sizes.iter().enumerate() {
            if s == 0 {
                return Err(bad(format!("distance group {} is empty", g + 1)));
            }
            sizes.push(
                usize::try_from(s)
                    .map_err(|_| bad(format!("group size {s} does not fit usize")))?,
            );
        }
        for (u, &g) in snap.group_of.iter().enumerate() {
            if let Some(g) = g {
                if g as usize >= groups {
                    return Err(bad(format!(
                        "user {u} mapped to group {} of {groups}",
                        g + 1
                    )));
                }
            }
        }
        if snap.counts.len() != groups {
            return Err(bad(format!(
                "{} count rows for {groups} groups",
                snap.counts.len()
            )));
        }
        let mut counts = Vec::with_capacity(groups);
        for (g, row) in snap.counts.iter().enumerate() {
            if row.len() != snap.horizon as usize {
                return Err(bad(format!(
                    "count row {} has {} hours for horizon {}",
                    g + 1,
                    row.len(),
                    snap.horizon
                )));
            }
            let mut out = Vec::with_capacity(row.len());
            for &c in row {
                out.push(
                    usize::try_from(c)
                        .map_err(|_| bad(format!("vote count {c} does not fit usize")))?,
                );
            }
            counts.push(out);
        }
        let mut hour1_voters = Vec::with_capacity(snap.hour1_voters.len());
        for &v in &snap.hour1_voters {
            hour1_voters.push(
                usize::try_from(v).map_err(|_| bad(format!("voter id {v} does not fit usize")))?,
            );
        }
        let groups = counts.len();
        let mut live = Self {
            group_of: snap.group_of.clone(),
            sizes,
            submit_time: snap.submit_time,
            horizon: snap.horizon,
            counts,
            cumulative: vec![Vec::new(); groups],
            snapshots: vec![None; snap.horizon as usize],
            closed: 0,
            counted: snap.counted,
            ignored: snap.ignored,
            hour1_voters,
        };
        // Rebuild the persistent cumulative rows the snapshot's closed
        // watermark implies — the restored twin accumulates in the same
        // order the origin did, so the rows (and every matrix built
        // from them) come back bit-identical.
        live.close_through(snap.closed);
        Ok(live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlm_cascade::density::{cumulative_counts, DensityMatrix};

    fn vote(timestamp: u64, voter: usize) -> Vote {
        Vote {
            timestamp,
            voter,
            story: 1,
        }
    }

    fn groups() -> Vec<Vec<usize>> {
        vec![vec![1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]
    }

    #[test]
    fn validates_construction() {
        assert!(LiveCascade::new(&[], 0, 5).is_err());
        assert!(LiveCascade::new(&groups(), 0, 0).is_err());
        assert!(LiveCascade::new(&[vec![1], vec![]], 0, 5).is_err());
        let live = LiveCascade::new(&groups(), 1000, 5).unwrap();
        assert_eq!(live.max_distance(), 3);
        assert_eq!(live.closed_hours(), 0);
        assert!(live.matrix().is_err());
    }

    #[test]
    fn votes_close_earlier_hours() {
        let mut live = LiveCascade::new(&groups(), 1000, 5).unwrap();
        assert_eq!(live.ingest(vote(1000, 1)).unwrap(), IngestOutcome::Counted);
        assert_eq!(live.closed_hours(), 0, "hour 1 still in progress");
        // A vote in hour 3 closes hours 1 and 2.
        live.ingest(vote(1000 + 2 * 3600, 4)).unwrap();
        assert_eq!(live.closed_hours(), 2);
        let m = live.matrix_through(2).unwrap();
        assert_eq!(m.max_hour(), 2);
        assert!((m.at(1, 1).unwrap() - 100.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.at(2, 2).unwrap(), 0.0, "hour-3 vote not visible yet");
    }

    #[test]
    fn late_votes_are_rejected() {
        let mut live = LiveCascade::new(&groups(), 1000, 5).unwrap();
        live.ingest(vote(1000 + 3 * 3600, 1)).unwrap();
        assert_eq!(live.closed_hours(), 3);
        let err = live.ingest(vote(1000 + 3600, 2)).unwrap_err();
        assert!(matches!(err, ServeError::LateVote { hour: 2, closed: 3 }));
        // A vote in the in-progress hour is fine.
        assert!(live.ingest(vote(1000 + 3 * 3600 + 10, 2)).is_ok());
    }

    #[test]
    fn outside_group_and_pre_submit_votes_are_ignored() {
        let mut live = LiveCascade::new(&groups(), 1000, 5).unwrap();
        assert_eq!(live.ingest(vote(500, 1)).unwrap(), IngestOutcome::Ignored);
        assert_eq!(
            live.ingest(vote(2000, 999)).unwrap(),
            IngestOutcome::Ignored
        );
        assert_eq!(live.counted_votes(), 0);
        assert_eq!(live.ignored_votes(), 2);
    }

    #[test]
    fn beyond_horizon_votes_close_everything() {
        let mut live = LiveCascade::new(&groups(), 1000, 3).unwrap();
        live.ingest(vote(1000, 1)).unwrap();
        assert_eq!(
            live.ingest(vote(1000 + 10 * 3600, 2)).unwrap(),
            IngestOutcome::Ignored
        );
        assert_eq!(live.closed_hours(), 3);
        assert_eq!(live.matrix().unwrap().max_hour(), 3);
    }

    #[test]
    fn advance_to_closes_quiet_hours() {
        let mut live = LiveCascade::new(&groups(), 1000, 5).unwrap();
        live.ingest(vote(1000, 1)).unwrap();
        assert_eq!(live.advance_to(1000 + 2 * 3600 + 5), 2);
        assert_eq!(live.advance_to(500), 2, "moving backwards is a no-op");
        assert_eq!(live.advance_to(1000 + 50 * 3600), 5, "capped at horizon");
    }

    #[test]
    fn hour1_voters_record_arrival_order() {
        let mut live = LiveCascade::new(&groups(), 1000, 5).unwrap();
        live.ingest(vote(1000, 3)).unwrap();
        live.ingest(vote(1500, 999)).unwrap(); // outside groups, still a seed
        live.ingest(vote(2000, 5)).unwrap();
        live.ingest(vote(1000 + 3600, 6)).unwrap(); // hour 2
        assert_eq!(live.hour1_voters(), &[3, 999, 5]);
    }

    #[test]
    fn matrix_snapshots_are_memoized_and_identical() {
        let mut live = LiveCascade::new(&groups(), 1000, 5).unwrap();
        live.ingest(vote(1000, 1)).unwrap();
        live.ingest(vote(1000 + 3600 + 7, 4)).unwrap();
        live.advance_to(1000 + 3 * 3600);
        for hours in 1..=3u32 {
            let first = live.matrix_snapshot(hours).unwrap();
            let again = live.matrix_snapshot(hours).unwrap();
            assert!(Arc::ptr_eq(&first, &again), "hour {hours} not memoized");
            assert_eq!(*first, live.matrix_through(hours).unwrap());
        }
        assert!(live.matrix_snapshot(0).is_err());
        assert!(live.matrix_snapshot(4).is_err());
        // Later closes serve later prefixes from the same counters.
        live.advance_to(1000 + 5 * 3600);
        assert_eq!(*live.matrix_snapshot(5).unwrap(), live.matrix().unwrap());
    }

    #[test]
    fn snapshot_round_trip_preserves_state_and_watermark() {
        let mut live = LiveCascade::new(&groups(), 1000, 5).unwrap();
        for v in [
            vote(1000, 3),
            vote(1500, 999),
            vote(500, 1), // pre-submit, ignored
            vote(1000 + 3600, 4),
            vote(1000 + 2 * 3600 + 9, 8),
        ] {
            live.ingest(v).unwrap();
        }
        let snap = live.to_snapshot("c-42", Some(7));
        assert_eq!(snap.id, "c-42");
        assert_eq!(snap.initiator, Some(7));
        let wire = snap.encode();
        let back = CascadeSnapshot::decode(&wire).unwrap();
        let restored = LiveCascade::from_snapshot(&back).unwrap();
        assert_eq!(restored.closed_hours(), live.closed_hours());
        assert_eq!(restored.counted_votes(), live.counted_votes());
        assert_eq!(restored.ignored_votes(), live.ignored_votes());
        assert_eq!(restored.hour1_voters(), live.hour1_voters());
        assert_eq!(restored.matrix().unwrap(), live.matrix().unwrap());
        // The late-vote watermark survived: both twins reject the same
        // vote identically.
        let mut live2 = live.clone();
        let mut restored2 = restored.clone();
        let late = vote(1000 + 3600, 2);
        assert!(matches!(
            live2.ingest(late).unwrap_err(),
            ServeError::LateVote { hour: 2, closed: 2 }
        ));
        assert!(matches!(
            restored2.ingest(late).unwrap_err(),
            ServeError::LateVote { hour: 2, closed: 2 }
        ));
    }

    #[test]
    fn inconsistent_snapshots_are_rejected() {
        let live = LiveCascade::new(&groups(), 1000, 5).unwrap();
        let good = live.to_snapshot("c", None);
        assert!(LiveCascade::from_snapshot(&good).is_ok());

        let mut s = good.clone();
        s.horizon = 0;
        assert!(LiveCascade::from_snapshot(&s).is_err());

        let mut s = good.clone();
        s.sizes.clear();
        assert!(LiveCascade::from_snapshot(&s).is_err());

        let mut s = good.clone();
        s.sizes[0] = 0;
        assert!(LiveCascade::from_snapshot(&s).is_err());

        let mut s = good.clone();
        s.closed = 6;
        assert!(LiveCascade::from_snapshot(&s).is_err());

        let mut s = good.clone();
        s.counts.pop();
        assert!(LiveCascade::from_snapshot(&s).is_err());

        let mut s = good.clone();
        s.counts[0].pop();
        assert!(LiveCascade::from_snapshot(&s).is_err());

        let mut s = good.clone();
        s.group_of[1] = Some(99);
        assert!(LiveCascade::from_snapshot(&s).is_err());
    }

    #[test]
    fn rolling_matrix_matches_batch_counters_exactly() {
        let groups = groups();
        let submit = 1_244_000_000;
        let votes: Vec<Vote> = [
            (0u64, 1usize),
            (1800, 4),
            (3600, 2),
            (3700, 8),
            (2 * 3600 + 10, 5),
            (3 * 3600, 9),
            (3 * 3600 + 1, 3),
            (4 * 3600 - 1, 6),
        ]
        .iter()
        .map(|&(offset, voter)| vote(submit + offset, voter))
        .collect();
        let mut live = LiveCascade::new(&groups, submit, 6).unwrap();
        for v in &votes {
            live.ingest(*v).unwrap();
        }
        live.advance_to(submit + 6 * 3600);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        for hours in 1..=6u32 {
            let batch = DensityMatrix::from_counts(
                &cumulative_counts(&groups, &votes, submit, hours),
                &sizes,
            )
            .unwrap();
            let live_m = live.matrix_through(hours).unwrap();
            assert_eq!(live_m, batch, "hour boundary {hours}");
        }
    }
}
