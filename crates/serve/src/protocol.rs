//! The `dlm-serve` wire protocol: JSON lines over TCP.
//!
//! Each request is one JSON object on one line; each response is one
//! JSON object on one line. The `type` field selects the operation:
//!
//! ```text
//! {"type":"open","cascade":"c1","initiator":17,"max_hops":5,"horizon":24}
//! {"type":"open","cascade":"c2","story":1,"horizon":24}        // via the server's world
//! {"type":"ingest","cascade":"c1","votes":[[1244000000,17],[1244000700,4]],"now":1244003600}
//! {"type":"forecast","cascade":"c1","hours":[3,4],"models":["naive"],"through":2}
//! {"type":"stats"}
//! {"type":"snapshot","cascade":"c1"}
//! {"type":"restore","snapshot":"444c4d53..."}
//! {"type":"cascades"}
//! {"type":"checksums"}
//! {"type":"evict","cascade":"c1"}
//! {"type":"batch","requests":[{"type":"ingest",...},{"type":"forecast",...}]}
//! {"type":"hello","transport":"binary"}                       // framing switch, see `wire`
//! ```
//!
//! Responses always carry `"ok": true|false`; errors add `"error"` with
//! a message and leave server state untouched beyond what the request
//! already applied (an ingest batch applies votes in order up to the
//! first rejected one).
//!
//! `forecast` responses enumerate one entry per requested model with the
//! fitted parameters and the predicted density grid
//! (`values[di][hi]` for `distances[di]` at `hours[hi]`), all floats in
//! shortest-round-trip form — parsing them back yields bit-identical
//! `f64`s (see [`crate::json`]).

use crate::error::{Result, ServeError};
use crate::json::Json;
use dlm_cascade::GroupingStrategy;

/// The distance metric an `open` request tracks (the paper's two
/// metrics, §III.B). Each variant carries exactly the tuning fields
/// that are meaningful for it, so every combination round-trips
/// through its wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMetric {
    /// Friendship-hop BFS distance (`"metric":"hops"`, the default);
    /// groups come from [`dlm_cascade::hops::hop_groups`].
    Hops {
        /// Maximum hop distance tracked (`max_hops`, default 5 — the
        /// paper's range).
        max_hops: u32,
    },
    /// Shared-interest (Eq.-1 Jaccard) distance
    /// (`"metric":"interest"`); groups come from
    /// [`dlm_cascade::interest_groups::interest_groups`].
    Interest {
        /// Number of interest bins requested (`groups`, default 5 — the
        /// paper's count; empty bins merge forward, so fewer may
        /// result).
        groups: u32,
        /// Binning strategy (`"strategy":"width"` for the paper's
        /// equal-width interest ranges, `"quantile"` for the ablation
        /// alternative).
        strategy: GroupingStrategy,
    },
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Registers a cascade for live observation.
    Open {
        /// Client-chosen cascade id.
        cascade: String,
        /// Explicit initiating user (`initiator` field). Mutually
        /// exclusive with `story`.
        initiator: Option<usize>,
        /// Story ordinal resolved through the server's synthetic world
        /// (`story` field, 1-based preset id).
        story: Option<u32>,
        /// Distance metric to bucket voters by (`metric` field), with
        /// its metric-specific tuning (`max_hops` / `groups` +
        /// `strategy`).
        metric: OpenMetric,
        /// Observation horizon in hours (default 50, the paper's span).
        horizon: u32,
        /// Cascade submission time. Defaults to the simulator's fixed
        /// epoch ([`dlm_data::simulate::SIMULATED_SUBMIT_TIME`]) — every
        /// synthetic cascade submits there; pass it explicitly when
        /// replaying real logs.
        submit_time: Option<u64>,
        /// Workload regime tag (`regime` field). Pure observability:
        /// it never affects handling, it only labels the server's
        /// `dlm_cascades_opened_total` counter (sanitized through
        /// [`dlm_obs::sanitize_label_value`]) so soak runs can assert
        /// per-regime open counts across both tiers.
        regime: Option<String>,
    },
    /// Streams vote events into a cascade.
    Ingest {
        /// Cascade id.
        cascade: String,
        /// `(timestamp, voter)` pairs, in arrival order.
        votes: Vec<(u64, usize)>,
        /// Optional wall-clock advance applied after the votes.
        now: Option<u64>,
    },
    /// Requests density forecasts from the registered model lineup.
    Forecast {
        /// Cascade id.
        cascade: String,
        /// Hours to predict (must be after the observed window's start).
        hours: Vec<u32>,
        /// Distances to predict (defaults to every tracked distance).
        distances: Option<Vec<u32>>,
        /// Spec strings to serve (defaults to the whole lineup).
        models: Option<Vec<String>>,
        /// Observe only hours `1..=through` (defaults to every closed
        /// hour).
        through: Option<u32>,
    },
    /// Requests server/cache counters.
    Stats,
    /// Captures a cascade's full ingest state as a hex-armored
    /// [`dlm_cluster::CascadeSnapshot`] — the sending half of drain
    /// handoff and the unit of `--snapshot-dir` persistence.
    Snapshot {
        /// Cascade id.
        cascade: String,
    },
    /// Installs a cascade from hex-armored snapshot bytes, watermark
    /// and all — the receiving half of drain handoff. No re-`open`, no
    /// vote replay.
    Restore {
        /// Hex-armored snapshot bytes, as produced by `snapshot`.
        snapshot: String,
    },
    /// Lists the resident cascade ids (sorted) — how the router
    /// inventories a node before migrating its cascades.
    Cascades,
    /// Returns one content hash per resident cascade — the anti-entropy
    /// primitive. Each entry pairs the cascade id with
    /// `hash64(snapshot.encode())` rendered as a 16-digit hex string
    /// (JSON numbers are doubles, exact only to 2^53, so a `u64` hash
    /// must ride as a string to round-trip exactly). Comparing replica
    /// checksums is one round trip per node regardless of cascade
    /// sizes, which is what makes post-degraded-write repair cheap.
    Checksums,
    /// Drops a cascade by id, releasing its state (migration cleanup).
    Evict {
        /// Cascade id.
        cascade: String,
    },
    /// Several cascade-scoped requests on one line, answered by one
    /// response line carrying one result per request, in order — the
    /// round-trip amortization that makes high-volume vote streams
    /// cheap. Items stay as raw JSON values here: each is parsed (and
    /// answered) independently, so one malformed item errors in place
    /// without poisoning its neighbors.
    Batch {
        /// The sub-request objects, in execution order. Only the
        /// cascade-scoped data verbs (`open`, `ingest`, `forecast`,
        /// `snapshot`) are allowed; admin verbs and nested batches are
        /// answered with per-item errors.
        requests: Vec<Json>,
    },
    /// Requests this process's telemetry: Prometheus-style text
    /// exposition plus the structured snapshot the router tier merges
    /// bucket-wise across backends. The only verb through which the
    /// instrumentation's state is visible.
    Metrics,
    /// Installs the routing tier's committed ring version on a backend
    /// (pushed after every topology commit). Backends echo it back in
    /// `stats`, which is how the router's scatter-gather detects a
    /// stale backend after a partial rebalance (`ring_skew`).
    Ring {
        /// The router's current topology version.
        version: u64,
    },
}

/// The wrapper around batch sub-responses: both the serving core and
/// the router splice already-serialized sub-response strings into this
/// exact shape, which is what keeps a routed batch byte-identical to a
/// direct one.
#[must_use]
pub fn batch_response(results: &[String]) -> String {
    format!(
        "{{\"ok\":true,\"count\":{},\"results\":[{}]}}",
        results.len(),
        results.join(",")
    )
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json> {
    obj.get(key)
        .ok_or_else(|| ServeError::Protocol(format!("missing field `{key}`")))
}

fn str_field(obj: &Json, key: &str) -> Result<String> {
    field(obj, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| ServeError::Protocol(format!("field `{key}` must be a string")))
}

fn opt_str(obj: &Json, key: &str) -> Result<Option<String>> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| ServeError::Protocol(format!("field `{key}` must be a string"))),
    }
}

fn opt_u64(obj: &Json, key: &str) -> Result<Option<u64>> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ServeError::Protocol(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

fn opt_u32(obj: &Json, key: &str) -> Result<Option<u32>> {
    match opt_u64(obj, key)? {
        None => Ok(None),
        Some(v) => u32::try_from(v)
            .map(Some)
            .map_err(|_| ServeError::Protocol(format!("field `{key}` out of range"))),
    }
}

fn hour_list(value: &Json, key: &str) -> Result<Vec<u32>> {
    let items = value
        .as_array()
        .ok_or_else(|| ServeError::Protocol(format!("field `{key}` must be an array")))?;
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| ServeError::Protocol(format!("`{key}` entries must be integers")))
        })
        .collect()
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for malformed JSON, a missing/unknown
    /// `type`, or mistyped fields.
    pub fn parse(line: &str) -> Result<Self> {
        Self::parse_with_trace(line).map(|(request, _)| request)
    }

    /// Like [`Request::parse`], additionally extracting the optional
    /// `trace` correlation id. Every request object may carry a string
    /// `"trace"` field; it never affects handling or the response — it
    /// only rides into slow-request log lines, so one id correlates the
    /// router hop with the backend hop. A non-string `trace` is ignored
    /// rather than rejected (the field is observability, not protocol).
    ///
    /// # Errors
    ///
    /// Same as [`Request::parse`].
    pub fn parse_with_trace(line: &str) -> Result<(Self, Option<String>)> {
        let value = Json::parse(line).map_err(ServeError::Protocol)?;
        let trace = value.get("trace").and_then(Json::as_str).map(str::to_owned);
        Ok((Self::from_value(&value)?, trace))
    }

    /// Parses one request from an already-parsed JSON value — the path
    /// batch items take, where the containing line was parsed once and
    /// each item is handled independently.
    ///
    /// # Errors
    ///
    /// Same as [`Request::parse`].
    pub fn from_value(value: &Json) -> Result<Self> {
        let kind = str_field(value, "type")?;
        match kind.as_str() {
            "open" => {
                let hops = || -> Result<OpenMetric> {
                    Ok(OpenMetric::Hops {
                        max_hops: opt_u32(value, "max_hops")?.unwrap_or(5),
                    })
                };
                let metric = match value.get("metric") {
                    None | Some(Json::Null) => hops()?,
                    Some(v) => match v.as_str() {
                        Some("hops") => hops()?,
                        Some("interest") => OpenMetric::Interest {
                            groups: opt_u32(value, "groups")?.unwrap_or(5),
                            strategy: match value.get("strategy") {
                                None | Some(Json::Null) => GroupingStrategy::EqualWidth,
                                Some(v) => match v.as_str() {
                                    Some("width") => GroupingStrategy::EqualWidth,
                                    Some("quantile") => GroupingStrategy::Quantile,
                                    _ => {
                                        return Err(ServeError::Protocol(
                                            "field `strategy` must be `width` or `quantile`".into(),
                                        ))
                                    }
                                },
                            },
                        },
                        _ => {
                            return Err(ServeError::Protocol(
                                "field `metric` must be `hops` or `interest`".into(),
                            ))
                        }
                    },
                };
                Ok(Self::Open {
                    cascade: str_field(value, "cascade")?,
                    initiator: opt_u64(value, "initiator")?.map(|v| v as usize),
                    story: opt_u32(value, "story")?,
                    metric,
                    horizon: opt_u32(value, "horizon")?.unwrap_or(50),
                    submit_time: opt_u64(value, "submit_time")?,
                    regime: opt_str(value, "regime")?,
                })
            }
            "ingest" => {
                let votes = field(value, "votes")?
                    .as_array()
                    .ok_or_else(|| ServeError::Protocol("`votes` must be an array".into()))?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                            ServeError::Protocol("votes must be [timestamp, voter] pairs".into())
                        })?;
                        let ts = pair[0].as_u64().ok_or_else(|| {
                            ServeError::Protocol("vote timestamp must be an integer".into())
                        })?;
                        let voter = pair[1].as_u64().ok_or_else(|| {
                            ServeError::Protocol("vote voter must be an integer".into())
                        })?;
                        Ok((ts, voter as usize))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Self::Ingest {
                    cascade: str_field(value, "cascade")?,
                    votes,
                    now: opt_u64(value, "now")?,
                })
            }
            "forecast" => {
                let models = match value.get("models") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_array()
                            .ok_or_else(|| {
                                ServeError::Protocol("`models` must be an array".into())
                            })?
                            .iter()
                            .map(|m| {
                                m.as_str().map(str::to_owned).ok_or_else(|| {
                                    ServeError::Protocol("`models` entries must be strings".into())
                                })
                            })
                            .collect::<Result<Vec<_>>>()?,
                    ),
                };
                let distances = match value.get("distances") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(hour_list(v, "distances")?),
                };
                Ok(Self::Forecast {
                    cascade: str_field(value, "cascade")?,
                    hours: hour_list(field(value, "hours")?, "hours")?,
                    distances,
                    models,
                    through: opt_u32(value, "through")?,
                })
            }
            "stats" => Ok(Self::Stats),
            "snapshot" => Ok(Self::Snapshot {
                cascade: str_field(value, "cascade")?,
            }),
            "restore" => Ok(Self::Restore {
                snapshot: str_field(value, "snapshot")?,
            }),
            "cascades" => Ok(Self::Cascades),
            "checksums" => Ok(Self::Checksums),
            "evict" => Ok(Self::Evict {
                cascade: str_field(value, "cascade")?,
            }),
            "batch" => {
                let requests = field(value, "requests")?
                    .as_array()
                    .ok_or_else(|| ServeError::Protocol("`requests` must be an array".into()))?;
                if requests.is_empty() {
                    return Err(ServeError::Protocol(
                        "`requests` must hold at least one request".into(),
                    ));
                }
                Ok(Self::Batch {
                    requests: requests.to_vec(),
                })
            }
            "metrics" => Ok(Self::Metrics),
            "ring" => {
                let version = field(value, "version")?.as_u64().ok_or_else(|| {
                    ServeError::Protocol("field `version` must be a non-negative integer".into())
                })?;
                Ok(Self::Ring { version })
            }
            other => Err(ServeError::Protocol(format!(
                "unknown request type `{other}`"
            ))),
        }
    }

    /// Serializes the request back into its wire form (used by the load
    /// generator and examples; the server only parses).
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Self::Open {
                cascade,
                initiator,
                story,
                metric,
                horizon,
                submit_time,
                regime,
            } => {
                let mut fields = vec![
                    ("type".to_owned(), Json::str("open")),
                    ("cascade".to_owned(), Json::str(cascade.clone())),
                ];
                if let Some(u) = initiator {
                    fields.push(("initiator".to_owned(), Json::num(*u as f64)));
                }
                if let Some(s) = story {
                    fields.push(("story".to_owned(), Json::num(f64::from(*s))));
                }
                match metric {
                    // The default metric stays implicit so the wire form
                    // of a hops `open` is unchanged across versions.
                    OpenMetric::Hops { max_hops } => {
                        fields.push(("max_hops".to_owned(), Json::num(f64::from(*max_hops))));
                    }
                    OpenMetric::Interest { groups, strategy } => {
                        fields.push(("metric".to_owned(), Json::str("interest")));
                        fields.push(("groups".to_owned(), Json::num(f64::from(*groups))));
                        fields.push((
                            "strategy".to_owned(),
                            Json::str(match strategy {
                                GroupingStrategy::EqualWidth => "width",
                                GroupingStrategy::Quantile => "quantile",
                            }),
                        ));
                    }
                }
                fields.push(("horizon".to_owned(), Json::num(f64::from(*horizon))));
                if let Some(t) = submit_time {
                    fields.push(("submit_time".to_owned(), Json::num(*t as f64)));
                }
                if let Some(r) = regime {
                    fields.push(("regime".to_owned(), Json::str(r.clone())));
                }
                Json::Obj(fields)
            }
            Self::Ingest {
                cascade,
                votes,
                now,
            } => {
                let mut fields = vec![
                    ("type".to_owned(), Json::str("ingest")),
                    ("cascade".to_owned(), Json::str(cascade.clone())),
                    (
                        "votes".to_owned(),
                        Json::Arr(
                            votes
                                .iter()
                                .map(|&(ts, voter)| {
                                    Json::Arr(vec![Json::num(ts as f64), Json::num(voter as f64)])
                                })
                                .collect(),
                        ),
                    ),
                ];
                if let Some(now) = now {
                    fields.push(("now".to_owned(), Json::num(*now as f64)));
                }
                Json::Obj(fields)
            }
            Self::Forecast {
                cascade,
                hours,
                distances,
                models,
                through,
            } => {
                let mut fields = vec![
                    ("type".to_owned(), Json::str("forecast")),
                    ("cascade".to_owned(), Json::str(cascade.clone())),
                    (
                        "hours".to_owned(),
                        Json::Arr(hours.iter().map(|&h| Json::num(f64::from(h))).collect()),
                    ),
                ];
                if let Some(distances) = distances {
                    fields.push((
                        "distances".to_owned(),
                        Json::Arr(distances.iter().map(|&d| Json::num(f64::from(d))).collect()),
                    ));
                }
                if let Some(models) = models {
                    fields.push((
                        "models".to_owned(),
                        Json::Arr(models.iter().map(|m| Json::str(m.clone())).collect()),
                    ));
                }
                if let Some(through) = through {
                    fields.push(("through".to_owned(), Json::num(f64::from(*through))));
                }
                Json::Obj(fields)
            }
            Self::Stats => Json::Obj(vec![("type".to_owned(), Json::str("stats"))]),
            Self::Snapshot { cascade } => Json::Obj(vec![
                ("type".to_owned(), Json::str("snapshot")),
                ("cascade".to_owned(), Json::str(cascade.clone())),
            ]),
            Self::Restore { snapshot } => Json::Obj(vec![
                ("type".to_owned(), Json::str("restore")),
                ("snapshot".to_owned(), Json::str(snapshot.clone())),
            ]),
            Self::Cascades => Json::Obj(vec![("type".to_owned(), Json::str("cascades"))]),
            Self::Checksums => Json::Obj(vec![("type".to_owned(), Json::str("checksums"))]),
            Self::Evict { cascade } => Json::Obj(vec![
                ("type".to_owned(), Json::str("evict")),
                ("cascade".to_owned(), Json::str(cascade.clone())),
            ]),
            Self::Batch { requests } => Json::Obj(vec![
                ("type".to_owned(), Json::str("batch")),
                ("requests".to_owned(), Json::Arr(requests.clone())),
            ]),
            Self::Metrics => Json::Obj(vec![("type".to_owned(), Json::str("metrics"))]),
            Self::Ring { version } => Json::Obj(vec![
                ("type".to_owned(), Json::str("ring")),
                ("version".to_owned(), Json::num(*version as f64)),
            ]),
        }
    }
}

/// Builds the uniform error response line.
#[must_use]
pub fn error_response(message: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(false)),
        ("error".to_owned(), Json::str(message)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_round_trips_through_its_wire_form() {
        let requests = [
            Request::Open {
                cascade: "c1".into(),
                initiator: Some(17),
                story: None,
                metric: OpenMetric::Hops { max_hops: 5 },
                horizon: 24,
                submit_time: Some(1_244_000_000),
                regime: Some("broadcast".into()),
            },
            Request::Open {
                cascade: "c2".into(),
                initiator: None,
                story: Some(1),
                metric: OpenMetric::Hops { max_hops: 4 },
                horizon: 6,
                submit_time: None,
                regime: None,
            },
            Request::Open {
                cascade: "c3".into(),
                initiator: None,
                story: Some(2),
                metric: OpenMetric::Interest {
                    groups: 5,
                    strategy: GroupingStrategy::EqualWidth,
                },
                horizon: 12,
                submit_time: None,
                regime: None,
            },
            Request::Open {
                cascade: "c4".into(),
                initiator: Some(3),
                story: None,
                metric: OpenMetric::Interest {
                    groups: 4,
                    strategy: GroupingStrategy::Quantile,
                },
                horizon: 12,
                submit_time: Some(1_244_000_000),
                regime: None,
            },
            Request::Ingest {
                cascade: "c1".into(),
                votes: vec![(1_244_000_000, 17), (1_244_000_700, 4)],
                now: Some(1_244_003_600),
            },
            Request::Forecast {
                cascade: "c1".into(),
                hours: vec![3, 4, 6],
                distances: Some(vec![1, 2]),
                models: Some(vec!["naive".into(), "dl(d=0.01,K=25,r=hops)".into()]),
                through: Some(2),
            },
            Request::Stats,
            Request::Snapshot {
                cascade: "c1".into(),
            },
            Request::Restore {
                snapshot: "444c4d53".into(),
            },
            Request::Cascades,
            Request::Checksums,
            Request::Evict {
                cascade: "c1".into(),
            },
            Request::Metrics,
            Request::Ring { version: 7 },
            Request::Batch {
                requests: vec![
                    Request::Ingest {
                        cascade: "c1".into(),
                        votes: vec![(1_244_000_000, 17)],
                        now: None,
                    }
                    .to_json(),
                    Request::Forecast {
                        cascade: "c1".into(),
                        hours: vec![2],
                        distances: None,
                        models: None,
                        through: Some(1),
                    }
                    .to_json(),
                ],
            },
        ];
        for request in requests {
            let line = request.to_json().to_string();
            let parsed = Request::parse(&line).unwrap_or_else(|e| panic!("`{line}`: {e}"));
            assert_eq!(parsed, request, "wire form `{line}`");
        }
    }

    #[test]
    fn defaults_fill_in() {
        let r = Request::parse(r#"{"type":"open","cascade":"x","initiator":3}"#).unwrap();
        assert_eq!(
            r,
            Request::Open {
                cascade: "x".into(),
                initiator: Some(3),
                story: None,
                metric: OpenMetric::Hops { max_hops: 5 },
                horizon: 50,
                submit_time: None,
                regime: None,
            }
        );
        let r = Request::parse(r#"{"type":"open","cascade":"x","story":1,"metric":"interest"}"#)
            .unwrap();
        assert_eq!(
            r,
            Request::Open {
                cascade: "x".into(),
                initiator: None,
                story: Some(1),
                metric: OpenMetric::Interest {
                    groups: 5,
                    strategy: GroupingStrategy::EqualWidth,
                },
                horizon: 50,
                submit_time: None,
                regime: None,
            }
        );
        let r = Request::parse(r#"{"type":"forecast","cascade":"x","hours":[2]}"#).unwrap();
        assert_eq!(
            r,
            Request::Forecast {
                cascade: "x".into(),
                hours: vec![2],
                distances: None,
                models: None,
                through: None,
            }
        );
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for bad in [
            "not json",
            "{}",
            r#"{"type":"warp"}"#,
            r#"{"type":"open"}"#,
            r#"{"type":"ingest","cascade":"x","votes":[[1]]}"#,
            r#"{"type":"ingest","cascade":"x","votes":[["a",2]]}"#,
            r#"{"type":"forecast","cascade":"x","hours":"all"}"#,
            r#"{"type":"forecast","cascade":"x","hours":[-1]}"#,
            r#"{"type":"open","cascade":"x","horizon":"soon"}"#,
            r#"{"type":"open","cascade":"x","initiator":3,"regime":7}"#,
            r#"{"type":"open","cascade":"x","story":1,"metric":"euclidean"}"#,
            r#"{"type":"open","cascade":"x","story":1,"metric":"interest","strategy":"median"}"#,
            r#"{"type":"open","cascade":"x","story":1,"metric":"interest","strategy":1}"#,
            r#"{"type":"snapshot"}"#,
            r#"{"type":"restore"}"#,
            r#"{"type":"restore","snapshot":17}"#,
            r#"{"type":"evict"}"#,
            r#"{"type":"batch"}"#,
            r#"{"type":"batch","requests":[]}"#,
            r#"{"type":"batch","requests":"all"}"#,
            r#"{"type":"ring"}"#,
            r#"{"type":"ring","version":-1}"#,
        ] {
            assert!(
                matches!(Request::parse(bad), Err(ServeError::Protocol(_))),
                "`{bad}` should be a protocol error"
            );
        }
    }

    #[test]
    fn trace_ids_ride_along_without_affecting_parsing() {
        let (request, trace) =
            Request::parse_with_trace(r#"{"type":"stats","trace":"req-42"}"#).unwrap();
        assert_eq!(request, Request::Stats);
        assert_eq!(trace.as_deref(), Some("req-42"));
        // Absent or non-string traces are simply None.
        let (_, trace) = Request::parse_with_trace(r#"{"type":"stats"}"#).unwrap();
        assert_eq!(trace, None);
        let (_, trace) = Request::parse_with_trace(r#"{"type":"stats","trace":7}"#).unwrap();
        assert_eq!(trace, None);
        // The plain parser sees the identical request.
        assert_eq!(
            Request::parse(r#"{"type":"stats","trace":"req-42"}"#).unwrap(),
            Request::Stats
        );
    }

    #[test]
    fn error_response_shape() {
        assert_eq!(
            error_response("boom").to_string(),
            r#"{"ok":false,"error":"boom"}"#
        );
    }
}
