//! The event-driven TCP front end: a hand-rolled, std-only readiness
//! reactor.
//!
//! The build environment is std-only (no `mio`, no `libc`), so there is
//! no `poll(2)` to block on. The reactor gets the same effect from
//! nonblocking sockets plus a bounded backoff: a blocking accept loop
//! hands each connection to one of a fixed pool of I/O workers
//! (round-robin), and every worker level-polls its share of the
//! connections — drain readable bytes, cut complete requests out of the
//! per-connection buffer, answer through the shared
//! [`LineService`], queue the bytes, flush what the socket will take.
//! A pass that moves no bytes parks the worker for a few hundred
//! microseconds (or until the acceptor unparks it with a new
//! connection), which bounds idle CPU without giving up sub-millisecond
//! wake-up under load.
//!
//! The unit of work is one *complete request*, never one connection:
//! thousands of mostly-idle connections cost two buffers each, not a
//! thread each, and a burst of pipelined requests on one connection is
//! answered in one pass with one write. Request handling itself runs
//! inline on the worker — the handler fans heavy fits out to the
//! work-stealing pool in `dlm_numerics`, so I/O workers sized to the
//! machine keep every core busy without a second queueing layer.
//!
//! Framing matches the legacy front end exactly: connections start in
//! JSON-lines mode, and a `hello` negotiation (see [`crate::wire`])
//! switches them to length-prefixed binary frames mid-stream, pipelined
//! bytes included.
//!
//! [`LineService`]: crate::server::LineService

use crate::protocol::error_response;
use crate::server::{LineService, MAX_LINE_BYTES};
use crate::telemetry::{ReactorWorkerMetrics, WireMetrics};
use crate::wire::{self, Transport};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle worker parks between readiness passes. Small enough
/// to stay invisible next to a forecast's compute, large enough that an
/// idle reactor burns no measurable CPU.
const IDLE_PARK: Duration = Duration::from_micros(500);

/// Per-pass read chunk.
const READ_CHUNK: usize = 64 * 1024;

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet cut into complete requests.
    rbuf: Vec<u8>,
    /// Bytes queued to send, from `wpos` on.
    wbuf: Vec<u8>,
    wpos: usize,
    transport: Transport,
    /// The peer half-closed (EOF) or the protocol decided to hang up;
    /// flush what is queued, then drop.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            transport: Transport::Lines,
            closing: false,
        }
    }

    fn queue_line(&mut self, line: &str) {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
    }

    fn queue_frame(&mut self, payload: &[u8]) {
        wire::frame_into(payload, &mut self.wbuf);
    }
}

/// What one pump pass decided about a connection.
enum Pump {
    /// Keep the connection; `true` when any bytes moved.
    Keep(bool),
    /// Drop the connection now.
    Drop,
}

/// The reactor's control block, owned by `DlmServer`.
#[derive(Debug)]
pub(crate) struct ReactorHandle {
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    /// Stops the accept loop, wakes every worker, and joins the pool.
    /// Workers drop their connections outright — reactor shutdown is
    /// teardown, not graceful drain, matching the legacy front end.
    pub(crate) fn shutdown(&mut self, addr: SocketAddr) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            worker.thread().unpark();
            let _ = worker.join();
        }
    }
}

/// Sizes the worker pool: an explicit `io_threads`, or one worker per
/// available core (capped — beyond that the workers just contend on the
/// accept fan-in for the workloads this serves).
fn pool_size(io_threads: usize) -> usize {
    if io_threads > 0 {
        return io_threads;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .clamp(2, 16)
}

/// Spawns the reactor over an already-bound listener.
pub(crate) fn spawn<S: LineService>(
    listener: TcpListener,
    state: Arc<S>,
    io_threads: usize,
) -> ReactorHandle {
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers_n = pool_size(io_threads);
    let mut inboxes: Vec<Arc<Mutex<Vec<TcpStream>>>> = Vec::with_capacity(workers_n);
    let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(workers_n);
    // Per-worker `accepted` counters stay with the acceptor; the rest of
    // each worker's handles move into its loop. With no registry (plain
    // `LineService` impls) the whole telemetry layer compiles out to
    // `None` checks.
    let mut accepted: Vec<Option<dlm_obs::Counter>> = Vec::with_capacity(workers_n);
    for worker_id in 0..workers_n {
        let inbox: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        inboxes.push(Arc::clone(&inbox));
        let metrics = state
            .metrics_registry()
            .map(|r| (ReactorWorkerMetrics::new(r, worker_id), WireMetrics::new(r)));
        accepted.push(metrics.as_ref().map(|(m, _)| m.accepted.clone()));
        let state = Arc::clone(&state);
        let shutdown = Arc::clone(&shutdown);
        workers.push(std::thread::spawn(move || {
            worker_loop(state.as_ref(), &inbox, &shutdown, metrics.as_ref());
        }));
    }

    let accept_shutdown = Arc::clone(&shutdown);
    let worker_threads: Vec<std::thread::Thread> =
        workers.iter().map(|w| w.thread().clone()).collect();
    let accept_handle = std::thread::spawn(move || {
        let mut next = 0usize;
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let worker = next % inboxes.len();
            next = next.wrapping_add(1);
            if let Some(counter) = &accepted[worker] {
                counter.inc();
            }
            inboxes[worker]
                .lock()
                .expect("reactor inbox poisoned")
                .push(stream);
            worker_threads[worker].unpark();
        }
    });

    ReactorHandle {
        shutdown,
        accept_handle: Some(accept_handle),
        workers,
    }
}

/// One I/O worker: level-polls its connections until shutdown.
fn worker_loop<S: LineService>(
    state: &S,
    inbox: &Mutex<Vec<TcpStream>>,
    shutdown: &AtomicBool,
    metrics: Option<&(ReactorWorkerMetrics, WireMetrics)>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return; // drop all connections
        }
        {
            let mut inbox = inbox.lock().expect("reactor inbox poisoned");
            if let Some((worker, _)) = metrics {
                worker.inbox_depth.set(inbox.len() as i64);
            }
            conns.extend(inbox.drain(..).map(Conn::new));
        }
        let mut progress = false;
        let sweep_started = (metrics.is_some() && !conns.is_empty()).then(Instant::now);
        let wire_metrics = metrics.map(|(_, wire)| wire);
        conns.retain_mut(|conn| match pump(state, conn, &mut chunk, wire_metrics) {
            Pump::Keep(moved) => {
                progress |= moved;
                true
            }
            Pump::Drop => false,
        });
        if let Some((worker, _)) = metrics {
            if let Some(started) = sweep_started {
                worker.sweep.observe_duration(started.elapsed());
            }
            worker.active.set(conns.len() as i64);
        }
        if !progress {
            if let Some((worker, _)) = metrics {
                worker.parks.inc();
            }
            // Nothing moved: sleep until the acceptor unparks us or the
            // park times out (bounding added latency for data that
            // arrives while parked).
            std::thread::park_timeout(IDLE_PARK);
        } else if let Some((worker, _)) = metrics {
            worker.wakes.inc();
        }
    }
}

/// One readiness pass over one connection: flush, read, parse+handle,
/// flush again so same-pass responses leave immediately.
fn pump<S: LineService>(
    state: &S,
    conn: &mut Conn,
    chunk: &mut [u8],
    wire_metrics: Option<&WireMetrics>,
) -> Pump {
    let mut moved = false;
    match flush_writes(conn) {
        Ok(m) => moved |= m,
        Err(()) => return Pump::Drop,
    }
    if conn.closing {
        // Read side is done; once the write buffer drains, hang up.
        return if conn.wpos >= conn.wbuf.len() {
            Pump::Drop
        } else {
            Pump::Keep(moved)
        };
    }
    loop {
        match conn.stream.read(chunk) {
            Ok(0) => {
                conn.closing = true;
                break;
            }
            Ok(n) => {
                if let Some(wire) = wire_metrics {
                    wire.add_rx(conn.transport, n);
                }
                conn.rbuf.extend_from_slice(&chunk[..n]);
                moved = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Pump::Drop,
        }
    }
    if drain_requests(state, conn, wire_metrics).is_err() {
        conn.closing = true;
    }
    match flush_writes(conn) {
        Ok(m) => moved |= m,
        Err(()) => return Pump::Drop,
    }
    if conn.closing && conn.wpos >= conn.wbuf.len() {
        return Pump::Drop;
    }
    Pump::Keep(moved)
}

/// Writes as much of the queued bytes as the socket will take.
/// `Ok(true)` when bytes moved; `Err` on a dead socket.
fn flush_writes(conn: &mut Conn) -> std::result::Result<bool, ()> {
    let mut moved = false;
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(()),
            Ok(n) => {
                conn.wpos += n;
                moved = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(()),
        }
    }
    if conn.wpos >= conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    Ok(moved)
}

/// Cuts every complete request out of the receive buffer and queues its
/// response. `Err(())` means the connection must close after the queued
/// bytes flush (framing violation: oversize line/frame, bad UTF-8).
fn drain_requests<S: LineService>(
    state: &S,
    conn: &mut Conn,
    wire_metrics: Option<&WireMetrics>,
) -> std::result::Result<(), ()> {
    loop {
        match conn.transport {
            Transport::Lines => {
                let Some(newline) = conn.rbuf.iter().position(|&b| b == b'\n') else {
                    if conn.rbuf.len() > MAX_LINE_BYTES {
                        conn.queue_line(
                            &error_response("request line exceeds the size bound").to_string(),
                        );
                        return Err(());
                    }
                    return Ok(());
                };
                let raw: Vec<u8> = conn.rbuf.drain(..=newline).collect();
                let mut text = &raw[..raw.len() - 1];
                if text.last() == Some(&b'\r') {
                    text = &text[..text.len() - 1];
                }
                let Ok(line) = std::str::from_utf8(text) else {
                    conn.queue_line(&error_response("request line is not UTF-8").to_string());
                    return Err(());
                };
                if line.trim().is_empty() {
                    continue;
                }
                match wire::parse_hello(line) {
                    Some(Ok(transport)) => {
                        conn.queue_line(&wire::hello_response(transport));
                        conn.transport = transport;
                        // Pipelined bytes after the hello are parsed in
                        // the new framing on the next loop turn.
                    }
                    Some(Err(e)) => conn.queue_line(&error_response(&e.to_string()).to_string()),
                    None => {
                        let response = state.handle_line(line);
                        if let Some(wire) = wire_metrics {
                            wire.count_request(Transport::Lines);
                            wire.add_tx(Transport::Lines, response.len() + 1);
                        }
                        conn.queue_line(&response);
                    }
                }
            }
            Transport::Binary => match wire::try_extract_frame(&conn.rbuf) {
                Ok(None) => return Ok(()),
                Ok(Some((payload, consumed))) => {
                    let response = match wire::payload_to_line(&conn.rbuf[payload]) {
                        Ok(line) => state.handle_line(&line),
                        // Frame boundary intact: answer and carry on.
                        Err(e) => error_response(&e.to_string()).to_string(),
                    };
                    conn.rbuf.drain(..consumed);
                    if let Some(wire) = wire_metrics {
                        wire.count_request(Transport::Binary);
                        wire.add_tx(Transport::Binary, response.len() + wire::FRAME_HEADER_BYTES);
                    }
                    conn.queue_frame(response.as_bytes());
                }
                Err(e) => {
                    // Oversize declared length: the stream cannot be
                    // trusted past this header. Answer, then hang up.
                    conn.queue_frame(error_response(&e.to_string()).to_string().as_bytes());
                    return Err(());
                }
            },
        }
    }
}
