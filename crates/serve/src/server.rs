//! The online forecasting service: server state, the refit scheduler,
//! and the JSON-lines-over-TCP front end.
//!
//! [`ServerState`] is the transport-free core — requests in, response
//! lines out — so in-process embedding (examples, tests) and the TCP
//! front end ([`DlmServer`]) share one implementation. The serving path
//! is the exact code path of the batch [`EvaluationPipeline`]
//! counterpart: observations built from the same density matrices,
//! predictors built from the same [`ModelSpec`] registry, fits cached in
//! the same bounded [`FittedModelCache`] — which is what makes served
//! forecasts byte-identical to offline evaluation on the same prefix.
//!
//! ## Refit scheduling
//!
//! When an ingest batch closes one or more hours, the server enqueues
//! one fit job per registered model for each newly closed hour onto the
//! work-stealing executor in [`dlm_numerics::pool`] and stores the
//! outcomes in the cache. A subsequent `forecast` for those hours is
//! then a pure cache replay; a `forecast` that raced ahead of the
//! scheduler simply fits on demand through the same
//! [`FittedModelCache::get_or_fit`] path and gets the identical result.
//!
//! [`EvaluationPipeline`]: dlm_core::evaluate::EvaluationPipeline

use crate::error::{Result, ServeError};
use crate::json::Json;
use crate::live::LiveCascade;
use crate::protocol::{batch_response, error_response, OpenMetric, Request};
use crate::store::CascadeStore;
use crate::telemetry::{
    self, metrics_response, response_is_error, verb_label, RefitMetrics, RequestMetrics,
    WireMetrics, VERB_LABELS,
};
use crate::wire::{self, Transport};
use dlm_cascade::interest_groups::interest_groups;
use dlm_cluster::{hash64, hex, CascadeSnapshot};
use dlm_core::evaluate::{FitOutcome, FittedModelCache, Parallelism};
use dlm_core::predict::{DiffusionPredictor, GraphContext, Observation, PredictionRequest};
use dlm_core::registry::{ModelRegistry, ModelSpec};
use dlm_data::SyntheticWorld;
use dlm_graph::DiGraph;
use dlm_numerics::pool::parallel_map;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`ServerState`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The model lineup served by default (and refit on hour close).
    pub lineup: Vec<ModelSpec>,
    /// Bound on the fitted-model cache.
    pub cache_capacity: usize,
    /// Bound on the live-cascade store: opening a cascade past this
    /// bound evicts the least-recently-touched one.
    pub cascade_capacity: usize,
    /// Idle TTL for live cascades: a cascade untouched for longer than
    /// this is expired on the next store access. `None` disables expiry
    /// (the capacity bound still holds).
    pub cascade_ttl: Option<Duration>,
    /// Parallelism of the refit scheduler's fit fan-out.
    pub parallelism: Parallelism,
    /// Whether closing an hour schedules lineup refits eagerly. With
    /// `false`, fits happen lazily on the first forecast that needs
    /// them — same results, different latency profile.
    pub prewarm: bool,
    /// Directory for cascade snapshot persistence. With a directory
    /// configured, every cascade's full ingest state is written there
    /// (one `<hex id>.snap` file per cascade, atomically replaced) after
    /// each mutation, and existing snapshots are replayed at startup —
    /// a restarted server serves byte-identical forecasts with the same
    /// late-vote watermarks, no re-`open` and no vote replay required.
    ///
    /// The directory tracks the live store exactly: a cascade shed by
    /// the `cascade_capacity` bound or the `cascade_ttl` sweep takes
    /// its snapshot file with it (replay must not resurrect it), and
    /// startup fails fast when the directory holds more snapshots than
    /// `cascade_capacity` instead of silently dropping some of them
    /// mid-replay.
    pub snapshot_dir: Option<PathBuf>,
}

impl ServeConfig {
    /// Default bound on concurrently resident live cascades.
    pub const DEFAULT_CASCADE_CAPACITY: usize = 4096;
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            lineup: ModelSpec::default_lineup(),
            cache_capacity: FittedModelCache::DEFAULT_CAPACITY,
            cascade_capacity: Self::DEFAULT_CASCADE_CAPACITY,
            cascade_ttl: None,
            parallelism: Parallelism::Auto,
            prewarm: true,
            snapshot_dir: None,
        }
    }
}

/// One cascade under observation plus its optional graph context.
#[derive(Debug)]
struct Slot {
    live: LiveCascade,
    /// Follower graph + initiator for epidemic predictors.
    graph: Option<(Arc<DiGraph>, usize)>,
}

impl Slot {
    /// The observation over hours `1..=through` — the same window the
    /// offline `EvaluationCase::forecast(_, matrix, 1, through, _)`
    /// exposes to predictors. The matrix comes from the cascade's
    /// copy-on-close snapshot cache, so repeated forecasts at the same
    /// watermark re-derive nothing.
    fn observation(&mut self, through: u32) -> Result<Observation> {
        let matrix = self.live.matrix_snapshot(through)?;
        let hours: Vec<u32> = (1..=through).collect();
        let observation = Observation::from_matrix(&matrix, &hours)?;
        Ok(match &self.graph {
            Some((graph, initiator)) => observation.with_graph(GraphContext::new(
                Arc::clone(graph),
                *initiator,
                self.live.hour1_voters().to_vec(),
            )),
            None => observation,
        })
    }
}

/// The transport-free service core: owns the cascades, the model
/// lineup, and the bounded fitted-model cache.
#[derive(Debug)]
pub struct ServerState {
    /// (canonical spec string, predictor), in lineup order.
    models: Vec<(String, Box<dyn DiffusionPredictor>)>,
    registry: ModelRegistry,
    cache: FittedModelCache,
    parallelism: Parallelism,
    prewarm: bool,
    universe: Option<Universe>,
    /// Live cascades, bounded and TTL-swept; see [`crate::store`].
    /// Slots are `Arc<Mutex<_>>` so an in-flight request keeps its
    /// cascade alive across an eviction.
    cascades: CascadeStore<Arc<Mutex<Slot>>>,
    snapshot_dir: Option<PathBuf>,
    requests: AtomicU64,
    refit_jobs: AtomicU64,
    hours_closed: AtomicU64,
    /// The ring version last pushed by a routing tier (`ring` verb);
    /// `0` means never pushed, and `stats` omits the field entirely so
    /// a standalone server's responses are unchanged.
    ring_version: AtomicU64,
    /// Per-instance metrics registry plus the pre-registered hot-path
    /// handles. Per-instance (not a global static) because tests bind
    /// many servers in one process and their counters must not bleed.
    metrics_registry: dlm_obs::Registry,
    request_metrics: RequestMetrics,
    refit_metrics: RefitMetrics,
}

/// What the server knows about the social universe its cascades spread
/// over. A full synthetic world enables `open` by story ordinal and the
/// interest metric; a bare graph is enough for hop-metric opens by
/// explicit initiator — which is all the scenario factory and real-log
/// replay need, and spares every backend the cost (and the obligation)
/// of regenerating a world it never uses.
#[derive(Debug)]
enum Universe {
    /// Synthetic world plus its graph (shared, not re-cloned per open).
    /// Boxed: a world is hundreds of bytes, a bare graph handle is one
    /// pointer, and graph-only servers shouldn't pay the larger slot.
    World(Box<SyntheticWorld>, Arc<DiGraph>),
    /// Just a follower graph.
    Graph(Arc<DiGraph>),
}

impl Universe {
    fn graph(&self) -> &Arc<DiGraph> {
        match self {
            Self::World(_, graph) | Self::Graph(graph) => graph,
        }
    }

    fn world(&self) -> Option<&SyntheticWorld> {
        match self {
            Self::World(world, _) => Some(world),
            Self::Graph(_) => None,
        }
    }
}

impl ServerState {
    /// Creates a server core without a universe: cascades must be
    /// opened with an explicit initiator via [`ServerState::insert_cascade`]
    /// (protocol `open` needs at least a graph).
    ///
    /// # Errors
    ///
    /// Propagates registry construction errors for the configured
    /// lineup.
    pub fn new(config: ServeConfig) -> Result<Self> {
        Self::build(config, None)
    }

    /// Creates a server core around a synthetic world, enabling protocol
    /// `open` requests by story ordinal or explicit initiator.
    ///
    /// # Errors
    ///
    /// Propagates registry construction errors.
    pub fn with_world(config: ServeConfig, world: SyntheticWorld) -> Result<Self> {
        let graph = Arc::new(world.graph().clone());
        Self::build(config, Some(Universe::World(Box::new(world), graph)))
    }

    /// Creates a server core around a bare follower graph: protocol
    /// `open` works with an explicit `initiator` and the hop metric —
    /// the shape scenario replay and real-log (`--digg-dir`) replay
    /// use. Story-ordinal and interest-metric opens still require
    /// [`ServerState::with_world`].
    ///
    /// # Errors
    ///
    /// Propagates registry construction errors.
    pub fn with_graph(config: ServeConfig, graph: Arc<DiGraph>) -> Result<Self> {
        Self::build(config, Some(Universe::Graph(graph)))
    }

    fn build(config: ServeConfig, universe: Option<Universe>) -> Result<Self> {
        if config.lineup.is_empty() {
            return Err(ServeError::InvalidParameter {
                name: "lineup",
                reason: "need at least one model spec".into(),
            });
        }
        let registry = ModelRegistry::with_builtins();
        let models = config
            .lineup
            .iter()
            .map(|spec| Ok((spec.to_string(), registry.build(spec)?)))
            .collect::<Result<Vec<_>>>()?;
        let mut cascades = CascadeStore::new(config.cascade_capacity, config.cascade_ttl);
        if let Some(dir) = config.snapshot_dir.clone() {
            // A capacity- or TTL-shed cascade must take its snapshot
            // file with it, or a restart would resurrect state the
            // store already dropped. Best-effort: a missing file just
            // means nothing was persisted yet.
            cascades.set_shed_hook(move |id| {
                let _ = std::fs::remove_file(snapshot_path(&dir, id));
            });
        }
        let obs_registry = dlm_obs::Registry::new();
        let request_metrics = RequestMetrics::new(&obs_registry, "dlm", VERB_LABELS);
        let lineup_specs: Vec<String> = models.iter().map(|(s, _)| s.clone()).collect();
        let refit_metrics = RefitMetrics::new(&obs_registry, &lineup_specs);
        let state = Self {
            models,
            registry,
            cache: FittedModelCache::new(config.cache_capacity),
            parallelism: config.parallelism,
            prewarm: config.prewarm,
            universe,
            cascades,
            snapshot_dir: config.snapshot_dir,
            requests: AtomicU64::new(0),
            refit_jobs: AtomicU64::new(0),
            hours_closed: AtomicU64::new(0),
            ring_version: AtomicU64::new(0),
            metrics_registry: obs_registry,
            request_metrics,
            refit_metrics,
        };
        state.replay_snapshots()?;
        Ok(state)
    }

    /// Replays every `*.snap` file in the configured snapshot directory
    /// (in sorted filename order, so replay is deterministic) into the
    /// cascade store. Corrupt or inconsistent snapshots fail the build —
    /// silently dropping persisted cascade state would break the
    /// restart-identity guarantee — and so does a directory holding
    /// more snapshots than `cascade_capacity`, which would otherwise
    /// LRU-shed (and, with the shed hook, delete) persisted cascades
    /// mid-replay.
    fn replay_snapshots(&self) -> Result<()> {
        let Some(dir) = &self.snapshot_dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir)?;
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "snap"))
            .collect();
        if paths.len() > self.cascades.capacity() {
            return Err(ServeError::InvalidParameter {
                name: "snapshot_dir",
                reason: format!(
                    "{} snapshot files exceed cascade_capacity {}; raise the capacity \
                     or prune the directory instead of silently dropping persisted cascades",
                    paths.len(),
                    self.cascades.capacity()
                ),
            });
        }
        paths.sort();
        for path in paths {
            let bytes = std::fs::read(&path)?;
            let snap = CascadeSnapshot::decode(&bytes)?;
            let live = LiveCascade::from_snapshot(&snap)?;
            let graph = self.graph_context_for(snap.initiator)?;
            // Insert directly — re-persisting what was just read would
            // only churn the files.
            self.cascades
                .insert(snap.id.clone(), Arc::new(Mutex::new(Slot { live, graph })));
        }
        Ok(())
    }

    /// Resolves the graph context a snapshot's recorded initiator needs:
    /// hop-metric cascades carry `Some(initiator)` and require this
    /// server to share the origin's graph, or the epidemic predictors
    /// would silently serve different forecasts.
    fn graph_context_for(&self, initiator: Option<u64>) -> Result<Option<(Arc<DiGraph>, usize)>> {
        let Some(u) = initiator else { return Ok(None) };
        let graph =
            self.universe
                .as_ref()
                .map(Universe::graph)
                .ok_or(ServeError::InvalidParameter {
                    name: "snapshot",
                    reason: "snapshot carries a graph initiator but this server has no graph"
                        .into(),
                })?;
        let u = usize::try_from(u).map_err(|_| ServeError::InvalidParameter {
            name: "snapshot",
            reason: format!("initiator {u} does not fit usize"),
        })?;
        if u >= graph.node_count() {
            return Err(ServeError::InvalidParameter {
                name: "snapshot",
                reason: format!("initiator {u} outside graph of {}", graph.node_count()),
            });
        }
        Ok(Some((Arc::clone(graph), u)))
    }

    /// Writes `slot`'s snapshot into the configured snapshot directory
    /// (write-to-temp + rename, so a crash mid-write never leaves a
    /// torn file where replay would find it). A no-op without a
    /// configured directory. Callers hold the slot lock, which also
    /// serializes writers of the same cascade's file.
    fn persist(&self, id: &str, slot: &Slot) -> Result<()> {
        let Some(dir) = &self.snapshot_dir else {
            return Ok(());
        };
        let initiator = slot.graph.as_ref().map(|&(_, u)| u as u64);
        let bytes = slot.live.to_snapshot(id, initiator).encode();
        let path = snapshot_path(dir, id);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// The canonical spec strings of the served lineup, in order.
    #[must_use]
    pub fn lineup(&self) -> Vec<String> {
        self.models.iter().map(|(s, _)| s.clone()).collect()
    }

    /// The fitted-model cache (lifetime counters, bound).
    #[must_use]
    pub fn cache(&self) -> &FittedModelCache {
        &self.cache
    }

    /// Registers a cascade built by the caller (any distance metric,
    /// any group construction), with optional graph context for the
    /// epidemic predictors. Inserting past the configured cascade
    /// capacity evicts the least-recently-touched cascade.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateCascade`] when the id is taken.
    pub fn insert_cascade(
        &self,
        id: impl Into<String>,
        live: LiveCascade,
        graph: Option<(Arc<DiGraph>, usize)>,
    ) -> Result<()> {
        let id = id.into();
        let slot = Arc::new(Mutex::new(Slot { live, graph }));
        if !self.cascades.insert(id.clone(), Arc::clone(&slot)) {
            return Err(ServeError::DuplicateCascade(id));
        }
        let guard = slot.lock().expect("cascade slot poisoned");
        self.persist(&id, &guard)
    }

    /// Looks up a live cascade, touching its recency.
    fn slot(&self, cascade: &str) -> Result<Arc<Mutex<Slot>>> {
        self.cascades
            .get(cascade)
            .ok_or_else(|| ServeError::UnknownCascade(cascade.to_owned()))
    }

    /// Handles one protocol line, returning the response line (without
    /// the trailing newline). Never panics on malformed input — protocol
    /// and domain errors become `{"ok":false,...}` responses.
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let (verb, trace, response) = match Request::parse_with_trace(line) {
            // Batches are answered at the line layer: sub-responses are
            // composed as strings so the wrapper is byte-identical to
            // what a routing tier splices from relayed backend lines.
            Ok((Request::Batch { requests }, trace)) => {
                ("batch", trace, self.handle_batch(&requests))
            }
            Ok((request, trace)) => (
                verb_label(&request),
                trace,
                self.handle(&request)
                    .unwrap_or_else(|e| error_response(&e.to_string()))
                    .to_string(),
            ),
            Err(e) => ("invalid", None, error_response(&e.to_string()).to_string()),
        };
        let elapsed = started.elapsed();
        self.request_metrics
            .count(verb, response_is_error(&response));
        self.request_metrics.observe_service(verb, elapsed);
        if elapsed >= telemetry::SLOW_REQUEST && dlm_obs::enabled(dlm_obs::Level::Warn) {
            dlm_obs::log(
                dlm_obs::Level::Warn,
                "dlm-serve",
                &format!(
                    "slow request verb={verb} micros={} trace={}",
                    elapsed.as_micros(),
                    trace.as_deref().unwrap_or("-"),
                ),
            );
        }
        response
    }

    /// Answers a `batch` line: each item is parsed and handled
    /// independently, in order, and the serialized sub-responses are
    /// spliced into one [`batch_response`] line. Only the
    /// cascade-scoped data verbs may ride in a batch — admin verbs
    /// (`stats`, `restore`, `cascades`, `evict`) and nested batches get
    /// per-item errors, keeping batch semantics identical on a single
    /// server and across the routing tier.
    fn handle_batch(&self, items: &[Json]) -> String {
        let results: Vec<String> = items
            .iter()
            .map(|item| {
                let mut verb = "invalid";
                let result = Request::from_value(item)
                    .and_then(|request| {
                        verb = verb_label(&request);
                        match request {
                            Request::Open { .. }
                            | Request::Ingest { .. }
                            | Request::Forecast { .. }
                            | Request::Snapshot { .. } => self.handle(&request),
                            _ => Err(ServeError::Protocol(
                                "batch items must be open/ingest/forecast/snapshot".into(),
                            )),
                        }
                    })
                    .unwrap_or_else(|e| error_response(&e.to_string()))
                    .to_string();
                // Count each item under its own verb: per-verb counters
                // track logical operations, whether they rode a batch
                // or their own line.
                self.request_metrics.count(verb, response_is_error(&result));
                result
            })
            .collect();
        batch_response(&results)
    }

    /// Handles one parsed request.
    ///
    /// # Errors
    ///
    /// Returns the domain error the request ran into; the TCP layer
    /// renders it as an `{"ok":false,...}` line.
    pub fn handle(&self, request: &Request) -> Result<Json> {
        match request {
            Request::Open {
                cascade,
                initiator,
                story,
                metric,
                horizon,
                submit_time,
                regime,
            } => self.handle_open(
                cascade,
                *initiator,
                *story,
                *metric,
                *horizon,
                *submit_time,
                regime.as_deref(),
            ),
            Request::Ingest {
                cascade,
                votes,
                now,
            } => self.handle_ingest(cascade, votes, *now),
            Request::Forecast {
                cascade,
                hours,
                distances,
                models,
                through,
            } => self.handle_forecast(
                cascade,
                hours,
                distances.as_deref(),
                models.as_deref(),
                *through,
            ),
            Request::Stats => Ok(self.handle_stats()),
            Request::Snapshot { cascade } => self.handle_snapshot(cascade),
            Request::Restore { snapshot } => self.handle_restore(snapshot),
            Request::Cascades => Ok(self.handle_cascades()),
            Request::Checksums => self.handle_checksums(),
            Request::Evict { cascade } => self.handle_evict(cascade),
            Request::Metrics => Ok(self.handle_metrics()),
            Request::Ring { version } => Ok(self.handle_ring(*version)),
            // Reachable only through direct `handle` calls —
            // `handle_line` intercepts batches before this dispatch.
            Request::Batch { .. } => Err(ServeError::Protocol(
                "batch requests are answered at the line layer".into(),
            )),
        }
    }

    /// The `metrics` verb: refreshes the scrape-time derived gauges
    /// (cache and store occupancy — state that lives in its own
    /// structures rather than in hot-path counters), freezes the
    /// registry, and renders the response.
    fn handle_metrics(&self) -> Json {
        let cache = self.cache.stats();
        let store = self.cascades.stats();
        let set = |name: &str, v: i64| self.metrics_registry.gauge(name, &[]).set(v);
        set("dlm_cache_hits", cache.hits as i64);
        set("dlm_cache_misses", cache.misses as i64);
        set("dlm_cache_evictions", cache.evictions as i64);
        set("dlm_cache_entries", self.cache.len() as i64);
        set("dlm_cascades_resident", self.cascades.len() as i64);
        set("dlm_cascade_evictions", store.evictions as i64);
        set("dlm_cascade_expirations", store.expirations as i64);
        set(
            "dlm_hours_closed",
            self.hours_closed.load(Ordering::Relaxed) as i64,
        );
        metrics_response(&self.metrics_registry.snapshot())
    }

    /// The `ring` verb: a routing tier pushing its committed topology
    /// version. Echoed back by `stats` so the router's scatter-gather
    /// can detect a backend that missed a rebalance.
    fn handle_ring(&self, version: u64) -> Json {
        let previous = self.ring_version.swap(version, Ordering::Relaxed);
        if previous != version && dlm_obs::enabled(dlm_obs::Level::Info) {
            dlm_obs::log(
                dlm_obs::Level::Info,
                "dlm-serve",
                &format!("ring version {previous} -> {version}"),
            );
        }
        Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("ring_version".to_owned(), Json::num(version as f64)),
        ])
    }

    /// This instance's metrics registry — how embedding tests and the
    /// TCP front ends (which register transport metrics) reach the
    /// telemetry without a global static.
    #[must_use]
    pub fn metrics_registry(&self) -> &dlm_obs::Registry {
        &self.metrics_registry
    }

    fn handle_snapshot(&self, cascade: &str) -> Result<Json> {
        let slot = self.slot(cascade)?;
        let slot = slot.lock().expect("cascade slot poisoned");
        let initiator = slot.graph.as_ref().map(|&(_, u)| u as u64);
        let snap = slot.live.to_snapshot(cascade, initiator);
        Ok(Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("cascade".to_owned(), Json::str(cascade)),
            (
                "format".to_owned(),
                Json::num(f64::from(dlm_cluster::FORMAT_VERSION)),
            ),
            (
                "closed_hours".to_owned(),
                Json::num(f64::from(slot.live.closed_hours())),
            ),
            (
                "snapshot".to_owned(),
                Json::Str(hex::encode(&snap.encode())),
            ),
        ]))
    }

    fn handle_restore(&self, snapshot: &str) -> Result<Json> {
        let bytes = hex::decode(snapshot)?;
        let snap = CascadeSnapshot::decode(&bytes)?;
        let live = LiveCascade::from_snapshot(&snap)?;
        let graph = self.graph_context_for(snap.initiator)?;
        let closed = live.closed_hours();
        let counted = live.counted_votes();
        self.insert_cascade(snap.id.clone(), live, graph)?;
        Ok(Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("cascade".to_owned(), Json::str(snap.id)),
            ("closed_hours".to_owned(), Json::num(f64::from(closed))),
            ("counted".to_owned(), Json::num(counted as f64)),
        ]))
    }

    fn handle_cascades(&self) -> Json {
        Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            (
                "cascades".to_owned(),
                Json::Arr(self.cascades.ids().into_iter().map(Json::Str).collect()),
            ),
        ])
    }

    /// The `checksums` verb: one content hash per resident cascade, in
    /// id order. Each hash is `hash64` over the cascade's encoded
    /// snapshot bytes — the same bytes `snapshot`/`restore` carry — so
    /// two replicas agree on a checksum exactly when a restore from one
    /// would be a byte-identical no-op on the other. Hashes ride as
    /// 16-digit hex strings because JSON numbers are doubles (exact
    /// only to 2^53) and a truncated `u64` cannot be compared.
    fn handle_checksums(&self) -> Result<Json> {
        let mut entries = Vec::new();
        for id in self.cascades.ids() {
            // A cascade may be evicted between `ids()` and `slot()`;
            // skipping it is correct — it is no longer resident.
            let Ok(slot) = self.slot(&id) else { continue };
            let slot = slot.lock().expect("cascade slot poisoned");
            let initiator = slot.graph.as_ref().map(|&(_, u)| u as u64);
            let digest = hash64(&slot.live.to_snapshot(&id, initiator).encode());
            drop(slot);
            entries.push(Json::Arr(vec![
                Json::Str(id),
                Json::Str(format!("{digest:016x}")),
            ]));
        }
        Ok(Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("count".to_owned(), Json::num(entries.len() as f64)),
            ("checksums".to_owned(), Json::Arr(entries)),
        ]))
    }

    fn handle_evict(&self, cascade: &str) -> Result<Json> {
        let evicted = self.cascades.remove(cascade);
        if evicted {
            if let Some(dir) = &self.snapshot_dir {
                // Missing-file errors are fine (nothing persisted yet);
                // anything else would leave a ghost cascade for replay.
                if let Err(e) = std::fs::remove_file(snapshot_path(dir, cascade)) {
                    if e.kind() != std::io::ErrorKind::NotFound {
                        return Err(e.into());
                    }
                }
            }
        }
        Ok(Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("cascade".to_owned(), Json::str(cascade)),
            ("evicted".to_owned(), Json::Bool(evicted)),
        ]))
    }

    #[allow(clippy::too_many_arguments)] // mirrors the wire verb's field set
    fn handle_open(
        &self,
        cascade: &str,
        initiator: Option<usize>,
        story: Option<u32>,
        metric: OpenMetric,
        horizon: u32,
        submit_time: Option<u64>,
        regime: Option<&str>,
    ) -> Result<Json> {
        let universe = self.universe.as_ref().ok_or(ServeError::InvalidParameter {
            name: "open",
            reason: "this server has no graph; register cascades with insert_cascade".into(),
        })?;
        let graph = universe.graph();
        // Story ordinals and the interest metric are defined in terms
        // of the synthetic world; everything else needs only the graph.
        let world_for = |what: &str| {
            universe
                .world()
                .ok_or_else(|| ServeError::InvalidParameter {
                    name: "open",
                    reason: format!(
                        "{what} requires a synthetic world, this server has only a graph"
                    ),
                })
        };
        let initiator = match (initiator, story) {
            (Some(u), None) => {
                if u >= graph.node_count() {
                    return Err(ServeError::InvalidParameter {
                        name: "initiator",
                        reason: format!("user {u} outside graph of {}", graph.node_count()),
                    });
                }
                u
            }
            (None, Some(0)) => {
                return Err(ServeError::InvalidParameter {
                    name: "story",
                    reason: "story ordinals are 1-based".into(),
                })
            }
            (None, Some(s)) => world_for("`story`")?.story_initiator((s - 1) as usize)?,
            _ => {
                return Err(ServeError::Protocol(
                    "open needs exactly one of `initiator` or `story`".into(),
                ))
            }
        };
        // Simulated cascades all submit at the simulator's fixed epoch;
        // explicit submit_time overrides for replayed real logs.
        let submit_time = submit_time.unwrap_or(dlm_data::simulate::SIMULATED_SUBMIT_TIME);
        let (live, graph_context, metric_name) = match metric {
            OpenMetric::Hops { max_hops } => (
                LiveCascade::for_hops(graph.as_ref(), initiator, max_hops, submit_time, horizon)?,
                // Epidemic predictors walk the follower graph from the
                // hour-1 seed set; only the hop metric gives them that.
                Some((Arc::clone(graph), initiator)),
                "hops",
            ),
            OpenMetric::Interest { groups, strategy } => {
                let world = world_for("`metric: interest`")?;
                let groups = interest_groups(
                    world.profile(),
                    initiator,
                    world.user_count(),
                    groups,
                    strategy,
                )?;
                (
                    LiveCascade::new(&groups, submit_time, horizon)?,
                    None,
                    "interest",
                )
            }
        };
        let distances = live.max_distance();
        self.insert_cascade(cascade, live, graph_context)?;
        if let Some(regime) = regime {
            // Per-regime open counts for soak runs. Sanitized so a
            // hostile tag can't explode series cardinality shapes or
            // corrupt the exposition; each distinct input still maps
            // to a stable label.
            self.metrics_registry
                .counter(
                    "dlm_cascades_opened_total",
                    &[("regime", &dlm_obs::sanitize_label_value(regime))],
                )
                .inc();
        }
        Ok(Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("cascade".to_owned(), Json::str(cascade)),
            ("metric".to_owned(), Json::str(metric_name)),
            ("initiator".to_owned(), Json::num(initiator as f64)),
            ("distances".to_owned(), Json::num(f64::from(distances))),
            ("horizon".to_owned(), Json::num(f64::from(horizon))),
            ("submit_time".to_owned(), Json::num(submit_time as f64)),
        ]))
    }

    fn handle_ingest(
        &self,
        cascade: &str,
        votes: &[(u64, usize)],
        now: Option<u64>,
    ) -> Result<Json> {
        // Apply the batch under the table lock (cheap integer updates),
        // and capture the observations for any newly closed hours so
        // the expensive refits run after the lock is dropped. A vote
        // rejected mid-batch (e.g. a late arrival) stops the batch at
        // that vote per the documented partial-apply contract — but the
        // accounting and refit scheduling for hours the applied prefix
        // already closed must still happen, or the scheduler and the
        // `hours_closed` counter silently fall out of step.
        let mut batch_error: Option<ServeError> = None;
        let slot = self.slot(cascade)?;
        let (before, after, counted, ignored, refit_observations, persisted) = {
            let mut slot = slot.lock().expect("cascade slot poisoned");
            let slot = &mut *slot;
            let before = slot.live.closed_hours();
            for &(timestamp, voter) in votes {
                if let Err(e) = slot.live.ingest(dlm_data::Vote {
                    timestamp,
                    voter,
                    story: 0,
                }) {
                    batch_error = Some(e);
                    break;
                }
            }
            if batch_error.is_none() {
                if let Some(now) = now {
                    slot.live.advance_to(now);
                }
            }
            let after = slot.live.closed_hours();
            let refit_observations: Vec<Observation> = if self.prewarm {
                (before + 1..=after)
                    .map(|k| slot.observation(k))
                    .collect::<Result<_>>()?
            } else {
                Vec::new()
            };
            // Persist even when the batch stopped early: the applied
            // prefix is real state a restart must not lose.
            let persisted = self.persist(cascade, slot);
            (
                before,
                after,
                slot.live.counted_votes(),
                slot.live.ignored_votes(),
                refit_observations,
                persisted,
            )
        };
        self.hours_closed
            .fetch_add(u64::from(after - before), Ordering::Relaxed);
        for observation in &refit_observations {
            self.refit(observation);
        }
        if let Some(e) = batch_error {
            return Err(e);
        }
        persisted?;
        Ok(Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("cascade".to_owned(), Json::str(cascade)),
            ("closed_hours".to_owned(), Json::num(f64::from(after))),
            (
                "newly_closed".to_owned(),
                Json::num(f64::from(after - before)),
            ),
            ("counted".to_owned(), Json::num(counted as f64)),
            ("ignored".to_owned(), Json::num(ignored as f64)),
        ]))
    }

    /// The refit scheduler: one fit job per lineup model on the
    /// work-stealing pool, outcomes cached. Already-cached fits are
    /// replayed, not recomputed.
    fn refit(&self, observation: &Observation) {
        self.refit_jobs
            .fetch_add(self.models.len() as u64, Ordering::Relaxed);
        self.refit_metrics
            .fits_started
            .add(self.models.len() as u64);
        let outcomes = parallel_map(self.parallelism, &self.models, |i, (spec, predictor)| {
            let started = Instant::now();
            let outcome = self.cache.get_or_fit(predictor.as_ref(), spec, observation);
            // Cache hits land in the lowest buckets; the histogram is a
            // service-time distribution, not a pure solver profile.
            self.refit_metrics.lineup_fit[i].observe_duration(started.elapsed());
            outcome
        });
        self.refit_metrics.fits_completed.add(outcomes.len() as u64);
        self.refit_metrics
            .fit_failures
            .add(outcomes.iter().filter(|o| o.is_err()).count() as u64);
    }

    fn handle_forecast(
        &self,
        cascade: &str,
        hours: &[u32],
        distances: Option<&[u32]>,
        models: Option<&[String]>,
        through: Option<u32>,
    ) -> Result<Json> {
        let slot = self.slot(cascade)?;
        let (observation, max_distance, through) = {
            let mut slot = slot.lock().expect("cascade slot poisoned");
            let through = through.unwrap_or_else(|| slot.live.closed_hours());
            (
                slot.observation(through)?,
                slot.live.max_distance(),
                through,
            )
        };
        let distances: Vec<u32> = match distances {
            Some(d) => d.to_vec(),
            None => (1..=max_distance).collect(),
        };
        let request = PredictionRequest::new(distances.clone(), hours.to_vec())?;

        // Resolve the served model set: lineup entries are prebuilt;
        // ad-hoc spec strings build through the registry and key the
        // cache by their canonical form. `adhoc` owns the built
        // predictors; `picks` records where each requested model lives.
        enum Pick {
            Lineup(usize),
            Adhoc(usize),
        }
        let mut adhoc: Vec<(String, Box<dyn DiffusionPredictor>)> = Vec::new();
        let picks: Vec<Pick> = match models {
            None => (0..self.models.len()).map(Pick::Lineup).collect(),
            Some(names) => names
                .iter()
                .map(|name| {
                    if let Some(i) = self.models.iter().position(|(s, _)| s == name) {
                        Ok(Pick::Lineup(i))
                    } else {
                        let spec: ModelSpec = name
                            .parse()
                            .map_err(|e: dlm_core::DlError| ServeError::Protocol(e.to_string()))?;
                        adhoc.push((spec.to_string(), self.registry.build(&spec)?));
                        Ok(Pick::Adhoc(adhoc.len() - 1))
                    }
                })
                .collect::<Result<_>>()?,
        };
        let selected: Vec<(&str, &dyn DiffusionPredictor)> = picks
            .iter()
            .map(|pick| {
                let (s, p) = match *pick {
                    Pick::Lineup(i) => &self.models[i],
                    Pick::Adhoc(i) => &adhoc[i],
                };
                (s.as_str(), p.as_ref())
            })
            .collect();

        // Fit-time histograms for the selected specs: lineup picks
        // reuse the pre-registered handles; ad-hoc specs get-or-create
        // (cold next to the fit itself).
        let fit_hists: Vec<dlm_obs::Histogram> = picks
            .iter()
            .map(|pick| match *pick {
                Pick::Lineup(i) => self.refit_metrics.lineup_fit[i].clone(),
                Pick::Adhoc(i) => self.refit_metrics.fit_histogram(&adhoc[i].0),
            })
            .collect();
        let fits: Vec<FitOutcome> =
            parallel_map(self.parallelism, &selected, |i, &(spec, predictor)| {
                let started = Instant::now();
                let outcome = self.cache.get_or_fit(predictor, spec, &observation);
                fit_hists[i].observe_duration(started.elapsed());
                outcome
            });
        let mut model_entries = Vec::with_capacity(selected.len());
        for (&(spec, _), fit) in selected.iter().zip(fits) {
            let entry = match fit {
                Ok(fitted) => match fitted.predict(&request) {
                    Ok(prediction) => {
                        let values: Vec<Json> = distances
                            .iter()
                            .map(|&d| {
                                Json::Arr(
                                    hours
                                        .iter()
                                        .map(|&h| prediction.at(d, h).map_or(Json::Null, Json::Num))
                                        .collect(),
                                )
                            })
                            .collect();
                        Json::Obj(vec![
                            ("spec".to_owned(), Json::str(spec)),
                            (
                                "param_names".to_owned(),
                                Json::Arr(
                                    fitted.param_names().into_iter().map(Json::Str).collect(),
                                ),
                            ),
                            ("params".to_owned(), Json::nums(&fitted.params())),
                            ("values".to_owned(), Json::Arr(values)),
                        ])
                    }
                    Err(e) => Json::Obj(vec![
                        ("spec".to_owned(), Json::str(spec)),
                        ("error".to_owned(), Json::str(e.to_string())),
                    ]),
                },
                Err(message) => Json::Obj(vec![
                    ("spec".to_owned(), Json::str(spec)),
                    ("error".to_owned(), Json::str(message)),
                ]),
            };
            model_entries.push(entry);
        }
        Ok(Json::Obj(vec![
            ("ok".to_owned(), Json::Bool(true)),
            ("cascade".to_owned(), Json::str(cascade)),
            ("observed_through".to_owned(), Json::num(f64::from(through))),
            (
                "distances".to_owned(),
                Json::Arr(distances.iter().map(|&d| Json::num(f64::from(d))).collect()),
            ),
            (
                "hours".to_owned(),
                Json::Arr(hours.iter().map(|&h| Json::num(f64::from(h))).collect()),
            ),
            ("models".to_owned(), Json::Arr(model_entries)),
        ]))
    }

    fn handle_stats(&self) -> Json {
        let stats = self.cache.stats();
        let store = self.cascades.stats();
        let cascades = self.cascades.len();
        let ring_version = self.ring_version.load(Ordering::Relaxed);
        let mut fields = vec![
            ("ok".to_owned(), Json::Bool(true)),
            (
                "cache".to_owned(),
                Json::Obj(vec![
                    ("hits".to_owned(), Json::num(stats.hits as f64)),
                    ("misses".to_owned(), Json::num(stats.misses as f64)),
                    ("evictions".to_owned(), Json::num(stats.evictions as f64)),
                    ("len".to_owned(), Json::num(self.cache.len() as f64)),
                    (
                        "capacity".to_owned(),
                        Json::num(self.cache.capacity() as f64),
                    ),
                ]),
            ),
            ("cascades".to_owned(), Json::num(cascades as f64)),
            (
                "cascade_evictions".to_owned(),
                Json::num(store.evictions as f64),
            ),
            (
                "cascade_expirations".to_owned(),
                Json::num(store.expirations as f64),
            ),
            (
                "requests".to_owned(),
                Json::num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "refit_jobs".to_owned(),
                Json::num(self.refit_jobs.load(Ordering::Relaxed) as f64),
            ),
            (
                "hours_closed".to_owned(),
                Json::num(self.hours_closed.load(Ordering::Relaxed) as f64),
            ),
            (
                "models".to_owned(),
                Json::Arr(self.lineup().into_iter().map(Json::Str).collect()),
            ),
        ];
        // Only routed backends (a router pushed a `ring` version) carry
        // the field: a standalone server's stats line is unchanged.
        if ring_version != 0 {
            let at = fields.len() - 1;
            fields.insert(
                at,
                ("ring_version".to_owned(), Json::num(ring_version as f64)),
            );
        }
        Json::Obj(fields)
    }
}

/// The on-disk location of one cascade's snapshot: the id is
/// hex-armored so arbitrary client-chosen ids (slashes, dots, `..`)
/// cannot escape or collide inside the snapshot directory.
fn snapshot_path(dir: &Path, id: &str) -> PathBuf {
    dir.join(format!("{}.snap", hex::encode(id.as_bytes())))
}

/// A transport-free line-protocol service: one request line in, one
/// response line out.
///
/// Implemented by [`ServerState`] (the forecasting core) and by the
/// router tier's state in `dlm-router`, so both speak JSON lines over
/// TCP through the exact same [`DlmServer`] front end — framing bounds,
/// connection registry, and shutdown semantics live in one place.
pub trait LineService: Send + Sync + 'static {
    /// Handles one request line, returning the response line (without
    /// the trailing newline). Must never panic on malformed input.
    fn handle_line(&self, line: &str) -> String;

    /// The service's metrics registry, if it keeps one. The TCP front
    /// ends use it to register transport and reactor metrics next to
    /// the service's own; `None` (the default) serves uninstrumented.
    fn metrics_registry(&self) -> Option<&dlm_obs::Registry> {
        None
    }
}

impl LineService for ServerState {
    fn handle_line(&self, line: &str) -> String {
        ServerState::handle_line(self, line)
    }

    fn metrics_registry(&self) -> Option<&dlm_obs::Registry> {
        Some(ServerState::metrics_registry(self))
    }
}

/// Which TCP front end a [`DlmServer`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontEnd {
    /// The event-driven readiness reactor (the default): an
    /// accept loop feeding a fixed pool of nonblocking I/O workers,
    /// each multiplexing its share of the connections — thousands of
    /// connections cost buffers, not threads.
    Reactor {
        /// I/O worker threads; `0` sizes the pool from
        /// [`std::thread::available_parallelism`].
        io_threads: usize,
    },
    /// The original one-thread-per-connection front end, kept for
    /// apples-to-apples perf comparisons (`serve_load --legacy`, the
    /// `serve-perf` CI job) and as a fallback.
    ThreadPerConnection,
}

impl Default for FrontEnd {
    fn default() -> Self {
        Self::Reactor { io_threads: 0 }
    }
}

/// The legacy front end's bookkeeping.
#[derive(Debug)]
struct LegacyFront {
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    /// Live connections by id, so shutdown can unblock blocked reads.
    /// Each handler removes its own entry on exit — a long-lived server
    /// cycling many short-lived clients must not accumulate dead
    /// sockets (fd exhaustion) or finished join handles.
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

#[derive(Debug)]
enum Front {
    Legacy(LegacyFront),
    Reactor(crate::reactor::ReactorHandle),
}

/// The TCP front end, serving one [`LineService`] (a [`ServerState`] by
/// default; the router tier plugs in its own) — by default through the
/// nonblocking readiness reactor (the private `reactor` module),
/// optionally through the legacy thread-per-connection loop. Both front ends speak
/// JSON lines and the negotiated binary framing of [`crate::wire`]
/// through the same per-connection negotiation, so the choice is purely
/// an execution-model (throughput) knob, never a protocol one.
#[derive(Debug)]
pub struct DlmServer<S: LineService = ServerState> {
    addr: SocketAddr,
    state: Arc<S>,
    front: Front,
}

impl<S: LineService> DlmServer<S> {
    /// Binds the server (use port 0 for an OS-assigned port) and starts
    /// accepting connections on the default (reactor) front end.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(addr: impl ToSocketAddrs, state: S) -> Result<Self> {
        Self::bind_shared(addr, Arc::new(state))
    }

    /// Like [`DlmServer::bind`], for a service the caller also keeps a
    /// handle to.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind_shared(addr: impl ToSocketAddrs, state: Arc<S>) -> Result<Self> {
        Self::bind_with(addr, state, FrontEnd::default())
    }

    /// Binds with an explicit front end.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind_with(addr: impl ToSocketAddrs, state: Arc<S>, front: FrontEnd) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let front = match front {
            FrontEnd::Reactor { io_threads } => Front::Reactor(crate::reactor::spawn(
                listener,
                Arc::clone(&state),
                io_threads,
            )),
            FrontEnd::ThreadPerConnection => {
                Front::Legacy(Self::spawn_legacy(listener, Arc::clone(&state)))
            }
        };
        Ok(Self { addr, state, front })
    }

    fn spawn_legacy(listener: TcpListener, state: Arc<S>) -> LegacyFront {
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_state = state;
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_connections = Arc::clone(&connections);
        let accept_handlers = Arc::clone(&handlers);
        let accept_handle = std::thread::spawn(move || {
            let mut next_id = 0u64;
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // One-line request/response framing: latency matters
                // more than segment coalescing.
                let _ = stream.set_nodelay(true);
                let id = next_id;
                next_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    accept_connections
                        .lock()
                        .expect("connection registry poisoned")
                        .insert(id, clone);
                }
                let state = Arc::clone(&accept_state);
                let connections = Arc::clone(&accept_connections);
                let handle = std::thread::spawn(move || {
                    serve_connection(state.as_ref(), stream);
                    // Drop the registered clone so a hung-up client
                    // releases its socket immediately.
                    connections
                        .lock()
                        .expect("connection registry poisoned")
                        .remove(&id);
                });
                let mut handlers = accept_handlers.lock().expect("handler registry poisoned");
                // Reap handlers whose connections already ended.
                handlers.retain(|h| !h.is_finished());
                handlers.push(handle);
            }
        });

        LegacyFront {
            shutdown,
            accept_handle: Some(accept_handle),
            connections,
            handlers,
        }
    }

    /// The bound address (with the OS-assigned port resolved).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the service core (counters, cache, in-process
    /// requests).
    #[must_use]
    pub fn state(&self) -> Arc<S> {
        Arc::clone(&self.state)
    }

    /// Stops accepting, unblocks and joins every connection handler,
    /// and joins the accept loop. Called automatically on drop.
    pub fn shutdown(&mut self) {
        match &mut self.front {
            Front::Reactor(handle) => handle.shutdown(self.addr),
            Front::Legacy(front) => {
                if front.shutdown.swap(true, Ordering::SeqCst) {
                    return;
                }
                let drain_connections = || {
                    for (_, stream) in front
                        .connections
                        .lock()
                        .expect("connection registry poisoned")
                        .drain()
                    {
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                };
                drain_connections();
                // Unblock the accept loop with a throwaway connection.
                let _ = TcpStream::connect(self.addr);
                if let Some(handle) = front.accept_handle.take() {
                    let _ = handle.join();
                }
                // A connection accepted concurrently with the first
                // drain may have been registered after it; with the
                // accept loop joined, nothing registers anymore, so a
                // second drain catches every straggler before the
                // handler joins below can block on it.
                drain_connections();
                for handle in front
                    .handlers
                    .lock()
                    .expect("handler registry poisoned")
                    .drain(..)
                {
                    let _ = handle.join();
                }
            }
        }
    }
}

impl<S: LineService> Drop for DlmServer<S> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Upper bound on one request line. The largest legitimate request is a
/// full-cascade ingest batch — tens of thousands of `[ts,voter]` pairs
/// fit comfortably; a client streaming an endless unterminated "line"
/// must not grow server memory without bound.
pub(crate) const MAX_LINE_BYTES: usize = 16 * 1024 * 1024;

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`].
/// `Ok(None)` on clean EOF; `Err` on socket errors, an oversized line,
/// or non-UTF-8 input.
pub(crate) fn read_line_bounded(reader: &mut impl BufRead) -> std::io::Result<Option<String>> {
    let mut buffer: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a clean end between lines, or a truncated line.
            return if buffer.is_empty() {
                Ok(None)
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ))
            };
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(newline) => (newline + 1, true),
            None => (chunk.len(), false),
        };
        if buffer.len() + take > MAX_LINE_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "request line exceeds the size bound",
            ));
        }
        buffer.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if done {
            buffer.pop(); // the newline
            if buffer.last() == Some(&b'\r') {
                buffer.pop();
            }
            return String::from_utf8(buffer)
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e));
        }
    }
}

/// Serves one connection: a request line in, a response line out, until
/// EOF or a socket error. A successful `hello` negotiation switches the
/// rest of the connection to length-prefixed binary frames — the same
/// negotiation the reactor front end performs, so both front ends
/// present one protocol surface.
fn serve_connection<S: LineService>(state: &S, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let wire_metrics = state.metrics_registry().map(WireMetrics::new);
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let write_line = |writer: &mut TcpStream, line: &str| {
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_ok()
    };
    // Lines phase.
    let mut negotiated_binary = false;
    while let Ok(Some(line)) = read_line_bounded(&mut reader) {
        if let Some(wm) = &wire_metrics {
            wm.add_rx(Transport::Lines, line.len() + 1);
        }
        if line.trim().is_empty() {
            continue;
        }
        match wire::parse_hello(&line) {
            Some(Ok(transport)) => {
                if !write_line(&mut writer, &wire::hello_response(transport)) {
                    return;
                }
                if transport == Transport::Binary {
                    negotiated_binary = true;
                    break; // switch framing below
                }
            }
            Some(Err(e)) => {
                if !write_line(&mut writer, &error_response(&e.to_string()).to_string()) {
                    return;
                }
            }
            None => {
                let response = state.handle_line(&line);
                if let Some(wm) = &wire_metrics {
                    wm.count_request(Transport::Lines);
                    wm.add_tx(Transport::Lines, response.len() + 1);
                }
                if !write_line(&mut writer, &response) {
                    return;
                }
            }
        }
    }
    // Binary phase (only reached through a successful negotiation —
    // an errored lines loop must not reinterpret its tail as frames).
    if !negotiated_binary {
        return;
    }
    while let Ok(Some(payload)) = wire::read_frame(&mut reader) {
        if let Some(wm) = &wire_metrics {
            wm.add_rx(Transport::Binary, payload.len() + wire::FRAME_HEADER_BYTES);
        }
        let response = match wire::payload_to_line(&payload) {
            Ok(line) => state.handle_line(&line),
            // A decode error leaves the frame boundary intact, so the
            // connection stays usable; only framing-level corruption
            // (oversize header, mid-frame EOF) ends it above.
            Err(e) => error_response(&e.to_string()).to_string(),
        };
        let frame = wire::encode_frame(response.as_bytes());
        if let Some(wm) = &wire_metrics {
            wm.count_request(Transport::Binary);
            wm.add_tx(Transport::Binary, frame.len());
        }
        if writer
            .write_all(&frame)
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}
