//! The live-cascade store: bounded, recency-ordered, with optional
//! idle-TTL expiry.
//!
//! A long-lived server observes cascades that clients simply abandon —
//! a story stops spreading, a load generator disconnects — and without
//! a bound those [`crate::live::LiveCascade`] tables accumulate
//! forever. Fitted models already release memory through the bounded
//! LRU [`dlm_core::evaluate::FittedModelCache`]; [`CascadeStore`] gives
//! the cascades themselves the same discipline:
//!
//! * **capacity bound** — at most `capacity` cascades are resident;
//!   inserting past the bound evicts the least-recently-touched one
//!   (deterministic `BTreeMap` recency order, like
//!   [`dlm_core::cache::LruCache`]);
//! * **idle TTL** — with a TTL configured, a cascade untouched (no
//!   `open`/`ingest`/`forecast`) for longer than the TTL is expired on
//!   the next store access, whatever the store's occupancy.
//!
//! Both removal paths are counted ([`StoreStats`]) and surfaced through
//! the `stats` verb as `cascade_evictions` / `cascade_expirations`, so
//! an operator can tell "the working set outgrew the box" from "clients
//! walked away".
//!
//! Values are handed out by clone; the server stores
//! `Arc<Mutex<Slot>>`, so an in-flight request on an evicted cascade
//! keeps a valid handle and the memory is released when the last
//! request finishes.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Removal counters for a [`CascadeStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Entries removed to keep the store within its capacity bound.
    pub evictions: u64,
    /// Entries removed because they sat idle past the TTL.
    pub expirations: u64,
}

struct Inner<V> {
    /// id -> (value, recency stamp, last touch).
    map: HashMap<String, (V, u64, Instant)>,
    /// recency stamp -> id; the smallest stamp is the coldest entry.
    /// `last touch` is monotone along this order (both are written
    /// together), so TTL sweeps pop from the front.
    order: BTreeMap<u64, String>,
    clock: u64,
    evictions: u64,
    expirations: u64,
}

/// The signature of a [`CascadeStore::set_shed_hook`] callback.
type ShedHook = Box<dyn Fn(&str) + Send + Sync>;

/// A bounded, TTL-aware table of live cascades (or anything else keyed
/// by cascade id).
pub struct CascadeStore<V> {
    inner: Mutex<Inner<V>>,
    capacity: usize,
    ttl: Option<Duration>,
    /// Called with the id of every entry the store sheds on its own
    /// (capacity eviction or TTL expiry); see
    /// [`CascadeStore::set_shed_hook`].
    on_shed: Option<ShedHook>,
}

const POISONED: &str = "cascade store poisoned";

impl<V> std::fmt::Debug for CascadeStore<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect(POISONED);
        f.debug_struct("CascadeStore")
            .field("capacity", &self.capacity)
            .field("ttl", &self.ttl)
            .field("len", &inner.map.len())
            .field("evictions", &inner.evictions)
            .field("expirations", &inner.expirations)
            .finish()
    }
}

impl<V: Clone> CascadeStore<V> {
    /// Creates a store bounded to `capacity` entries (`0` is clamped to
    /// `1`) with an optional idle TTL.
    #[must_use]
    pub fn new(capacity: usize, ttl: Option<Duration>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                clock: 0,
                evictions: 0,
                expirations: 0,
            }),
            capacity: capacity.max(1),
            ttl,
            on_shed: None,
        }
    }

    /// Registers a hook called with the id of every cascade the store
    /// sheds **on its own** — a capacity eviction or a TTL expiry.
    /// Explicit [`CascadeStore::remove`] does not fire it: `remove`'s
    /// callers do their own cleanup and need its errors surfaced. The
    /// server uses this to delete a shed cascade's snapshot file, so a
    /// restart does not resurrect state the store already dropped.
    ///
    /// The hook runs while the store's lock is held; it must not call
    /// back into the store.
    pub fn set_shed_hook(&mut self, hook: impl Fn(&str) + Send + Sync + 'static) {
        self.on_shed = Some(Box::new(hook));
    }

    /// The maximum number of resident cascades.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured idle TTL, if any.
    #[must_use]
    pub fn ttl(&self) -> Option<Duration> {
        self.ttl
    }

    /// Number of resident cascades (after expiring idle ones).
    #[must_use]
    pub fn len(&self) -> usize {
        let mut inner = self.inner.lock().expect(POISONED);
        self.sweep(&mut inner);
        inner.map.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expires every entry idle past the TTL. `last touch` is monotone
    /// in recency order, so the sweep stops at the first fresh entry.
    fn sweep(&self, inner: &mut Inner<V>) {
        let Some(ttl) = self.ttl else { return };
        let now = Instant::now();
        while let Some((&stamp, id)) = inner.order.iter().next() {
            let touched = inner.map[id].2;
            if now.duration_since(touched) < ttl {
                break;
            }
            let id = inner.order.remove(&stamp).expect("stamp just observed");
            inner.map.remove(&id);
            inner.expirations += 1;
            if let Some(hook) = &self.on_shed {
                hook(&id);
            }
        }
    }

    /// Looks up a cascade, marking it as just-touched on a hit.
    pub fn get(&self, id: &str) -> Option<V> {
        let mut inner = self.inner.lock().expect(POISONED);
        self.sweep(&mut inner);
        inner.clock += 1;
        let stamp = inner.clock;
        let (value, old_stamp, touched) = inner.map.get_mut(id)?;
        let value = value.clone();
        let old = std::mem::replace(old_stamp, stamp);
        *touched = Instant::now();
        inner.order.remove(&old);
        inner.order.insert(stamp, id.to_owned());
        Some(value)
    }

    /// Inserts a new cascade. Returns `false` (and leaves the store
    /// untouched) when the id is already resident — duplicate `open`s
    /// must not silently replace a cascade forecasts were served from.
    /// Inserting past the capacity bound evicts the
    /// least-recently-touched cascade.
    pub fn insert(&self, id: impl Into<String>, value: V) -> bool {
        let id = id.into();
        let mut inner = self.inner.lock().expect(POISONED);
        self.sweep(&mut inner);
        if inner.map.contains_key(&id) {
            return false;
        }
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(id.clone(), (value, stamp, Instant::now()));
        inner.order.insert(stamp, id);
        while inner.map.len() > self.capacity {
            let (&coldest, _) = inner
                .order
                .iter()
                .next()
                .expect("order tracks every resident entry");
            let victim = inner.order.remove(&coldest).expect("stamp just observed");
            inner.map.remove(&victim);
            inner.evictions += 1;
            if let Some(hook) = &self.on_shed {
                hook(&victim);
            }
        }
        true
    }

    /// The resident cascade ids in sorted order, **without** touching
    /// recency — inventorying a node for migration must not distort its
    /// eviction order.
    #[must_use]
    pub fn ids(&self) -> Vec<String> {
        let mut inner = self.inner.lock().expect(POISONED);
        self.sweep(&mut inner);
        let mut ids: Vec<String> = inner.map.keys().cloned().collect();
        ids.sort_unstable();
        ids
    }

    /// Removes a cascade by id, returning whether it was resident.
    /// Explicit removal (the `evict` verb, migration cleanup) counts
    /// toward neither eviction nor expiration statistics.
    pub fn remove(&self, id: &str) -> bool {
        let mut inner = self.inner.lock().expect(POISONED);
        self.sweep(&mut inner);
        match inner.map.remove(id) {
            Some((_, stamp, _)) => {
                inner.order.remove(&stamp);
                true
            }
            None => false,
        }
    }

    /// Lifetime removal counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let mut inner = self.inner.lock().expect(POISONED);
        self.sweep(&mut inner);
        StoreStats {
            evictions: inner.evictions,
            expirations: inner.expirations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_and_duplicate_rejection() {
        let store: CascadeStore<u32> = CascadeStore::new(4, None);
        assert!(store.is_empty());
        assert!(store.insert("a", 1));
        assert!(!store.insert("a", 2), "duplicate ids must be rejected");
        assert_eq!(store.get("a"), Some(1));
        assert_eq!(store.get("b"), None);
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats(), StoreStats::default());
    }

    #[test]
    fn capacity_evicts_the_coldest_cascade() {
        let store: CascadeStore<u32> = CascadeStore::new(2, None);
        assert!(store.insert("a", 1));
        assert!(store.insert("b", 2));
        // Touch `a` so `b` is the coldest entry.
        assert_eq!(store.get("a"), Some(1));
        assert!(store.insert("c", 3));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("b"), None, "coldest entry should be evicted");
        assert_eq!(store.get("a"), Some(1));
        assert_eq!(store.get("c"), Some(3));
        assert_eq!(
            store.stats(),
            StoreStats {
                evictions: 1,
                expirations: 0
            }
        );
    }

    #[test]
    fn idle_entries_expire_after_the_ttl() {
        let ttl = Duration::from_millis(40);
        let store: CascadeStore<u32> = CascadeStore::new(8, Some(ttl));
        assert!(store.insert("old", 1));
        std::thread::sleep(Duration::from_millis(120));
        assert!(store.insert("new", 2));
        assert_eq!(store.get("old"), None, "idle entry should have expired");
        assert_eq!(store.get("new"), Some(2));
        assert_eq!(store.stats().expirations, 1);
        assert_eq!(store.stats().evictions, 0);
    }

    #[test]
    fn touching_keeps_an_entry_alive() {
        // The TTL is far above the sleep so a loaded CI runner's
        // scheduling delays cannot push a touch past it.
        let ttl = Duration::from_secs(60);
        let store: CascadeStore<u32> = CascadeStore::new(8, Some(ttl));
        assert!(store.insert("a", 1));
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(store.get("a"), Some(1), "touched entry must stay resident");
        }
        assert_eq!(store.stats().expirations, 0);
    }

    #[test]
    fn expired_id_can_be_reopened() {
        let ttl = Duration::from_millis(30);
        let store: CascadeStore<u32> = CascadeStore::new(8, Some(ttl));
        assert!(store.insert("a", 1));
        std::thread::sleep(Duration::from_millis(100));
        assert!(store.insert("a", 2), "expired id should be free again");
        assert_eq!(store.get("a"), Some(2));
    }

    #[test]
    fn ids_are_sorted_and_do_not_touch_recency() {
        let store: CascadeStore<u32> = CascadeStore::new(2, None);
        assert!(store.insert("b", 2));
        assert!(store.insert("a", 1));
        assert_eq!(store.ids(), vec!["a".to_string(), "b".to_string()]);
        // `b` is still the coldest entry — listing did not touch it.
        assert!(store.insert("c", 3));
        assert_eq!(store.get("b"), None, "listing must not refresh recency");
        assert_eq!(store.get("a"), Some(1));
    }

    #[test]
    fn remove_frees_the_id_without_counting_as_eviction() {
        let store: CascadeStore<u32> = CascadeStore::new(4, None);
        assert!(store.insert("a", 1));
        assert!(store.remove("a"));
        assert!(!store.remove("a"), "already gone");
        assert_eq!(store.get("a"), None);
        assert_eq!(store.stats(), StoreStats::default());
        assert!(store.insert("a", 2), "removed id should be free again");
        assert_eq!(store.get("a"), Some(2));
    }

    #[test]
    fn shed_hook_fires_on_eviction_and_expiry_but_not_remove() {
        use std::sync::{Arc, Mutex};
        let shed: Arc<Mutex<Vec<String>>> = Arc::default();
        let mut store: CascadeStore<u32> = CascadeStore::new(1, Some(Duration::from_millis(30)));
        let sink = Arc::clone(&shed);
        store.set_shed_hook(move |id| sink.lock().unwrap().push(id.to_owned()));
        assert!(store.insert("a", 1));
        assert!(store.insert("b", 2), "capacity 1 evicts `a`");
        assert_eq!(shed.lock().unwrap().as_slice(), ["a".to_string()]);
        assert!(store.remove("b"));
        assert_eq!(
            shed.lock().unwrap().len(),
            1,
            "explicit remove must not fire the shed hook"
        );
        assert!(store.insert("c", 3));
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(store.len(), 0, "idle entry expires");
        assert_eq!(
            shed.lock().unwrap().as_slice(),
            ["a".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let store: CascadeStore<u32> = CascadeStore::new(0, None);
        assert!(store.insert("a", 1));
        assert!(store.insert("b", 2));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get("b"), Some(2));
        assert_eq!(store.stats().evictions, 1);
    }
}
