//! Serve-tier telemetry: pre-registered metric handles for the request
//! path, the reactor, and the refit scheduler, plus the JSON codec that
//! carries [`MetricsSnapshot`]s across the wire for the router's
//! cluster-wide merge.
//!
//! Everything here is built on [`dlm_obs`]: handles are registered once
//! (cold path, under the registry mutex) and every hot-path touch is a
//! relaxed atomic op. Nothing in this module alters a response byte —
//! the `metrics` verb is the only place the state becomes visible.

use crate::error::{Result, ServeError};
use crate::json::Json;
use dlm_obs::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry, Series, SeriesValue,
};
use std::time::Duration;

/// Requests slower than this log one correlated `warn` line (with the
/// request's `trace` id when the client sent one).
pub const SLOW_REQUEST: Duration = Duration::from_millis(250);

/// Every verb label the serving core's request-path metrics use,
/// including the `invalid` bucket for lines that fail to parse. The
/// last entry must be the fallback label.
pub const VERB_LABELS: &[&str] = &[
    "open",
    "ingest",
    "forecast",
    "stats",
    "snapshot",
    "restore",
    "cascades",
    "checksums",
    "evict",
    "batch",
    "metrics",
    "ring",
    "invalid",
];

/// The verb label of a parsed request.
#[must_use]
pub fn verb_label(request: &crate::protocol::Request) -> &'static str {
    use crate::protocol::Request;
    match request {
        Request::Open { .. } => "open",
        Request::Ingest { .. } => "ingest",
        Request::Forecast { .. } => "forecast",
        Request::Stats => "stats",
        Request::Snapshot { .. } => "snapshot",
        Request::Restore { .. } => "restore",
        Request::Cascades => "cascades",
        Request::Checksums => "checksums",
        Request::Evict { .. } => "evict",
        Request::Batch { .. } => "batch",
        Request::Metrics => "metrics",
        Request::Ring { .. } => "ring",
    }
}

/// Per-verb request-path handles: one counter, one error counter, one
/// service-time histogram per verb, pre-registered so the hot path
/// never takes the registry mutex.
#[derive(Debug)]
pub struct RequestMetrics {
    verbs: &'static [&'static str],
    requests: Vec<Counter>,
    errors: Vec<Counter>,
    service: Vec<Histogram>,
}

impl RequestMetrics {
    /// Registers the per-verb families under `prefix` (`dlm` for the
    /// serving core, `dlm_router` for the routing tier) for `verbs`,
    /// whose last entry is the fallback for unknown verb strings.
    #[must_use]
    pub fn new(registry: &Registry, prefix: &str, verbs: &'static [&'static str]) -> Self {
        let mut requests = Vec::with_capacity(verbs.len());
        let mut errors = Vec::with_capacity(verbs.len());
        let mut service = Vec::with_capacity(verbs.len());
        for verb in verbs {
            let labels = [("verb", *verb)];
            requests.push(registry.counter(&format!("{prefix}_requests_total"), &labels));
            errors.push(registry.counter(&format!("{prefix}_request_errors_total"), &labels));
            service.push(registry.histogram(&format!("{prefix}_service_micros"), &labels));
        }
        Self {
            verbs,
            requests,
            errors,
            service,
        }
    }

    fn index(&self, verb: &str) -> usize {
        self.verbs
            .iter()
            .position(|v| *v == verb)
            .unwrap_or(self.verbs.len() - 1)
    }

    /// Counts one request of `verb` (batch items included, so per-verb
    /// counters track logical operations, not wire lines).
    pub fn count(&self, verb: &str, is_error: bool) {
        let i = self.index(verb);
        self.requests[i].inc();
        if is_error {
            self.errors[i].inc();
        }
    }

    /// Records one request's service time.
    pub fn observe_service(&self, verb: &str, elapsed: Duration) {
        self.service[self.index(verb)].observe_duration(elapsed);
    }
}

/// Whether a serialized response line is an error response. Every
/// error line the serving core and the router produce serializes
/// `"ok":false` first, so the prefix check never re-parses a body.
#[must_use]
pub fn response_is_error(response: &str) -> bool {
    response.starts_with("{\"ok\":false")
}

/// Per-transport wire counters. Each front-end thread builds its own
/// copy; the registry's get-or-create semantics make every copy share
/// the same cells.
#[derive(Debug)]
pub(crate) struct WireMetrics {
    rx: [Counter; 2],
    tx: [Counter; 2],
    requests: [Counter; 2],
}

impl WireMetrics {
    pub(crate) fn new(registry: &Registry) -> Self {
        let of = |name: &str, transport: &str| registry.counter(name, &[("transport", transport)]);
        Self {
            rx: [
                of("dlm_wire_rx_bytes_total", "lines"),
                of("dlm_wire_rx_bytes_total", "binary"),
            ],
            tx: [
                of("dlm_wire_tx_bytes_total", "lines"),
                of("dlm_wire_tx_bytes_total", "binary"),
            ],
            requests: [
                of("dlm_wire_requests_total", "lines"),
                of("dlm_wire_requests_total", "binary"),
            ],
        }
    }

    fn lane(transport: crate::wire::Transport) -> usize {
        match transport {
            crate::wire::Transport::Lines => 0,
            crate::wire::Transport::Binary => 1,
        }
    }

    pub(crate) fn add_rx(&self, transport: crate::wire::Transport, bytes: usize) {
        self.rx[Self::lane(transport)].add(bytes as u64);
    }

    pub(crate) fn add_tx(&self, transport: crate::wire::Transport, bytes: usize) {
        self.tx[Self::lane(transport)].add(bytes as u64);
    }

    pub(crate) fn count_request(&self, transport: crate::wire::Transport) {
        self.requests[Self::lane(transport)].inc();
    }
}

/// Per-worker reactor handles.
#[derive(Debug)]
pub(crate) struct ReactorWorkerMetrics {
    /// Connections handed to this worker by the acceptor.
    pub(crate) accepted: Counter,
    /// Connections currently multiplexed by this worker.
    pub(crate) active: Gauge,
    /// Duration of non-empty readiness sweeps.
    pub(crate) sweep: Histogram,
    /// Inbox depth observed at the top of each sweep.
    pub(crate) inbox_depth: Gauge,
    /// Idle parks taken.
    pub(crate) parks: Counter,
    /// Sweeps that moved bytes.
    pub(crate) wakes: Counter,
}

impl ReactorWorkerMetrics {
    pub(crate) fn new(registry: &Registry, worker: usize) -> Self {
        let worker = worker.to_string();
        let labels = [("worker", worker.as_str())];
        Self {
            accepted: registry.counter("dlm_reactor_accepted_total", &labels),
            active: registry.gauge("dlm_reactor_active_connections", &labels),
            sweep: registry.histogram("dlm_reactor_sweep_micros", &labels),
            inbox_depth: registry.gauge("dlm_reactor_inbox_depth", &labels),
            parks: registry.counter("dlm_reactor_parks_total", &labels),
            wakes: registry.counter("dlm_reactor_wakes_total", &labels),
        }
    }
}

/// Refit-scheduler handles: job counters plus one fit-duration
/// histogram per model spec (lineup specs pre-registered; ad-hoc
/// forecast specs register on first use).
#[derive(Debug)]
pub(crate) struct RefitMetrics {
    registry: Registry,
    pub(crate) fits_started: Counter,
    pub(crate) fits_completed: Counter,
    pub(crate) fit_failures: Counter,
    /// Lineup fit histograms, parallel to the lineup order.
    pub(crate) lineup_fit: Vec<Histogram>,
}

impl RefitMetrics {
    pub(crate) fn new(registry: &Registry, lineup: &[String]) -> Self {
        Self {
            fits_started: registry.counter("dlm_refit_fits_started_total", &[]),
            fits_completed: registry.counter("dlm_refit_fits_completed_total", &[]),
            fit_failures: registry.counter("dlm_refit_fit_failures_total", &[]),
            lineup_fit: lineup
                .iter()
                .map(|spec| registry.histogram("dlm_fit_micros", &[("model", spec)]))
                .collect(),
            registry: registry.clone(),
        }
    }

    /// The fit histogram for an ad-hoc spec (cold path; get-or-create).
    pub(crate) fn fit_histogram(&self, spec: &str) -> Histogram {
        self.registry
            .histogram("dlm_fit_micros", &[("model", spec)])
    }
}

/// Encodes a snapshot as the JSON the `metrics` verb carries alongside
/// the text exposition, so a routing tier can merge backend snapshots
/// bucket-wise without parsing exposition text.
#[must_use]
pub fn snapshot_to_json(snapshot: &MetricsSnapshot) -> Json {
    let series = snapshot
        .series
        .iter()
        .map(|s| {
            let labels = Json::Arr(
                s.labels
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::str(k.clone()), Json::str(v.clone())]))
                    .collect(),
            );
            let mut fields = vec![
                ("name".to_owned(), Json::str(s.name.clone())),
                ("labels".to_owned(), labels),
            ];
            match &s.value {
                SeriesValue::Counter(v) => {
                    fields.push(("kind".to_owned(), Json::str("counter")));
                    fields.push(("value".to_owned(), Json::num(*v as f64)));
                }
                SeriesValue::Gauge(v) => {
                    fields.push(("kind".to_owned(), Json::str("gauge")));
                    fields.push(("value".to_owned(), Json::num(*v as f64)));
                }
                SeriesValue::Histogram(h) => {
                    fields.push(("kind".to_owned(), Json::str("histogram")));
                    fields.push((
                        "buckets".to_owned(),
                        Json::Arr(h.buckets.iter().map(|&b| Json::num(b as f64)).collect()),
                    ));
                    fields.push(("count".to_owned(), Json::num(h.count as f64)));
                    fields.push(("sum".to_owned(), Json::num(h.sum as f64)));
                }
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![("series".to_owned(), Json::Arr(series))])
}

/// Decodes a snapshot from its wire form — the router's half of the
/// cluster-wide `metrics` merge.
///
/// # Errors
///
/// [`ServeError::Protocol`] when the value does not have the shape
/// [`snapshot_to_json`] produces.
pub fn snapshot_from_json(value: &Json) -> Result<MetricsSnapshot> {
    let bad = |what: &str| ServeError::Protocol(format!("malformed metrics snapshot: {what}"));
    let series = value
        .get("series")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("missing `series` array"))?;
    let mut out = Vec::with_capacity(series.len());
    for s in series {
        let name = s
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("series missing `name`"))?
            .to_owned();
        let labels = s
            .get("labels")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("series missing `labels`"))?
            .iter()
            .map(|pair| {
                let pair = pair.as_array().filter(|p| p.len() == 2);
                match pair {
                    Some(p) => match (p[0].as_str(), p[1].as_str()) {
                        (Some(k), Some(v)) => Ok((k.to_owned(), v.to_owned())),
                        _ => Err(bad("label pair must be two strings")),
                    },
                    None => Err(bad("labels must be [key, value] pairs")),
                }
            })
            .collect::<Result<Vec<_>>>()?;
        let kind = s
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("series missing `kind`"))?;
        let value = match kind {
            "counter" => SeriesValue::Counter(
                s.get("value")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("counter missing `value`"))?,
            ),
            "gauge" => SeriesValue::Gauge(
                s.get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("gauge missing `value`"))? as i64,
            ),
            "histogram" => {
                let buckets = s
                    .get("buckets")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("histogram missing `buckets`"))?
                    .iter()
                    .map(|b| b.as_u64().ok_or_else(|| bad("bucket must be an integer")))
                    .collect::<Result<Vec<_>>>()?;
                SeriesValue::Histogram(HistogramSnapshot {
                    buckets,
                    count: s
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("histogram missing `count`"))?,
                    sum: s
                        .get("sum")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("histogram missing `sum`"))?,
                })
            }
            other => return Err(bad(&format!("unknown series kind `{other}`"))),
        };
        out.push(Series {
            name,
            labels,
            value,
        });
    }
    let mut snapshot = MetricsSnapshot { series: out };
    // Re-canonicalize defensively: merge correctness relies on order.
    let empty = MetricsSnapshot::default();
    snapshot.merge(&empty);
    Ok(snapshot)
}

/// Builds the uniform `metrics` response line: the rendered text
/// exposition plus the structured snapshot.
#[must_use]
pub fn metrics_response(snapshot: &MetricsSnapshot) -> Json {
    Json::Obj(vec![
        ("ok".to_owned(), Json::Bool(true)),
        ("exposition".to_owned(), Json::str(snapshot.render())),
        ("snapshot".to_owned(), snapshot_to_json(snapshot)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Registry::new();
        reg.counter("reqs", &[("verb", "open")]).add(7);
        reg.gauge("depth", &[]).set(-3);
        let h = reg.histogram("lat", &[("verb", "open")]);
        h.observe(5);
        h.observe(1 << 20);
        let snap = reg.snapshot();
        let json = snapshot_to_json(&snap);
        let back = snapshot_from_json(&Json::parse(&json.to_string()).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.render(), snap.render());
    }

    #[test]
    fn malformed_snapshots_are_protocol_errors() {
        for bad in [
            "{}",
            r#"{"series":[{}]}"#,
            r#"{"series":[{"name":"x","labels":[],"kind":"mystery"}]}"#,
            r#"{"series":[{"name":"x","labels":[["a"]],"kind":"counter","value":1}]}"#,
            r#"{"series":[{"name":"x","labels":[],"kind":"histogram","buckets":[1]}]}"#,
        ] {
            let value = Json::parse(bad).unwrap();
            assert!(snapshot_from_json(&value).is_err(), "`{bad}` should fail");
        }
    }
}
