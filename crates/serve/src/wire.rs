//! The opt-in binary framing layer (`docs/PROTOCOL.md` §2-bis).
//!
//! Every connection starts in JSON-lines mode. A client that sends the
//! negotiation line `{"type":"hello","transport":"binary"}` and receives
//! `{"ok":true,"transport":"binary"}` switches the connection — both
//! directions, for its whole remaining lifetime — to length-prefixed
//! frames:
//!
//! ```text
//! frame     := length payload            length := u32, little endian
//! request   := tag body
//!   tag 0x00: body is the exact UTF-8 JSON request text (no newline)
//!   tag 0x01: body is a compact binary `ingest`:
//!             u32 id_len | id bytes (UTF-8) | u8 has_now | u64 now?
//!             | u32 n | n × (u64 timestamp, u64 voter), all LE
//! response  := the exact UTF-8 JSON response text (no tag, no newline)
//! ```
//!
//! Decoding a binary `ingest` produces the *canonical JSON line* of the
//! same request and hands it to the exact [`LineService`] path a JSON
//! line would take, and response frames carry the exact bytes of the
//! JSON-lines response — which is what makes "the binary path is
//! byte-identical to the JSON path" a mechanically testable claim, and
//! what lets the router relay framed responses verbatim.
//!
//! The frame length bound equals the line bound ([`MAX_FRAME_BYTES`]):
//! a declared length beyond it is rejected before any allocation, so a
//! hostile 4-byte header cannot reserve gigabytes.
//!
//! [`LineService`]: crate::server::LineService

use crate::error::{Result, ServeError};
use crate::json::Json;
use crate::protocol::Request;
use std::io::BufRead;

/// The two wire framings a connection can speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// JSON lines (the default; every connection starts here).
    #[default]
    Lines,
    /// Length-prefixed binary frames, after a successful negotiation.
    Binary,
}

impl Transport {
    /// The wire name used in `hello` lines and responses.
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            Self::Lines => "lines",
            Self::Binary => "binary",
        }
    }
}

/// Upper bound on one frame's payload — the same bound the line framing
/// enforces, so switching transports never widens what a client may ask
/// the server to buffer.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Bytes in a frame's little-endian length header.
pub const FRAME_HEADER_BYTES: usize = 4;

/// Request payload tag: the body is JSON request text.
pub const TAG_JSON: u8 = 0x00;
/// Request payload tag: the body is a compact binary `ingest`.
pub const TAG_INGEST: u8 = 0x01;

/// The negotiation line a client sends to request `transport`.
#[must_use]
pub fn hello_line(transport: Transport) -> String {
    format!(
        "{{\"type\":\"hello\",\"transport\":\"{}\"}}",
        transport.wire_name()
    )
}

/// The response line confirming a negotiation.
#[must_use]
pub fn hello_response(transport: Transport) -> String {
    format!(
        "{{\"ok\":true,\"transport\":\"{}\"}}",
        transport.wire_name()
    )
}

/// Classifies a request line as a transport negotiation.
///
/// `None` when the line is not a `hello` at all (it is an ordinary
/// request); `Some(Err(_))` when it is a `hello` with a missing or
/// unknown transport — the front end answers the error and stays on
/// lines.
#[must_use]
pub fn parse_hello(line: &str) -> Option<Result<Transport>> {
    // Cheap pre-filter: a hello must carry the literal key somewhere.
    if !line.contains("hello") {
        return None;
    }
    let value = Json::parse(line).ok()?;
    if value.get("type").and_then(Json::as_str) != Some("hello") {
        return None;
    }
    Some(match value.get("transport").and_then(Json::as_str) {
        Some("binary") => Ok(Transport::Binary),
        Some("lines") => Ok(Transport::Lines),
        _ => Err(ServeError::Protocol(
            "hello `transport` must be `lines` or `binary`".into(),
        )),
    })
}

/// Appends one length-prefixed frame carrying `payload` to `out`.
pub fn frame_into(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes one frame as an owned buffer.
#[must_use]
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    frame_into(payload, &mut out);
    out
}

/// The request payload for JSON request text: tag byte + the bytes.
#[must_use]
pub fn encode_json_payload(line: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + line.len());
    out.push(TAG_JSON);
    out.extend_from_slice(line.as_bytes());
    out
}

/// The compact binary `ingest` request payload.
#[must_use]
pub fn encode_ingest_payload(cascade: &str, votes: &[(u64, usize)], now: Option<u64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 4 + cascade.len() + 9 + 4 + 16 * votes.len());
    out.push(TAG_INGEST);
    out.extend_from_slice(&(cascade.len() as u32).to_le_bytes());
    out.extend_from_slice(cascade.as_bytes());
    match now {
        Some(now) => {
            out.push(1);
            out.extend_from_slice(&now.to_le_bytes());
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(votes.len() as u32).to_le_bytes());
    for &(timestamp, voter) in votes {
        out.extend_from_slice(&timestamp.to_le_bytes());
        out.extend_from_slice(&(voter as u64).to_le_bytes());
    }
    out
}

/// Tries to extract one complete frame from the front of `buf`.
///
/// `Ok(None)` when the frame is still incomplete; `Ok(Some((payload,
/// consumed)))` hands back the payload range and how many bytes to drop
/// from the buffer.
///
/// # Errors
///
/// [`ServeError::Protocol`] when the header declares a length beyond
/// [`MAX_FRAME_BYTES`] — the connection is desynchronized or hostile
/// and must be closed; nothing was consumed.
pub fn try_extract_frame(buf: &[u8]) -> Result<Option<(std::ops::Range<usize>, usize)>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let declared = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if declared > MAX_FRAME_BYTES {
        return Err(ServeError::Protocol(format!(
            "frame declares {declared} bytes, above the {MAX_FRAME_BYTES} bound"
        )));
    }
    if buf.len() < 4 + declared {
        return Ok(None);
    }
    Ok(Some((4..4 + declared, 4 + declared)))
}

/// Blocking frame read for the client side: `Ok(None)` on clean EOF at
/// a frame boundary.
///
/// # Errors
///
/// I/O errors, EOF mid-frame, or a declared length beyond
/// [`MAX_FRAME_BYTES`].
pub fn read_frame(reader: &mut impl BufRead) -> std::io::Result<Option<Vec<u8>>> {
    use std::io::{Error, ErrorKind};
    let mut header = [0u8; 4];
    // A clean EOF before the first header byte ends the connection; an
    // EOF anywhere after it is a truncated frame.
    match reader.read(&mut header[..1])? {
        0 => return Ok(None),
        _ => reader.read_exact(&mut header[1..])?,
    }
    let declared = u32::from_le_bytes(header) as usize;
    if declared > MAX_FRAME_BYTES {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("frame declares {declared} bytes, above the {MAX_FRAME_BYTES} bound"),
        ));
    }
    let mut payload = vec![0u8; declared];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Decodes a request frame payload into the request *line* the JSON
/// framing would have carried — tag `0x00` is the line verbatim, tag
/// `0x01` expands to the canonical `ingest` wire form — so every
/// request, whatever its framing, takes the same handling path.
///
/// # Errors
///
/// [`ServeError::Protocol`] for an empty payload, an unknown tag,
/// non-UTF-8 text, or a malformed binary `ingest` body (truncated
/// fields, trailing garbage, lengths that disagree with the payload).
pub fn payload_to_line(payload: &[u8]) -> Result<String> {
    let (&tag, body) = payload
        .split_first()
        .ok_or_else(|| ServeError::Protocol("empty frame payload".into()))?;
    match tag {
        TAG_JSON => String::from_utf8(body.to_vec())
            .map_err(|_| ServeError::Protocol("frame text is not UTF-8".into())),
        TAG_INGEST => decode_ingest(body),
        other => Err(ServeError::Protocol(format!(
            "unknown frame payload tag 0x{other:02x}"
        ))),
    }
}

fn bad_ingest(what: &str) -> ServeError {
    ServeError::Protocol(format!("malformed binary ingest: {what}"))
}

/// Takes the next `n` bytes of `body`, advancing the cursor.
fn take<'a>(body: &'a [u8], at: &mut usize, n: usize, what: &str) -> Result<&'a [u8]> {
    let end = at
        .checked_add(n)
        .filter(|&e| e <= body.len())
        .ok_or_else(|| bad_ingest(what))?;
    let slice = &body[*at..end];
    *at = end;
    Ok(slice)
}

fn take_u64(body: &[u8], at: &mut usize, what: &str) -> Result<u64> {
    Ok(u64::from_le_bytes(
        take(body, at, 8, what)?.try_into().expect("8-byte slice"),
    ))
}

fn take_u32(body: &[u8], at: &mut usize, what: &str) -> Result<u32> {
    Ok(u32::from_le_bytes(
        take(body, at, 4, what)?.try_into().expect("4-byte slice"),
    ))
}

/// Decodes the binary `ingest` body into its canonical JSON line.
fn decode_ingest(body: &[u8]) -> Result<String> {
    let at = &mut 0usize;
    let id_len = take_u32(body, at, "truncated id length")? as usize;
    let id = String::from_utf8(take(body, at, id_len, "truncated cascade id")?.to_vec())
        .map_err(|_| bad_ingest("cascade id is not UTF-8"))?;
    let now = match take(body, at, 1, "truncated now flag")?[0] {
        0 => None,
        1 => Some(take_u64(body, at, "truncated now")?),
        _ => return Err(bad_ingest("now flag must be 0 or 1")),
    };
    let n = take_u32(body, at, "truncated vote count")? as usize;
    // 16 bytes per vote: an inflated count cannot out-declare the
    // already-bounded payload it arrived in.
    if n > body.len() / 16 + 1 {
        return Err(bad_ingest("vote count exceeds the payload"));
    }
    let mut votes = Vec::with_capacity(n);
    for _ in 0..n {
        let timestamp = take_u64(body, at, "truncated vote")?;
        let voter = take_u64(body, at, "truncated vote")?;
        let voter =
            usize::try_from(voter).map_err(|_| bad_ingest("voter id does not fit usize"))?;
        votes.push((timestamp, voter));
    }
    if *at != body.len() {
        return Err(bad_ingest("trailing bytes after the vote list"));
    }
    Ok(Request::Ingest {
        cascade: id,
        votes,
        now,
    }
    .to_json()
    .to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_lines_round_trip() {
        for t in [Transport::Lines, Transport::Binary] {
            assert_eq!(parse_hello(&hello_line(t)).unwrap().unwrap(), t);
        }
        assert!(parse_hello(r#"{"type":"stats"}"#).is_none());
        assert!(parse_hello("not json with hello inside").is_none());
        assert!(
            parse_hello(r#"{"type":"ingest","cascade":"hello","votes":[]}"#).is_none(),
            "a cascade merely named hello is not a negotiation"
        );
        assert!(parse_hello(r#"{"type":"hello"}"#).unwrap().is_err());
        assert!(
            parse_hello(r#"{"type":"hello","transport":"carrier-pigeon"}"#)
                .unwrap()
                .is_err()
        );
    }

    #[test]
    fn frames_round_trip_through_the_buffer_parser() {
        let mut buf = Vec::new();
        frame_into(b"abc", &mut buf);
        frame_into(b"", &mut buf);
        let (range, consumed) = try_extract_frame(&buf).unwrap().unwrap();
        assert_eq!(&buf[range], b"abc");
        let rest = &buf[consumed..];
        let (range, consumed) = try_extract_frame(rest).unwrap().unwrap();
        assert!(rest[range].is_empty());
        assert_eq!(consumed, rest.len());
    }

    #[test]
    fn partial_and_oversize_frames_are_detected() {
        assert!(try_extract_frame(&[1, 0]).unwrap().is_none());
        let mut buf = Vec::new();
        frame_into(b"abcdef", &mut buf);
        assert!(try_extract_frame(&buf[..7]).unwrap().is_none());
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        assert!(try_extract_frame(&huge).is_err());
    }

    #[test]
    fn binary_ingest_decodes_to_the_canonical_json_line() {
        let votes = vec![(1_244_000_000u64, 17usize), (1_244_000_700, 4)];
        let expected = Request::Ingest {
            cascade: "c-1".into(),
            votes: votes.clone(),
            now: Some(1_244_003_600),
        }
        .to_json()
        .to_string();
        let payload = encode_ingest_payload("c-1", &votes, Some(1_244_003_600));
        assert_eq!(payload_to_line(&payload).unwrap(), expected);
        // Without `now`, and with no votes at all.
        let payload = encode_ingest_payload("c-1", &[], None);
        let line = payload_to_line(&payload).unwrap();
        assert_eq!(
            line,
            Request::Ingest {
                cascade: "c-1".into(),
                votes: vec![],
                now: None,
            }
            .to_json()
            .to_string()
        );
    }

    #[test]
    fn hostile_payloads_are_rejected_not_panicked() {
        assert!(payload_to_line(&[]).is_err(), "empty payload");
        assert!(payload_to_line(&[0xff, 1, 2]).is_err(), "unknown tag");
        assert!(
            payload_to_line(&[TAG_JSON, 0xff, 0xfe]).is_err(),
            "bad utf8"
        );
        let good = encode_ingest_payload("c", &[(1, 2), (3, 4)], Some(9));
        // Every truncation of a valid payload must error cleanly.
        for cut in 1..good.len() {
            assert!(payload_to_line(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage after a complete body.
        let mut extended = good.clone();
        extended.push(0);
        assert!(payload_to_line(&extended).is_err());
        // A vote count that out-declares the payload.
        let mut lying = encode_ingest_payload("c", &[], None);
        let n_at = lying.len() - 4;
        lying[n_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(payload_to_line(&lying).is_err());
        // A bad `now` flag.
        let mut flagged = encode_ingest_payload("c", &[], None);
        let flag_at = 1 + 4 + 1; // tag, id_len, "c"
        flagged[flag_at] = 7;
        assert!(payload_to_line(&flagged).is_err());
    }
}
