//! Wire-level contract of the negotiated binary framing and the `batch`
//! verb, over real sockets:
//!
//! * the same request stream served over JSON lines and over binary
//!   frames yields **byte-identical** responses (the framing changes
//!   how bytes ride the socket, never which bytes);
//! * the compact binary `ingest` payload is equivalent to the JSON
//!   `ingest` line it expands to;
//! * hostile inputs — truncated frames, oversize declared lengths,
//!   garbage negotiation, mid-frame disconnects — are answered or
//!   dropped without taking the server (or any other connection) down;
//! * splitting one vote stream into arbitrary batch-ingest groupings
//!   leaves the server in bit-identical state to a one-vote-per-line
//!   replay (proptest).

use dlm_data::simulate::SIMULATED_SUBMIT_TIME;
use dlm_data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use dlm_serve::server::{DlmServer, ServeConfig, ServerState};
use dlm_serve::{wire, Json, LineClient, Transport};
use proptest::prelude::*;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};

const HORIZON: u32 = 6;

fn shared_world() -> &'static SyntheticWorld {
    static WORLD: OnceLock<SyntheticWorld> = OnceLock::new();
    WORLD.get_or_init(|| {
        SyntheticWorld::generate(WorldConfig::default().scaled(0.05)).expect("world")
    })
}

fn naive_state() -> ServerState {
    ServerState::with_world(
        ServeConfig {
            lineup: vec![dlm_core::registry::ModelSpec::Naive],
            ..ServeConfig::default()
        },
        shared_world().clone(),
    )
    .expect("server state")
}

fn story_votes() -> Vec<(u64, usize)> {
    let cascade = dlm_data::simulate::simulate_story(
        shared_world(),
        &StoryPreset::s1(),
        SimulationConfig {
            hours: HORIZON + 1,
            substeps: 2,
            seed: 13,
        },
    )
    .expect("story");
    cascade
        .votes()
        .iter()
        .map(|v| (v.timestamp, v.voter))
        .collect()
}

/// The request stream both transports replay: open, per-hour ingest
/// (with a clock advance), a forecast, a batch line, and a snapshot.
fn request_stream(votes: &[(u64, usize)]) -> Vec<String> {
    let submit = SIMULATED_SUBMIT_TIME;
    let mut lines = vec![format!(
        r#"{{"type":"open","cascade":"x","story":1,"horizon":{HORIZON}}}"#
    )];
    for hour in 1..=u64::from(HORIZON) {
        let window: Vec<String> = votes
            .iter()
            .filter(|&&(ts, _)| ts >= submit + (hour - 1) * 3600 && ts < submit + hour * 3600)
            .map(|&(ts, voter)| format!("[{ts},{voter}]"))
            .collect();
        lines.push(format!(
            r#"{{"type":"ingest","cascade":"x","votes":[{}],"now":{}}}"#,
            window.join(","),
            submit + hour * 3600,
        ));
    }
    lines.push(r#"{"type":"forecast","cascade":"x","hours":[3,4],"through":2}"#.into());
    lines.push(
        r#"{"type":"batch","requests":[{"type":"forecast","cascade":"x","hours":[5],"through":2},{"type":"snapshot","cascade":"x"}]}"#
            .into(),
    );
    lines.push(r#"{"type":"snapshot","cascade":"x"}"#.into());
    lines
}

#[test]
fn binary_framing_serves_byte_identical_responses_to_json_lines() {
    let votes = story_votes();
    let stream = request_stream(&votes);

    let replay = |transport: Transport| -> Vec<String> {
        let mut server = DlmServer::bind("127.0.0.1:0", naive_state()).expect("bind");
        let mut client = LineClient::connect(server.local_addr()).expect("connect");
        client.negotiate(transport).expect("negotiate");
        assert_eq!(client.transport(), transport);
        let responses: Vec<String> = stream
            .iter()
            .map(|line| client.send_raw(line).expect("round trip"))
            .collect();
        server.shutdown();
        responses
    };

    let over_lines = replay(Transport::Lines);
    let over_frames = replay(Transport::Binary);
    assert_eq!(
        over_lines, over_frames,
        "the negotiated framing changed response bytes"
    );
    // And the gate is non-vacuous: every response was an ok.
    for raw in &over_lines {
        let ok = Json::parse(raw)
            .ok()
            .and_then(|v| v.get("ok").and_then(Json::as_bool));
        assert_eq!(ok, Some(true), "{raw}");
    }
}

#[test]
fn compact_binary_ingest_is_equivalent_to_the_json_line() {
    let votes = story_votes();
    let submit = SIMULATED_SUBMIT_TIME;
    let now = submit + u64::from(HORIZON) * 3600;

    // Server A takes the canonical JSON ingest line; server B takes the
    // compact binary payload. Same votes, same clock — the responses
    // and the resulting snapshots must match byte for byte.
    let mut server_json = DlmServer::bind("127.0.0.1:0", naive_state()).expect("bind");
    let mut server_bin = DlmServer::bind("127.0.0.1:0", naive_state()).expect("bind");

    let open = format!(r#"{{"type":"open","cascade":"x","story":1,"horizon":{HORIZON}}}"#);
    let mut json_client = LineClient::connect(server_json.local_addr()).expect("connect");
    json_client.send_raw(&open).expect("open");
    let json_response = json_client
        .send_ingest("x", &votes, Some(now))
        .expect("json ingest");

    let mut bin_client = LineClient::connect(server_bin.local_addr()).expect("connect");
    bin_client.negotiate(Transport::Binary).expect("negotiate");
    bin_client.send_raw(&open).expect("open");
    let bin_response = bin_client
        .send_ingest("x", &votes, Some(now))
        .expect("binary ingest");

    assert_eq!(json_response.to_string(), bin_response.to_string());
    assert_eq!(
        json_response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{json_response}"
    );

    let snap = r#"{"type":"snapshot","cascade":"x"}"#;
    assert_eq!(
        json_client.send_raw(snap).expect("snapshot"),
        bin_client.send_raw(snap).expect("snapshot"),
        "binary-fed state diverges from JSON-fed state"
    );
    server_json.shutdown();
    server_bin.shutdown();
}

/// A raw socket speaking the negotiation + framing by hand, for hostile
/// input that `LineClient` refuses to produce.
struct RawConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Self { stream, reader }
    }

    fn send_line(&mut self, line: &str) -> String {
        self.stream.write_all(line.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write");
        let mut response = String::new();
        std::io::BufRead::read_line(&mut self.reader, &mut response).expect("read");
        response.trim_end().to_owned()
    }

    fn negotiate_binary(&mut self) {
        let response = self.send_line(&wire::hello_line(Transport::Binary));
        assert_eq!(response, wire::hello_response(Transport::Binary));
    }

    fn read_frame(&mut self) -> Option<Vec<u8>> {
        wire::read_frame(&mut self.reader).expect("frame read")
    }
}

fn server_answers(addr: SocketAddr) {
    let mut probe = LineClient::connect(addr).expect("fresh connect");
    let stats = probe.send(r#"{"type":"stats"}"#).expect("stats");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
}

#[test]
fn hostile_wire_input_never_takes_the_server_down() {
    let mut server = DlmServer::bind("127.0.0.1:0", naive_state()).expect("bind");
    let addr = server.local_addr();

    // A long-lived bystander connection that must survive every abuse
    // below.
    let mut bystander = LineClient::connect(addr).expect("bystander");

    // Garbage negotiation: unknown transport is answered with an error
    // and the connection stays in JSON-lines mode.
    {
        let mut conn = RawConn::connect(addr);
        let response = conn.send_line(r#"{"type":"hello","transport":"quantum"}"#);
        let parsed = Json::parse(&response).expect("error response parses");
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        // Still lines: a normal request on the same connection works.
        let stats = conn.send_line(r#"{"type":"stats"}"#);
        assert_eq!(
            Json::parse(&stats)
                .expect("stats parse")
                .get("ok")
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    // Not-even-JSON negotiation bytes fall through to the protocol
    // error path without breaking the connection.
    {
        let mut conn = RawConn::connect(addr);
        let response = conn.send_line("hello there, server");
        assert_eq!(
            Json::parse(&response)
                .expect("parse")
                .get("ok")
                .and_then(Json::as_bool),
            Some(false)
        );
    }

    // Oversize declared length: the header promises more than
    // MAX_FRAME_BYTES; the server answers one error frame and hangs up.
    {
        let mut conn = RawConn::connect(addr);
        conn.negotiate_binary();
        let len = (wire::MAX_FRAME_BYTES as u32) + 1;
        conn.stream
            .write_all(&len.to_le_bytes())
            .expect("evil header");
        let frame = conn.read_frame().expect("error frame before hangup");
        let text = String::from_utf8(frame).expect("utf8");
        assert_eq!(
            Json::parse(&text)
                .expect("parse")
                .get("ok")
                .and_then(Json::as_bool),
            Some(false)
        );
        // Connection is closed after the error frame.
        assert!(conn.read_frame().is_none());
    }

    // Truncated frame / mid-frame disconnect: promise 64 bytes, send 3,
    // vanish. The server just drops the connection.
    {
        let mut conn = RawConn::connect(addr);
        conn.negotiate_binary();
        conn.stream.write_all(&64u32.to_le_bytes()).expect("header");
        conn.stream.write_all(&[0x00, 0x7b, 0x22]).expect("stub");
        drop(conn);
    }

    // A garbage payload tag inside a well-formed frame is answered with
    // an error frame and the connection carries on.
    {
        let mut conn = RawConn::connect(addr);
        conn.negotiate_binary();
        conn.stream
            .write_all(&wire::encode_frame(&[0xff, 1, 2, 3]))
            .expect("bad tag frame");
        let frame = conn.read_frame().expect("error frame");
        let text = String::from_utf8(frame).expect("utf8");
        assert_eq!(
            Json::parse(&text)
                .expect("parse")
                .get("ok")
                .and_then(Json::as_bool),
            Some(false)
        );
        // Frame boundary was intact, so the connection still serves.
        conn.stream
            .write_all(&wire::encode_frame(&wire::encode_json_payload(
                r#"{"type":"stats"}"#,
            )))
            .expect("stats frame");
        let stats = String::from_utf8(conn.read_frame().expect("stats frame")).expect("utf8");
        assert_eq!(
            Json::parse(&stats)
                .expect("parse")
                .get("ok")
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    // Oversize JSON line without a newline: the reader gives up at the
    // bound instead of buffering forever.
    {
        let mut conn = RawConn::connect(addr);
        let chunk = vec![b'a'; 1 << 20];
        // 17 MiB of newline-free garbage > MAX_LINE_BYTES.
        for _ in 0..17 {
            if conn.stream.write_all(&chunk).is_err() {
                break; // server already hung up mid-flood; that's a pass
            }
        }
        let mut response = String::new();
        let _ = std::io::BufRead::read_line(&mut conn.reader, &mut response);
        // Either an error line arrived or the connection died; both are
        // acceptable — the assertions below prove the server survived.
    }

    // After all of that: the bystander connection still answers, and so
    // do fresh ones.
    let stats = bystander
        .send(r#"{"type":"stats"}"#)
        .expect("bystander lives");
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    server_answers(addr);
    server.shutdown();
}

/// Random (offset, voter) votes over the horizon, sorted by timestamp
/// so no grouping can trip late-vote rejection differently.
fn votes_strategy() -> impl Strategy<Value = Vec<(u64, usize)>> {
    prop::collection::vec((0u64..u64::from(HORIZON) * 3600, 0usize..40), 1..50).prop_map(
        |mut votes| {
            votes.sort_unstable();
            votes
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Splitting one sorted vote stream into arbitrary ingest groupings
    /// and packing those into arbitrary batch lines leaves the server
    /// in bit-identical state to a one-vote-per-line replay.
    #[test]
    fn any_batch_ingest_split_matches_one_vote_per_line(
        offsets in votes_strategy(),
        // Group sizes are taken cyclically; 1..=7 covers degenerate and
        // chunky splits alike.
        group_sizes in prop::collection::vec(1usize..8, 1..8),
        batch_sizes in prop::collection::vec(1usize..5, 1..5),
    ) {
        let submit = SIMULATED_SUBMIT_TIME;
        let votes: Vec<(u64, usize)> = offsets
            .iter()
            .map(|&(offset, voter)| (submit + offset, voter))
            .collect();
        let open = format!(r#"{{"type":"open","cascade":"x","story":1,"horizon":{HORIZON}}}"#);
        let close = format!(
            r#"{{"type":"ingest","cascade":"x","votes":[],"now":{}}}"#,
            submit + u64::from(HORIZON) * 3600,
        );

        // Replay A: every vote is its own ingest line.
        let plain = Arc::new(naive_state());
        plain.handle_line(&open);
        for &(ts, voter) in &votes {
            plain.handle_line(&format!(
                r#"{{"type":"ingest","cascade":"x","votes":[[{ts},{voter}]]}}"#
            ));
        }
        plain.handle_line(&close);

        // Replay B: the same votes cut into groups (one ingest item per
        // group), the groups packed into batch lines.
        let batched = Arc::new(naive_state());
        batched.handle_line(&open);
        let mut items: Vec<String> = Vec::new();
        let mut cursor = 0usize;
        let mut size_i = 0usize;
        while cursor < votes.len() {
            let take = group_sizes[size_i % group_sizes.len()].min(votes.len() - cursor);
            size_i += 1;
            let body: Vec<String> = votes[cursor..cursor + take]
                .iter()
                .map(|&(ts, voter)| format!("[{ts},{voter}]"))
                .collect();
            items.push(format!(
                r#"{{"type":"ingest","cascade":"x","votes":[{}]}}"#,
                body.join(",")
            ));
            cursor += take;
        }
        let mut item_cursor = 0usize;
        let mut batch_i = 0usize;
        while item_cursor < items.len() {
            let take = batch_sizes[batch_i % batch_sizes.len()].min(items.len() - item_cursor);
            batch_i += 1;
            let response = batched.handle_line(&format!(
                r#"{{"type":"batch","requests":[{}]}}"#,
                items[item_cursor..item_cursor + take].join(",")
            ));
            let parsed = Json::parse(&response).expect("batch response parses");
            prop_assert_eq!(
                parsed.get("ok").and_then(Json::as_bool),
                Some(true),
                "batch rejected: {}",
                response
            );
            item_cursor += take;
        }
        batched.handle_line(&close);

        // Bit-identical state: snapshots carry the full ingest state,
        // and the forecast path must agree byte-for-byte.
        let snap = r#"{"type":"snapshot","cascade":"x"}"#;
        prop_assert_eq!(plain.handle_line(snap), batched.handle_line(snap));
        let forecast = r#"{"type":"forecast","cascade":"x","hours":[3,4],"through":2}"#;
        prop_assert_eq!(plain.handle_line(forecast), batched.handle_line(forecast));
    }
}
