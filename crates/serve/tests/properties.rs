//! Property: for random vote streams on random graphs, the streaming
//! [`LiveCascade`]'s rolling density matrix is bit-identical to the
//! batch [`hop_density_matrix`] built on the same prefix, at every hour
//! boundary.

use dlm_cascade::hops::hop_density_matrix;
use dlm_cascade::DensityMatrix;
use dlm_data::simulate::{Cascade, SIMULATED_SUBMIT_TIME};
use dlm_data::Vote;
use dlm_graph::GraphBuilder;
use dlm_serve::LiveCascade;
use proptest::prelude::*;

const HORIZON: u32 = 6;

/// A random digraph in which node 0 (the initiator) reaches someone.
fn graph_strategy() -> impl Strategy<Value = dlm_graph::DiGraph> {
    (
        6usize..32,
        prop::collection::vec((0usize..32, 0usize..32), 0..80),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::new(n);
            builder.add_edge(0, 1).expect("n >= 2");
            for (u, v) in edges {
                let (u, v) = (u % n, v % n);
                if u != v {
                    builder.add_edge(u, v).expect("in range");
                }
            }
            builder.build()
        })
}

/// Random votes: (seconds offset into the horizon + a beyond-horizon
/// tail, voter). Some voters are deliberately out of range of every hop
/// group and some offsets beyond the horizon, because the batch builder
/// ignores both and the live one must too.
fn votes_strategy() -> impl Strategy<Value = Vec<(u64, usize)>> {
    prop::collection::vec((0u64..u64::from(HORIZON + 2) * 3600, 0usize..40), 0..60)
}

fn bits(matrix: &DensityMatrix) -> Vec<u64> {
    (1..=matrix.max_distance())
        .flat_map(|d| {
            matrix
                .series(d)
                .expect("in range")
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rolling_matrix_matches_batch_at_every_hour_boundary(
        graph in graph_strategy(),
        raw_votes in votes_strategy(),
        max_hops in 1u32..6,
    ) {
        let submit = SIMULATED_SUBMIT_TIME;
        let mut votes: Vec<Vote> = raw_votes
            .iter()
            .map(|&(offset, voter)| Vote {
                timestamp: submit + offset,
                voter,
                story: 1,
            })
            .collect();
        votes.sort_unstable();

        // The live side consumes the stream one event at a time.
        let mut live = match LiveCascade::for_hops(&graph, 0, max_hops, submit, HORIZON) {
            Ok(live) => live,
            // Initiator reaching nobody is rejected identically by the
            // batch path; nothing further to compare.
            Err(_) => {
                prop_assert!(hop_density_matrix(
                    &graph,
                    &Cascade::from_parts(1, 0, submit, votes).unwrap(),
                    max_hops,
                    HORIZON,
                )
                .is_err());
                return Ok(());
            }
        };
        for vote in &votes {
            live.ingest(*vote).unwrap();
        }
        live.advance_to(submit + u64::from(HORIZON) * 3600);
        prop_assert_eq!(live.closed_hours(), HORIZON);

        // The batch side sees the whole stream at once; truncating its
        // span to `k` hours is exactly "the same prefix", because votes
        // beyond hour `k` never enter the first `k` columns.
        let cascade = Cascade::from_parts(1, 0, submit, votes).unwrap();
        for k in 1..=HORIZON {
            let batch = hop_density_matrix(&graph, &cascade, max_hops, k).unwrap();
            let rolling = live.matrix_through(k).unwrap();
            prop_assert_eq!(rolling.max_distance(), batch.max_distance());
            prop_assert_eq!(rolling.max_hour(), batch.max_hour());
            prop_assert_eq!(
                bits(&rolling),
                bits(&batch),
                "bit divergence at hour boundary {}",
                k
            );
            for d in 1..=batch.max_distance() {
                prop_assert_eq!(
                    rolling.group_size(d).unwrap(),
                    batch.group_size(d).unwrap()
                );
            }
        }
    }

    #[test]
    fn interleaved_advance_does_not_change_the_matrix(
        graph in graph_strategy(),
        raw_votes in votes_strategy(),
    ) {
        let submit = SIMULATED_SUBMIT_TIME;
        let mut votes: Vec<Vote> = raw_votes
            .iter()
            .map(|&(offset, voter)| Vote {
                timestamp: submit + offset,
                voter,
                story: 1,
            })
            .collect();
        votes.sort_unstable();
        let Ok(mut eager) = LiveCascade::for_hops(&graph, 0, 4, submit, HORIZON) else {
            return Ok(());
        };
        let mut lazy = eager.clone();
        // One stream advances the clock after every event, the other
        // only at the end — closed hours may differ mid-stream, but the
        // final matrices must not.
        for vote in &votes {
            eager.ingest(*vote).unwrap();
            eager.advance_to(vote.timestamp);
            lazy.ingest(*vote).unwrap();
        }
        let end = submit + u64::from(HORIZON) * 3600;
        eager.advance_to(end);
        lazy.advance_to(end);
        prop_assert_eq!(eager.closed_hours(), lazy.closed_hours());
        let a = eager.matrix().unwrap();
        let b = lazy.matrix().unwrap();
        prop_assert_eq!(bits(&a), bits(&b));
    }
}
