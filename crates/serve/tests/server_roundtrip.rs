//! End-to-end contract of the TCP front end, and the PR's central
//! determinism gate: a forecast served by `dlm-serve` after ingesting
//! hours `1..=k` of a cascade is **byte-identical** to the offline
//! [`EvaluationPipeline`] / fit-and-predict path run on the same k-hour
//! observation, for every model in the full lineup — across a real
//! socket, through the JSON wire format.

use dlm_cascade::hops::hop_density_matrix;
use dlm_core::evaluate::{EvaluationCase, EvaluationPipeline, Parallelism};
use dlm_core::predict::GraphContext;
use dlm_core::registry::{ModelRegistry, ModelSpec};
use dlm_core::PredictionRequest;
use dlm_data::simulate::simulate_story;
use dlm_data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use dlm_serve::server::{DlmServer, ServeConfig, ServerState};
use dlm_serve::{Json, LineClient};
use std::sync::Arc;

const MAX_HOPS: u32 = 4;
const HORIZON: u32 = 6;
const OBSERVE_THROUGH: u32 = 2;

struct Client {
    inner: LineClient,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        Self {
            inner: LineClient::connect(addr).expect("connect"),
        }
    }

    /// Sends one request line, returns the raw response line.
    fn send_raw(&mut self, line: &str) -> String {
        self.inner.send_raw(line).expect("round trip")
    }

    fn send(&mut self, line: &str) -> Json {
        self.inner.send(line).expect("round trip")
    }
}

fn f64_bits(v: &Json) -> u64 {
    v.as_f64().expect("numeric cell").to_bits()
}

#[test]
fn served_forecasts_are_byte_identical_to_the_offline_pipeline() {
    // One synthetic story, simulated once; both the server (event by
    // event) and the offline pipeline (all at once) observe it.
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.12)).unwrap();
    let config = SimulationConfig {
        hours: 8,
        substeps: 2,
        seed: 13,
    };
    let cascade = simulate_story(&world, &StoryPreset::s1(), config).unwrap();
    let batch_matrix = hop_density_matrix(world.graph(), &cascade, MAX_HOPS, HORIZON).unwrap();
    assert!(
        batch_matrix.profile_at(1).unwrap().iter().any(|&v| v > 0.0),
        "hour 1 must carry signal for a meaningful fit"
    );

    let state = ServerState::with_world(
        ServeConfig {
            parallelism: Parallelism::Fixed(2),
            ..ServeConfig::default()
        },
        world.clone(),
    )
    .unwrap();
    let lineup = state.lineup();
    let mut server = DlmServer::bind("127.0.0.1:0", state).unwrap();
    let mut client = Client::connect(server.local_addr());

    // Open + stream the full vote log in timestamp order, then close
    // the horizon with a clock advance.
    let open = client.send(&format!(
        r#"{{"type":"open","cascade":"s1","initiator":{},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{}}}"#,
        cascade.initiator(),
        cascade.submit_time(),
    ));
    assert_eq!(open.get("ok").unwrap().as_bool(), Some(true), "{open}");
    assert_eq!(
        open.get("distances").unwrap().as_u64(),
        Some(u64::from(batch_matrix.max_distance())),
        "live and batch must bucket into the same groups"
    );
    let votes_json: Vec<String> = cascade
        .votes()
        .iter()
        .map(|v| format!("[{},{}]", v.timestamp, v.voter))
        .collect();
    let ingest = client.send(&format!(
        r#"{{"type":"ingest","cascade":"s1","votes":[{}],"now":{}}}"#,
        votes_json.join(","),
        cascade.submit_time() + u64::from(HORIZON) * 3600,
    ));
    assert_eq!(ingest.get("ok").unwrap().as_bool(), Some(true), "{ingest}");
    assert_eq!(
        ingest.get("closed_hours").unwrap().as_u64(),
        Some(u64::from(HORIZON))
    );

    // Forecast hours 3..=6 from the first two observed hours.
    let target_hours: Vec<u32> = (OBSERVE_THROUGH + 1..=HORIZON).collect();
    let forecast_line = format!(
        r#"{{"type":"forecast","cascade":"s1","hours":[{}],"through":{OBSERVE_THROUGH}}}"#,
        target_hours
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    );
    let raw_first = client.send_raw(&forecast_line);
    let served = Json::parse(&raw_first).unwrap();
    assert_eq!(served.get("ok").unwrap().as_bool(), Some(true), "{served}");
    let served_models = served.get("models").unwrap().as_array().unwrap();
    assert_eq!(served_models.len(), lineup.len());

    // Offline twin: the same k-hour observation as an EvaluationCase.
    let graph = Arc::new(world.graph().clone());
    let hour1: Vec<usize> = cascade.votes_within(1).iter().map(|v| v.voter).collect();
    let case = EvaluationCase::forecast("s1", batch_matrix.clone(), 1, OBSERVE_THROUGH, HORIZON)
        .unwrap()
        .with_graph(GraphContext::new(
            Arc::clone(&graph),
            cascade.initiator(),
            hour1,
        ));
    let observation = case.observation().unwrap();
    let report = EvaluationPipeline::full_lineup()
        .parallelism(Parallelism::Serial)
        .run(std::slice::from_ref(&case))
        .unwrap();

    let registry = ModelRegistry::with_builtins();
    let distances: Vec<u32> = (1..=batch_matrix.max_distance()).collect();
    let request = PredictionRequest::new(distances.clone(), target_hours.clone()).unwrap();
    for (mi, spec) in ModelSpec::default_lineup().iter().enumerate() {
        let entry = &served_models[mi];
        assert_eq!(
            entry.get("spec").unwrap().as_str(),
            Some(lineup[mi].as_str())
        );
        let outcome = report.outcome(mi, 0).unwrap();
        assert_eq!(outcome.spec, lineup[mi]);

        match entry.get("error") {
            Some(error) => {
                // Full-lineup cases carry graph context, so nothing
                // should fail here — but if it did, the failure itself
                // must match the pipeline's.
                assert_eq!(
                    error.as_str(),
                    outcome.error.as_deref(),
                    "spec {spec}: error divergence"
                );
            }
            None => {
                assert!(
                    outcome.error.is_none(),
                    "spec {spec}: pipeline failed ({:?}) but the server served",
                    outcome.error
                );
                // Fitted parameters: byte-identical to the pipeline's.
                let served_params: Vec<u64> = entry
                    .get("params")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(f64_bits)
                    .collect();
                let offline_params: Vec<u64> = outcome.params.iter().map(|p| p.to_bits()).collect();
                assert_eq!(served_params, offline_params, "spec {spec}: params diverge");

                // Predicted densities: byte-identical to fit+predict on
                // the same observation through the same registry.
                let fitted = registry.build(spec).unwrap().fit(&observation).unwrap();
                let prediction = fitted.predict(&request).unwrap();
                let values = entry.get("values").unwrap().as_array().unwrap();
                for (di, &d) in distances.iter().enumerate() {
                    let row = values[di].as_array().unwrap();
                    for (hi, &h) in target_hours.iter().enumerate() {
                        assert_eq!(
                            f64_bits(&row[hi]),
                            prediction.at(d, h).unwrap().to_bits(),
                            "spec {spec}: I({d}, {h}) diverges"
                        );
                    }
                }
            }
        }
    }

    // Serving is repeatable: the identical request yields the identical
    // bytes (pure cache replay the second time).
    let raw_second = client.send_raw(&forecast_line);
    assert_eq!(raw_first, raw_second);

    // A second client sees the same bytes too.
    let mut other = Client::connect(server.local_addr());
    assert_eq!(other.send_raw(&forecast_line), raw_first);

    // The refit scheduler ran on hour close and the cache took hits.
    let stats = client.send(r#"{"type":"stats"}"#);
    assert_eq!(stats.get("ok").unwrap().as_bool(), Some(true));
    let refit_jobs = stats.get("refit_jobs").unwrap().as_u64().unwrap();
    assert_eq!(refit_jobs, u64::from(HORIZON) * lineup.len() as u64);
    let cache = stats.get("cache").unwrap();
    assert!(cache.get("hits").unwrap().as_u64().unwrap() >= lineup.len() as u64);
    assert!(cache.get("len").unwrap().as_u64().unwrap() > 0);

    server.shutdown();
}

#[test]
fn multi_start_spec_served_over_the_wire_matches_the_offline_fit() {
    // The refit path honors the multi-start spec keys: an ad-hoc
    // `dl-cal(...,starts=3,mseed=5)` requested over the wire must serve
    // the byte-identical fit the offline registry path computes — i.e.
    // the serve tier picks the multi-start engine up with no code of
    // its own, purely through the spec string.
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.1)).unwrap();
    let config = SimulationConfig {
        hours: 6,
        substeps: 2,
        seed: 13,
    };
    let cascade = simulate_story(&world, &StoryPreset::s1(), config).unwrap();
    let batch_matrix = hop_density_matrix(world.graph(), &cascade, MAX_HOPS, 4).unwrap();

    let state = ServerState::with_world(
        ServeConfig {
            parallelism: Parallelism::Fixed(2),
            prewarm: false, // only the requested ad-hoc spec should fit
            ..ServeConfig::default()
        },
        world.clone(),
    )
    .unwrap();
    let mut server = DlmServer::bind("127.0.0.1:0", state).unwrap();
    let mut client = Client::connect(server.local_addr());

    let open = client.send(&format!(
        r#"{{"type":"open","cascade":"ms","initiator":{},"max_hops":{MAX_HOPS},"horizon":4,"submit_time":{}}}"#,
        cascade.initiator(),
        cascade.submit_time(),
    ));
    assert_eq!(open.get("ok").unwrap().as_bool(), Some(true), "{open}");
    let votes_json: Vec<String> = cascade
        .votes()
        .iter()
        .map(|v| format!("[{},{}]", v.timestamp, v.voter))
        .collect();
    client.send(&format!(
        r#"{{"type":"ingest","cascade":"ms","votes":[{}],"now":{}}}"#,
        votes_json.join(","),
        cascade.submit_time() + 4 * 3600,
    ));

    let spec_text = "dl-cal(d0=0.01,K0=25,r0=hops,fitK=true,evals=100,starts=3,mseed=5)";
    let served = client.send(&format!(
        r#"{{"type":"forecast","cascade":"ms","hours":[3,4],"through":2,"models":["{spec_text}"]}}"#,
    ));
    assert_eq!(served.get("ok").unwrap().as_bool(), Some(true), "{served}");
    let entry = &served.get("models").unwrap().as_array().unwrap()[0];
    assert_eq!(entry.get("spec").unwrap().as_str(), Some(spec_text));
    assert!(entry.get("error").is_none(), "{entry}");

    // Offline twin through the same registry and observation window.
    let spec: ModelSpec = spec_text.parse().unwrap();
    let observation = EvaluationCase::forecast("ms", batch_matrix.clone(), 1, 2, 4)
        .unwrap()
        .observation()
        .unwrap();
    let fitted = ModelRegistry::with_builtins()
        .build(&spec)
        .unwrap()
        .fit(&observation)
        .unwrap();
    let served_params: Vec<u64> = entry
        .get("params")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(f64_bits)
        .collect();
    let offline_params: Vec<u64> = fitted.params().iter().map(|p| p.to_bits()).collect();
    assert_eq!(served_params, offline_params, "multi-start params diverge");

    let distances: Vec<u32> = (1..=batch_matrix.max_distance()).collect();
    let request = PredictionRequest::new(distances.clone(), vec![3, 4]).unwrap();
    let prediction = fitted.predict(&request).unwrap();
    let values = entry.get("values").unwrap().as_array().unwrap();
    for (di, &d) in distances.iter().enumerate() {
        let row = values[di].as_array().unwrap();
        for (hi, &h) in [3u32, 4].iter().enumerate() {
            assert_eq!(
                f64_bits(&row[hi]),
                prediction.at(d, h).unwrap().to_bits(),
                "multi-start I({d}, {h}) diverges"
            );
        }
    }

    server.shutdown();
}

#[test]
fn interest_metric_open_serves_batch_identical_forecasts() {
    use dlm_cascade::interest_groups::{interest_density_matrix, GroupingStrategy};
    use dlm_core::predict::Observation;

    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.12)).unwrap();
    let cascade = simulate_story(
        &world,
        &StoryPreset::s1(),
        SimulationConfig {
            hours: 8,
            substeps: 2,
            seed: 13,
        },
    )
    .unwrap();
    // The offline twin of what the server should observe: the batch
    // interest-distance density matrix on the same votes.
    let batch = interest_density_matrix(
        world.profile(),
        world.user_count(),
        &cascade,
        5,
        HORIZON,
        GroupingStrategy::EqualWidth,
    )
    .unwrap();

    // The interest metric carries no graph context, so serve the
    // graph-free half of the lineup.
    let lineup = vec![
        ModelSpec::paper_hops_dl(),
        ModelSpec::LogisticOnly {
            capacity: 25.0,
            growth: dlm_core::predict::GrowthFamily::PaperInterest,
        },
        ModelSpec::Naive,
        ModelSpec::LinearTrend,
    ];
    let state = ServerState::with_world(
        ServeConfig {
            lineup: lineup.clone(),
            ..ServeConfig::default()
        },
        world.clone(),
    )
    .unwrap();
    let mut server = DlmServer::bind("127.0.0.1:0", state).unwrap();
    let mut client = Client::connect(server.local_addr());

    let open = client.send(&format!(
        r#"{{"type":"open","cascade":"i1","initiator":{},"metric":"interest","groups":5,"strategy":"width","horizon":{HORIZON},"submit_time":{}}}"#,
        cascade.initiator(),
        cascade.submit_time(),
    ));
    assert_eq!(open.get("ok").unwrap().as_bool(), Some(true), "{open}");
    assert_eq!(open.get("metric").unwrap().as_str(), Some("interest"));
    assert_eq!(
        open.get("distances").unwrap().as_u64(),
        Some(u64::from(batch.max_distance())),
        "live and batch must bin into the same interest groups"
    );

    let votes_json: Vec<String> = cascade
        .votes()
        .iter()
        .map(|v| format!("[{},{}]", v.timestamp, v.voter))
        .collect();
    let ingest = client.send(&format!(
        r#"{{"type":"ingest","cascade":"i1","votes":[{}],"now":{}}}"#,
        votes_json.join(","),
        cascade.submit_time() + u64::from(HORIZON) * 3600,
    ));
    assert_eq!(ingest.get("ok").unwrap().as_bool(), Some(true), "{ingest}");

    let target_hours: Vec<u32> = (OBSERVE_THROUGH + 1..=HORIZON).collect();
    let served = client.send(&format!(
        r#"{{"type":"forecast","cascade":"i1","hours":[{}],"through":{OBSERVE_THROUGH}}}"#,
        target_hours
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    ));
    assert_eq!(served.get("ok").unwrap().as_bool(), Some(true), "{served}");
    let served_models = served.get("models").unwrap().as_array().unwrap();

    let observed_hours: Vec<u32> = (1..=OBSERVE_THROUGH).collect();
    let observation = Observation::from_matrix(&batch, &observed_hours).unwrap();
    let distances: Vec<u32> = (1..=batch.max_distance()).collect();
    let request = PredictionRequest::new(distances.clone(), target_hours.clone()).unwrap();
    let registry = ModelRegistry::with_builtins();
    for (mi, spec) in lineup.iter().enumerate() {
        let fitted = registry.build(spec).unwrap().fit(&observation).unwrap();
        let prediction = fitted.predict(&request).unwrap();
        let values = served_models[mi].get("values").unwrap().as_array().unwrap();
        for (di, &d) in distances.iter().enumerate() {
            let row = values[di].as_array().unwrap();
            for (hi, &h) in target_hours.iter().enumerate() {
                assert_eq!(
                    f64_bits(&row[hi]),
                    prediction.at(d, h).unwrap().to_bits(),
                    "spec {spec}: I({d}, {h}) diverges on the interest metric"
                );
            }
        }
    }
    server.shutdown();
}

#[test]
fn abandoned_cascades_expire_and_bounded_store_evicts() {
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.05)).unwrap();
    let state = ServerState::with_world(
        ServeConfig {
            lineup: vec![ModelSpec::Naive],
            cascade_capacity: 2,
            cascade_ttl: Some(std::time::Duration::from_millis(100)),
            ..ServeConfig::default()
        },
        world,
    )
    .unwrap();
    let mut server = DlmServer::bind("127.0.0.1:0", state).unwrap();
    let mut client = Client::connect(server.local_addr());

    // TTL expiry: an untouched cascade vanishes, its id is free again,
    // and the expiration is counted in stats.
    let open = client.send(r#"{"type":"open","cascade":"idle","story":1,"horizon":3}"#);
    assert_eq!(open.get("ok").unwrap().as_bool(), Some(true), "{open}");
    std::thread::sleep(std::time::Duration::from_millis(300));
    let stats = client.send(r#"{"type":"stats"}"#);
    assert_eq!(stats.get("cascades").unwrap().as_u64(), Some(0));
    assert_eq!(stats.get("cascade_expirations").unwrap().as_u64(), Some(1));
    let gone = client.send(r#"{"type":"forecast","cascade":"idle","hours":[2]}"#);
    assert!(gone
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("unknown cascade"));
    let reopened = client.send(r#"{"type":"open","cascade":"idle","story":1,"horizon":3}"#);
    assert_eq!(reopened.get("ok").unwrap().as_bool(), Some(true));
    server.shutdown();

    // Capacity bound (no TTL, so timing cannot interfere): the third
    // open evicts the coldest cascade.
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.05)).unwrap();
    let state = ServerState::with_world(
        ServeConfig {
            lineup: vec![ModelSpec::Naive],
            cascade_capacity: 2,
            ..ServeConfig::default()
        },
        world,
    )
    .unwrap();
    let mut server = DlmServer::bind("127.0.0.1:0", state).unwrap();
    let mut client = Client::connect(server.local_addr());
    for id in ["a", "b", "c"] {
        let open = client.send(&format!(
            r#"{{"type":"open","cascade":"{id}","story":1,"horizon":3}}"#
        ));
        assert_eq!(open.get("ok").unwrap().as_bool(), Some(true), "{open}");
    }
    let stats = client.send(r#"{"type":"stats"}"#);
    assert_eq!(stats.get("cascades").unwrap().as_u64(), Some(2));
    assert_eq!(stats.get("cascade_evictions").unwrap().as_u64(), Some(1));
    // `a` was the coldest and is gone; `b` and `c` survived.
    let evicted = client.send(r#"{"type":"forecast","cascade":"a","hours":[2]}"#);
    assert!(evicted
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("unknown cascade"));
    server.shutdown();
}

#[test]
fn protocol_errors_do_not_kill_the_connection() {
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.05)).unwrap();
    let state = ServerState::with_world(
        ServeConfig {
            lineup: vec![ModelSpec::Naive],
            ..ServeConfig::default()
        },
        world,
    )
    .unwrap();
    let mut server = DlmServer::bind("127.0.0.1:0", state).unwrap();
    let mut client = Client::connect(server.local_addr());

    for (line, needle) in [
        ("this is not json", "protocol error"),
        (r#"{"type":"warp"}"#, "unknown request type"),
        (
            r#"{"type":"ingest","cascade":"ghost","votes":[]}"#,
            "unknown cascade",
        ),
        (
            r#"{"type":"forecast","cascade":"ghost","hours":[2]}"#,
            "unknown cascade",
        ),
        (
            r#"{"type":"open","cascade":"x"}"#,
            "exactly one of `initiator` or `story`",
        ),
    ] {
        let response = client.send(line);
        assert_eq!(response.get("ok").unwrap().as_bool(), Some(false), "{line}");
        let message = response.get("error").unwrap().as_str().unwrap();
        assert!(message.contains(needle), "`{line}` -> `{message}`");
    }

    // The connection still works after every rejected request.
    let open = client.send(r#"{"type":"open","cascade":"x","story":1,"horizon":3}"#);
    assert_eq!(open.get("ok").unwrap().as_bool(), Some(true), "{open}");
    // Duplicate ids are rejected.
    let dup = client.send(r#"{"type":"open","cascade":"x","story":1,"horizon":3}"#);
    assert!(dup
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("already open"));
    // Late votes are rejected once an hour closes.
    let submit = dlm_data::simulate::SIMULATED_SUBMIT_TIME;
    let ingest = client.send(&format!(
        r#"{{"type":"ingest","cascade":"x","votes":[[{},1]],"now":{}}}"#,
        submit + 2 * 3600 + 5,
        submit + 2 * 3600 + 5,
    ));
    assert_eq!(ingest.get("closed_hours").unwrap().as_u64(), Some(2));
    let late = client.send(&format!(
        r#"{{"type":"ingest","cascade":"x","votes":[[{},2]]}}"#,
        submit + 3600,
    ));
    assert!(late
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("late vote"));
    // Forecasts for unclosed hours are rejected.
    let bad = client.send(r#"{"type":"forecast","cascade":"x","hours":[4],"through":9}"#);
    assert!(bad
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("not closed"));

    server.shutdown();
}

/// The PR's acceptance gate for the serving rework: the reactor front
/// end speaking the negotiated binary framing with batched requests
/// serves the **full default lineup** byte-identically to the legacy
/// thread-per-connection front end speaking plain JSON lines — over
/// real sockets, for the complete response stream.
#[test]
fn reactor_batch_binary_serves_the_lineup_byte_identically_to_legacy_lines() {
    use dlm_serve::protocol::batch_response;
    use dlm_serve::{FrontEnd, Transport};

    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.12)).unwrap();
    let config = SimulationConfig {
        hours: 8,
        substeps: 2,
        seed: 13,
    };
    let cascade = simulate_story(&world, &StoryPreset::s1(), config).unwrap();
    let submit = cascade.submit_time();

    // The logical request sequence every run replays: open, hour-by-hour
    // ingest with clock advances, two forecasts, a snapshot.
    let mut requests = vec![format!(
        r#"{{"type":"open","cascade":"s1","initiator":{},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#,
        cascade.initiator(),
    )];
    for hour in 1..=u64::from(HORIZON) {
        let window: Vec<String> = cascade
            .votes()
            .iter()
            .filter(|v| {
                v.timestamp >= submit + (hour - 1) * 3600 && v.timestamp < submit + hour * 3600
            })
            .map(|v| format!("[{},{}]", v.timestamp, v.voter))
            .collect();
        requests.push(format!(
            r#"{{"type":"ingest","cascade":"s1","votes":[{}],"now":{}}}"#,
            window.join(","),
            submit + hour * 3600,
        ));
    }
    requests.push(format!(
        r#"{{"type":"forecast","cascade":"s1","hours":[{}],"through":{OBSERVE_THROUGH}}}"#,
        (OBSERVE_THROUGH + 1..=HORIZON)
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(","),
    ));
    requests.push(format!(
        r#"{{"type":"forecast","cascade":"s1","hours":[{HORIZON}],"through":{}}}"#,
        OBSERVE_THROUGH + 1,
    ));
    requests.push(r#"{"type":"snapshot","cascade":"s1"}"#.to_owned());

    // Replays the stream against a fresh full-lineup server; with
    // `batch > 1`, requests ride `batch` verbs and the raw batch
    // responses are returned alongside the per-request stream.
    let run = |front: FrontEnd,
               transport: Transport,
               batch: usize|
     -> (Vec<String>, Vec<String>, String) {
        let state = ServerState::with_world(
            ServeConfig {
                parallelism: Parallelism::Fixed(2),
                ..ServeConfig::default()
            },
            world.clone(),
        )
        .unwrap();
        let mut server = DlmServer::bind_with("127.0.0.1:0", Arc::new(state), front).unwrap();
        let mut client = LineClient::connect(server.local_addr()).unwrap();
        client.negotiate(transport).unwrap();
        let mut responses = Vec::new();
        let mut batch_raw = Vec::new();
        if batch <= 1 {
            for line in &requests {
                responses.push(client.send_raw(line).unwrap());
            }
        } else {
            for chunk in requests.chunks(batch) {
                let line = format!(r#"{{"type":"batch","requests":[{}]}}"#, chunk.join(","));
                let raw = client.send_raw(&line).unwrap();
                let parsed = Json::parse(&raw).unwrap();
                assert_eq!(
                    parsed.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "{raw}"
                );
                let results = parsed.get("results").unwrap().as_array().unwrap();
                assert_eq!(results.len(), chunk.len());
                batch_raw.push(raw);
            }
        }
        // Scrape telemetry on the same connection before teardown; the
        // scrape's own count lands after its snapshot, so the counters
        // reflect exactly the replayed requests.
        let metrics_raw = client.send_raw(r#"{"type":"metrics"}"#).unwrap();
        server.shutdown();
        (responses, batch_raw, metrics_raw)
    };

    let (legacy, _, legacy_metrics) = run(FrontEnd::ThreadPerConnection, Transport::Lines, 1);
    let (reactor, _, reactor_metrics) =
        run(FrontEnd::Reactor { io_threads: 2 }, Transport::Binary, 1);
    let (_, batched, batched_metrics) =
        run(FrontEnd::Reactor { io_threads: 2 }, Transport::Binary, 3);

    // Gate 1: reactor + binary framing, request by request, serves the
    // same bytes the legacy line front end does — and non-vacuously so.
    assert_eq!(legacy.len(), requests.len());
    for (i, (l, r)) in legacy.iter().zip(&reactor).enumerate() {
        assert_eq!(
            l, r,
            "request {i}: reactor/binary diverged from legacy/lines"
        );
        assert_eq!(
            Json::parse(l).unwrap().get("ok").and_then(Json::as_bool),
            Some(true),
            "request {i} failed: {l}"
        );
    }
    // The big forecast response really carries the full default lineup.
    let forecast = Json::parse(&legacy[requests.len() - 3]).unwrap();
    assert_eq!(
        forecast.get("models").unwrap().as_array().unwrap().len(),
        ModelSpec::default_lineup().len(),
    );

    // Gate 2: the batched replay's raw wire bytes are exactly the
    // per-request responses spliced through the canonical wrapper.
    let expected: Vec<String> = legacy.chunks(3).map(batch_response).collect();
    assert_eq!(batched, expected, "batch framing changed response bytes");

    // Gate 3: the `metrics` scrape taken during each replay reports
    // per-verb request counters exactly matching the requests sent —
    // the stream is 1 open + HORIZON ingests + 2 forecasts + 1
    // snapshot — with zero errors, on every front end and transport.
    let ingests = u64::from(HORIZON);
    let per_verb: &[(&str, u64)] = &[
        ("open", 1),
        ("ingest", ingests),
        ("forecast", 2),
        ("snapshot", 1),
        ("stats", 0),
        ("metrics", 0), // a scrape counts itself only after its snapshot
        ("invalid", 0),
    ];
    let verify = |metrics_raw: &str, transport: &str, batch_lines: u64, wire_lines: u64| {
        let parsed = Json::parse(metrics_raw).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(true));
        let exposition = parsed.get("exposition").unwrap().as_str().unwrap();
        assert!(exposition.contains("# TYPE dlm_requests_total counter"));
        let snap = dlm_serve::snapshot_from_json(parsed.get("snapshot").unwrap()).unwrap();
        for &(verb, n) in per_verb.iter().chain(&[("batch", batch_lines)]) {
            assert_eq!(
                snap.counter("dlm_requests_total", &[("verb", verb)]),
                Some(n),
                "dlm_requests_total verb={verb} (transport {transport})"
            );
            assert_eq!(
                snap.counter("dlm_request_errors_total", &[("verb", verb)]),
                Some(0),
                "dlm_request_errors_total verb={verb} (transport {transport})"
            );
        }
        // Line-level service times are observed once per wire line, so
        // the forecast histogram fills only on the unbatched replays.
        if batch_lines == 0 {
            let service = snap
                .histogram("dlm_service_micros", &[("verb", "forecast")])
                .unwrap();
            assert_eq!(service.count, 2, "forecast service observations");
        }
        assert_eq!(
            snap.counter("dlm_wire_requests_total", &[("transport", transport)]),
            Some(wire_lines),
            "dlm_wire_requests_total transport={transport}"
        );
    };
    let total = requests.len() as u64;
    verify(&legacy_metrics, "lines", 0, total);
    verify(&reactor_metrics, "binary", 0, total);
    // chunks(3) over 10 requests → 4 batch wire lines, items still
    // counted under their own verbs.
    verify(
        &batched_metrics,
        "binary",
        total.div_ceil(3),
        total.div_ceil(3),
    );
}

/// A graph-only server (no synthetic world) must serve the whole
/// hop-metric lifecycle — that's what scenario and real-log replay
/// build on — while story-ordinal and interest opens fail cleanly, and
/// the `regime` tag on `open` must surface as a per-regime counter.
#[test]
fn graph_only_server_opens_by_initiator_and_counts_regimes() {
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.1)).unwrap();
    let graph = Arc::new(world.graph().clone());
    let state = ServerState::with_graph(ServeConfig::default(), graph.clone()).unwrap();
    let mut server = DlmServer::bind("127.0.0.1:0", state).unwrap();
    let mut client = Client::connect(server.local_addr());

    let initiator = world.hub(0).unwrap();
    let open = client.send(&format!(
        r#"{{"type":"open","cascade":"g1","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":1000,"regime":"broadcast"}}"#,
    ));
    assert_eq!(open.get("ok").unwrap().as_bool(), Some(true), "{open}");
    // Same regime again plus a second regime; hostile tags sanitize
    // into their own stable label rather than erroring.
    for (id, regime) in [("g2", "broadcast"), ("g3", "storm"), ("g4", "we ird\"")] {
        let open = client.send(&format!(
            r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":1000,"regime":"{}"}}"#,
            regime.replace('"', "\\\""),
        ));
        assert_eq!(open.get("ok").unwrap().as_bool(), Some(true), "{open}");
    }
    let ingest =
        client.send(r#"{"type":"ingest","cascade":"g1","votes":[[1100,1],[1200,2]],"now":4600}"#);
    assert_eq!(ingest.get("ok").unwrap().as_bool(), Some(true), "{ingest}");
    let forecast = client.send(r#"{"type":"forecast","cascade":"g1","hours":[2]}"#);
    assert_eq!(
        forecast.get("ok").unwrap().as_bool(),
        Some(true),
        "{forecast}"
    );

    // World-dependent opens fail with a clear error, not a panic.
    for bad in [
        r#"{"type":"open","cascade":"b1","story":1}"#,
        r#"{"type":"open","cascade":"b2","initiator":1,"metric":"interest"}"#,
    ] {
        let resp = client.send(bad);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false), "{resp}");
        assert!(
            resp.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("synthetic world"),
            "{resp}"
        );
    }

    let metrics = client.send(r#"{"type":"metrics"}"#);
    let text = metrics
        .get("exposition")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    assert!(
        text.contains(r#"dlm_cascades_opened_total{regime="broadcast"} 2"#),
        "{text}"
    );
    assert!(
        text.contains(r#"dlm_cascades_opened_total{regime="storm"} 1"#),
        "{text}"
    );
    assert!(
        text.contains(r#"dlm_cascades_opened_total{regime="we_ird_"} 1"#),
        "{text}"
    );
    server.shutdown();
}
