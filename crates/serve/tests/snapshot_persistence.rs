//! The on-disk half of the elastic-cluster contract:
//!
//! * `--snapshot-dir` persistence — a server that dies after ingesting
//!   is rebuilt over the same directory and serves byte-identical
//!   forecasts with the hour watermark intact (replay, not re-`open`);
//! * the `snapshot`/`restore` wire verbs — the same bytes move a live
//!   cascade between two in-process servers, and `cascades`/`evict`
//!   manage the receiving store.

use dlm_core::evaluate::Parallelism;
use dlm_data::simulate::simulate_story;
use dlm_data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use dlm_serve::server::{ServeConfig, ServerState};
use dlm_serve::Json;
use std::path::PathBuf;

const HORIZON: u32 = 5;

/// A process-unique scratch directory, removed by [`Scratch::drop`].
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("dlm-snapshot-{}-{tag}", std::process::id()));
        // A stale run's leftovers would replay into the fresh server.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Self(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config_with(dir: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        parallelism: Parallelism::Fixed(2),
        snapshot_dir: dir,
        ..ServeConfig::default()
    }
}

fn fixture() -> (SyntheticWorld, u64, usize, String, u64) {
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.1)).unwrap();
    let story = simulate_story(
        &world,
        &StoryPreset::s1(),
        SimulationConfig {
            hours: HORIZON + 2,
            substeps: 2,
            seed: 13,
        },
    )
    .unwrap();
    let submit = story.submit_time();
    let initiator = story.initiator();
    let votes: Vec<String> = story
        .votes()
        .iter()
        .map(|v| format!("[{},{}]", v.timestamp, v.voter))
        .collect();
    let close_at = submit + u64::from(HORIZON) * 3600;
    (world, submit, initiator, votes.join(","), close_at)
}

fn ok(state: &ServerState, line: &str) -> Json {
    let raw = state.handle_line(line);
    let parsed = Json::parse(&raw).unwrap();
    assert_eq!(
        parsed.get("ok").and_then(Json::as_bool),
        Some(true),
        "`{line}` -> {raw}"
    );
    parsed
}

#[test]
fn restart_replays_snapshots_to_the_same_bytes() {
    let scratch = Scratch::new("restart");
    let (world, submit, initiator, votes, close_at) = fixture();
    let open = format!(
        r#"{{"type":"open","cascade":"persist-1","initiator":{initiator},"max_hops":4,"horizon":{HORIZON},"submit_time":{submit}}}"#
    );
    let ingest =
        format!(r#"{{"type":"ingest","cascade":"persist-1","votes":[{votes}],"now":{close_at}}}"#);
    let forecast =
        format!(r#"{{"type":"forecast","cascade":"persist-1","hours":[{HORIZON}],"through":2}}"#);

    let before = {
        let state =
            ServerState::with_world(config_with(Some(scratch.0.clone())), world.clone()).unwrap();
        ok(&state, &open);
        ok(&state, &ingest);
        state.handle_line(&forecast)
        // The server dies here; only the snapshot directory survives.
    };
    assert!(
        Json::parse(&before)
            .unwrap()
            .get("ok")
            .and_then(Json::as_bool)
            == Some(true),
        "{before}"
    );

    // Rebuild over the same directory: replay must restore the cascade
    // to the exact same bytes without any re-`open` or re-`ingest`.
    let revived =
        ServerState::with_world(config_with(Some(scratch.0.clone())), world.clone()).unwrap();
    let after = revived.handle_line(&forecast);
    assert_eq!(after, before, "restart changed forecast bytes");

    // The watermark replayed too: an hour-1 vote is still late.
    let late = format!(
        r#"{{"type":"ingest","cascade":"persist-1","votes":[[{},0]]}}"#,
        submit + 10
    );
    let rejected = Json::parse(&revived.handle_line(&late)).unwrap();
    assert_eq!(rejected.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        rejected
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("late vote"),
        "replay lost the watermark: {rejected}"
    );

    // A fresh server over an EMPTY directory must know nothing — proof
    // the state really came from the snapshot files.
    let empty = Scratch::new("restart-empty");
    let blank = ServerState::with_world(config_with(Some(empty.0.clone())), world).unwrap();
    let unknown = Json::parse(&blank.handle_line(&forecast)).unwrap();
    assert_eq!(unknown.get("ok").and_then(Json::as_bool), Some(false));
}

#[test]
fn corrupt_snapshot_files_fail_the_restart() {
    // Fail-stop beats silently serving partial state: one corrupt
    // snapshot file must abort server construction, not be skipped.
    let scratch = Scratch::new("corrupt");
    let (world, submit, initiator, votes, close_at) = fixture();
    {
        let state =
            ServerState::with_world(config_with(Some(scratch.0.clone())), world.clone()).unwrap();
        ok(
            &state,
            &format!(
                r#"{{"type":"open","cascade":"c1","initiator":{initiator},"max_hops":4,"horizon":{HORIZON},"submit_time":{submit}}}"#
            ),
        );
        ok(
            &state,
            &format!(r#"{{"type":"ingest","cascade":"c1","votes":[{votes}],"now":{close_at}}}"#),
        );
    }
    let snap = std::fs::read_dir(&scratch.0)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|e| e == "snap"))
        .expect("a snapshot was persisted");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&snap, bytes).unwrap();
    assert!(
        ServerState::with_world(config_with(Some(scratch.0.clone())), world).is_err(),
        "corrupt snapshot must fail the build"
    );
}

#[test]
fn capacity_shed_deletes_the_snapshot_file() {
    // A cascade the store sheds to stay within `cascade_capacity` must
    // take its snapshot file with it — otherwise a restart would
    // resurrect state the server had already dropped.
    let scratch = Scratch::new("shed");
    let (world, submit, initiator, _votes, _close_at) = fixture();
    let open = |id: &str| {
        format!(
            r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":4,"horizon":{HORIZON},"submit_time":{submit}}}"#
        )
    };
    let snap_files = |dir: &std::path::Path| -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "snap"))
            .collect();
        files.sort();
        files
    };
    {
        let state = ServerState::with_world(
            ServeConfig {
                cascade_capacity: 1,
                ..config_with(Some(scratch.0.clone()))
            },
            world.clone(),
        )
        .unwrap();
        ok(&state, &open("shed-1"));
        assert_eq!(snap_files(&scratch.0).len(), 1);
        // Opening a second cascade sheds `shed-1` — and its file.
        ok(&state, &open("shed-2"));
        assert_eq!(
            snap_files(&scratch.0).len(),
            1,
            "shed cascade left its snapshot file behind"
        );
    }
    // Restart: only the surviving cascade replays.
    let revived = ServerState::with_world(
        ServeConfig {
            cascade_capacity: 1,
            ..config_with(Some(scratch.0.clone()))
        },
        world,
    )
    .unwrap();
    let gone =
        Json::parse(&revived.handle_line(r#"{"type":"forecast","cascade":"shed-1","hours":[2]}"#))
            .unwrap();
    assert_eq!(gone.get("ok").and_then(Json::as_bool), Some(false));
    ok(&revived, r#"{"type":"snapshot","cascade":"shed-2"}"#);
}

#[test]
fn replay_past_capacity_fails_the_build() {
    // More persisted snapshots than `cascade_capacity` must fail the
    // restart instead of silently LRU-dropping cascades right after
    // restoring them.
    let scratch = Scratch::new("over-capacity");
    let (world, submit, initiator, _votes, _close_at) = fixture();
    {
        let state =
            ServerState::with_world(config_with(Some(scratch.0.clone())), world.clone()).unwrap();
        for id in ["over-1", "over-2"] {
            ok(
                &state,
                &format!(
                    r#"{{"type":"open","cascade":"{id}","initiator":{initiator},"max_hops":4,"horizon":{HORIZON},"submit_time":{submit}}}"#
                ),
            );
        }
    }
    let err = ServerState::with_world(
        ServeConfig {
            cascade_capacity: 1,
            ..config_with(Some(scratch.0.clone()))
        },
        world,
    )
    .expect_err("replay past capacity must fail the build");
    assert!(
        err.to_string().contains("cascade_capacity"),
        "unexpected error: {err}"
    );
}

#[test]
fn snapshot_and_restore_verbs_move_a_cascade_between_servers() {
    let (world, submit, initiator, votes, close_at) = fixture();
    let source = ServerState::with_world(config_with(None), world.clone()).unwrap();
    let target = ServerState::with_world(config_with(None), world).unwrap();
    ok(
        &source,
        &format!(
            r#"{{"type":"open","cascade":"mover","initiator":{initiator},"max_hops":4,"horizon":{HORIZON},"submit_time":{submit}}}"#
        ),
    );
    ok(
        &source,
        &format!(r#"{{"type":"ingest","cascade":"mover","votes":[{votes}],"now":{close_at}}}"#),
    );
    let forecast =
        format!(r#"{{"type":"forecast","cascade":"mover","hours":[{HORIZON}],"through":2}}"#);
    let at_source = source.handle_line(&forecast);

    // snapshot -> hex -> restore: the wire-level handoff the router's
    // drain verb drives.
    let snapshot = ok(&source, r#"{"type":"snapshot","cascade":"mover"}"#);
    assert_eq!(
        snapshot.get("closed_hours").and_then(Json::as_u64),
        Some(u64::from(HORIZON))
    );
    let hex = snapshot
        .get("snapshot")
        .and_then(Json::as_str)
        .expect("hex payload")
        .to_owned();
    let restored = ok(
        &target,
        &format!(r#"{{"type":"restore","snapshot":"{hex}"}}"#),
    );
    assert_eq!(
        restored.get("cascade").and_then(Json::as_str),
        Some("mover")
    );
    assert_eq!(
        restored.get("closed_hours").and_then(Json::as_u64),
        Some(u64::from(HORIZON))
    );

    // Gate D: the restored twin serves byte-identical forecasts.
    let at_target = target.handle_line(&forecast);
    assert_eq!(at_target, at_source, "handoff changed forecast bytes");

    // The store verbs see and free it.
    let listing = ok(&target, r#"{"type":"cascades"}"#);
    assert_eq!(
        listing
            .get("cascades")
            .and_then(Json::as_array)
            .map(<[_]>::len),
        Some(1)
    );
    let evicted = ok(&target, r#"{"type":"evict","cascade":"mover"}"#);
    assert_eq!(evicted.get("evicted").and_then(Json::as_bool), Some(true));
    let gone = Json::parse(&target.handle_line(&forecast)).unwrap();
    assert_eq!(gone.get("ok").and_then(Json::as_bool), Some(false));
}
