//! Run the pipeline on a Digg-2009-format dataset from CSV files — the
//! path you would use with the real (non-redistributable) crawl.
//!
//! With no arguments the example writes a small synthetic dataset to CSV,
//! reads it back, and runs the analysis — demonstrating the full
//! round-trip. Pass paths to use real files:
//!
//! ```sh
//! cargo run --release --example custom_dataset -- digg_votes.csv digg_friends.csv
//! ```

use dlm::cascade::ObservationSplit;
use dlm::core::accuracy::AccuracyTable;
use dlm::core::predict::{Observation, PredictionRequest};
use dlm::core::registry::ModelRegistry;
use dlm::data::simulate::simulate_story;
use dlm::data::{
    DiggDataset, FriendLink, SimulationConfig, StoryPreset, SyntheticWorld, Vote, WorldConfig,
};
use std::fs::File;
use std::io::BufReader;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();

    let dataset = if args.len() == 2 {
        println!("Loading Digg-format CSVs: {} / {}", args[0], args[1]);
        DiggDataset::read_csv(
            BufReader::new(File::open(&args[0])?),
            BufReader::new(File::open(&args[1])?),
        )?
    } else {
        println!("No CSVs given; writing and re-reading a synthetic dataset...");
        synthetic_dataset()?
    };

    println!(
        "dataset: {} votes on {} stories from {} users, {} follow links",
        dataset.votes().len(),
        dataset.story_ids().len(),
        dataset.user_count(),
        dataset.links().len()
    );

    // Analyze the most voted story, exactly like the paper's s1.
    let (story, votes) = dataset.stories_by_popularity()[0];
    println!("most popular story: id {story} with {votes} votes");
    let graph = dataset.follower_graph();
    let initiator = dataset.initiator(story)?;
    let story_votes = dataset.story_votes(story);
    let submit = story_votes.first().expect("story has votes").timestamp;

    // Build the density matrix via the same primitive the simulator path uses.
    let cascade_like = dlm::cascade::density::cumulative_counts(
        &dlm::graph::bfs::hop_distances(&graph, initiator).groups_up_to(5),
        &story_votes,
        submit,
        6,
    );
    let groups = dlm::graph::bfs::hop_distances(&graph, initiator).groups_up_to(5);
    let live: Vec<usize> = groups.iter().map(Vec::len).take_while(|&n| n > 0).collect();
    let observed = dlm::cascade::DensityMatrix::from_counts(&cascade_like[..live.len()], &live)?;

    let split = ObservationSplit::paper_protocol(&observed)?;
    // Calibrated DL through the unified interface: build from a spec
    // string, fit on the observed window, predict the target hours.
    let predictor =
        ModelRegistry::with_builtins().build_from_str("dl-cal(d0=0.01,K0=25,r0=hops,fitK=true)")?;
    let fitted = predictor.fit(&Observation::from_matrix(&observed, &[1, 2, 3, 4, 5, 6])?)?;
    let distances: Vec<u32> = (1..=split.distance_count() as u32).collect();
    let pred = fitted.predict(&PredictionRequest::new(
        distances,
        split.target_hours().to_vec(),
    )?)?;
    println!("\n{}", AccuracyTable::score_split(&pred, &split)?);
    Ok(())
}

/// Builds a small Digg-format dataset by simulating one story and writing
/// it through the CSV round-trip.
fn synthetic_dataset() -> Result<DiggDataset, Box<dyn std::error::Error>> {
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.25))?;
    let cascade = simulate_story(&world, &StoryPreset::s1(), SimulationConfig::default())?;
    let votes: Vec<Vote> = cascade.votes().to_vec();
    let links: Vec<FriendLink> = world
        .graph()
        .edges()
        .map(|(followee, follower)| FriendLink {
            mutual: false,
            timestamp: 0,
            follower,
            followee,
        })
        .collect();
    let ds = DiggDataset::new(votes, links);

    // Round-trip through the CSV layout to prove format compatibility.
    let mut votes_csv = Vec::new();
    let mut friends_csv = Vec::new();
    ds.write_votes_csv(&mut votes_csv)?;
    ds.write_friends_csv(&mut friends_csv)?;
    Ok(DiggDataset::read_csv(
        votes_csv.as_slice(),
        friends_csv.as_slice(),
    )?)
}
