//! Reproduce the paper's empirical study (Figures 2–5) on a synthetic
//! Digg-like world: generate the follower network and the four
//! representative cascades, then inspect the temporal and spatial patterns
//! of information diffusion under both distance metrics.
//!
//! ```sh
//! cargo run --release --example digg_patterns [-- scale]
//! ```

use dlm::cascade::hops::{hop_density_matrix, hop_fraction_distribution};
use dlm::cascade::interest_groups::{interest_density_matrix, GroupingStrategy};
use dlm::cascade::PatternSummary;
use dlm::data::simulate::simulate_representative_stories;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use dlm::graph::metrics::{average_clustering, out_degree_summary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    println!("Generating a Digg-like world (scale {scale})...");
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(scale))?;
    let graph = world.graph();
    let degrees = out_degree_summary(graph).expect("nonempty graph");
    println!(
        "  {} users, {} follow edges; out-degree mean {:.1}, max {} (heavy tail)",
        world.user_count(),
        graph.edge_count(),
        degrees.mean,
        degrees.max
    );
    println!(
        "  reciprocity {:.2}, avg clustering {:.3} (triads: the growth-process premise)",
        graph.reciprocity(),
        average_clustering(graph).unwrap_or(0.0)
    );

    println!("\nSimulating the four representative stories over 50 hours...");
    let cascades = simulate_representative_stories(&world, SimulationConfig::default())?;

    // Figure 2: where do the reachable users sit?
    println!("\nHop distribution from each initiator (Figure 2):");
    for (preset, cascade) in StoryPreset::all().iter().zip(&cascades) {
        let f = hop_fraction_distribution(graph, cascade.initiator())?;
        let cells: Vec<String> = f
            .iter()
            .take(6)
            .map(|v| format!("{:.0}%", v * 100.0))
            .collect();
        println!(
            "  {} ({} votes): {}",
            preset.name,
            cascade.vote_count(),
            cells.join(" ")
        );
    }

    // Figures 3-4: hop-distance densities.
    println!("\nFinal hop-distance densities and saturation times (Figure 3):");
    for (preset, cascade) in StoryPreset::all().iter().zip(&cascades) {
        let m = hop_density_matrix(graph, cascade, 5, 50)?;
        let summary = PatternSummary::from_matrix(&m)?;
        println!(
            "  {}: final {:?} %, stable by hour {:?}, monotone-in-hops: {}",
            preset.name,
            summary
                .final_densities
                .iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            summary.story_saturation_hour(),
            summary.monotone_in_distance
        );
    }

    // Figure 5: interest-distance densities.
    println!("\nFinal interest-distance densities (Figure 5):");
    for (preset, cascade) in StoryPreset::all().iter().zip(&cascades) {
        let m = interest_density_matrix(
            world.profile(),
            world.user_count(),
            cascade,
            5,
            50,
            GroupingStrategy::EqualWidth,
        )?;
        let summary = PatternSummary::from_matrix(&m)?;
        println!(
            "  {}: final {:?} %, monotone-in-interest-distance: {}",
            preset.name,
            summary
                .final_densities
                .iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            summary.monotone_in_distance
        );
    }

    println!("\nKey paper observations to look for:");
    println!("  * s1's hop-3 density exceeds hop-2 (information flows beyond social links);");
    println!("  * s4 decreases monotonically in hops (social links dominate small stories);");
    println!("  * every story decreases monotonically in interest distance.");
    Ok(())
}
