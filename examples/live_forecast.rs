//! Online forecasting end to end: spin up a `dlm-serve` server
//! in-process, stream a synthetic story into it hour by hour over TCP,
//! request forecasts after every closed hour, and score each forecast's
//! Eq.-8 accuracy against the realized tail of the cascade.
//!
//! This is the paper's prediction task in its honest online form: at
//! hour `k` the server has seen only hours `1..=k`, yet it must fill in
//! the density surface for the hours that have not happened yet.
//!
//! ```sh
//! cargo run --release --example live_forecast
//! ```

use dlm::cascade::hops::hop_density_matrix;
use dlm::core::accuracy::AccuracyTable;
use dlm::core::model::Prediction;
use dlm::core::registry::ModelSpec;
use dlm::data::simulate::simulate_story;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use dlm::serve::server::{DlmServer, ServeConfig, ServerState};
use dlm::serve::{Json, LineClient};

const MAX_HOPS: u32 = 4;
const HORIZON: u32 = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One synthetic Digg-like story, simulated to its full span. The
    // server will only ever see the stream prefix; the full matrix is
    // the ground truth we score against afterwards.
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.12))?;
    let story = simulate_story(
        &world,
        &StoryPreset::s1(),
        SimulationConfig {
            hours: HORIZON + 2,
            substeps: 2,
            seed: 13,
        },
    )?;
    let realized = hop_density_matrix(world.graph(), &story, MAX_HOPS, HORIZON)?;

    // The server: paper-constants DL against the two cheap baselines.
    let state = ServerState::with_world(
        ServeConfig {
            lineup: vec![
                ModelSpec::paper_hops_dl(),
                ModelSpec::Naive,
                ModelSpec::LinearTrend,
            ],
            ..ServeConfig::default()
        },
        world,
    )?;
    let mut server = DlmServer::bind("127.0.0.1:0", state)?;
    let mut client = LineClient::connect(server.local_addr())?;

    let submit = story.submit_time();
    client.send_ok(&format!(
        r#"{{"type":"open","cascade":"s1","initiator":{},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#,
        story.initiator(),
    ))?;

    println!("streaming s1 and forecasting the unseen tail (Eq.-8 accuracy):\n");
    println!(
        "{h:>6}  {v:>12}  {f:<28}accuracy per model",
        h = "hour",
        v = "votes seen",
        f = "forecast"
    );

    // Stream hour by hour; after each closed hour k, forecast k+1..=6.
    for k in 1..=HORIZON - 1 {
        let votes: Vec<String> = story
            .votes()
            .iter()
            .filter(|v| {
                let bucket = (v.timestamp - submit) / 3600;
                bucket + 1 == u64::from(k)
            })
            .map(|v| format!("[{},{}]", v.timestamp, v.voter))
            .collect();
        let seen = votes.len();
        client.send_ok(&format!(
            r#"{{"type":"ingest","cascade":"s1","votes":[{}],"now":{}}}"#,
            votes.join(","),
            submit + u64::from(k) * 3600,
        ))?;

        let target_hours: Vec<u32> = (k + 1..=HORIZON).collect();
        let response = client.send_ok(&format!(
            r#"{{"type":"forecast","cascade":"s1","hours":[{}]}}"#,
            target_hours
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
        ))?;

        // Score every served model against the realized densities.
        let distances: Vec<u32> = response
            .get("distances")
            .and_then(Json::as_array)
            .expect("distances")
            .iter()
            .map(|d| d.as_u64().expect("distance") as u32)
            .collect();
        let mut row = String::new();
        for entry in response
            .get("models")
            .and_then(Json::as_array)
            .expect("models")
        {
            let spec = entry.get("spec").and_then(Json::as_str).expect("spec");
            let short = spec.split('(').next().unwrap_or(spec);
            if let Some(values) = entry.get("values").and_then(Json::as_array) {
                let grid: Vec<Vec<f64>> = values
                    .iter()
                    .map(|r| {
                        r.as_array()
                            .expect("row")
                            .iter()
                            .map(|v| v.as_f64().expect("cell"))
                            .collect()
                    })
                    .collect();
                let prediction =
                    Prediction::from_values(distances.clone(), target_hours.clone(), grid)?;
                let accuracy = AccuracyTable::score(&prediction, &realized)?
                    .overall_average()
                    .map_or("   -  ".to_owned(), |a| format!("{:5.1}%", a * 100.0));
                row.push_str(&format!("  {short} {accuracy}"));
            } else {
                let message = entry
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown");
                row.push_str(&format!("  {short} err({message})"));
            }
        }
        println!(
            "{k:>6}  {seen:>12}  {:<28}{row}",
            format!("hours {}..={HORIZON}", k + 1)
        );
    }

    let stats = client.send_ok(r#"{"type":"stats"}"#)?;
    let cache = stats.get("cache").expect("cache stats");
    println!(
        "\ncache: {} hits, {} misses, {} evictions ({} resident / capacity {}); {} refit jobs scheduled",
        cache.get("hits").unwrap(),
        cache.get("misses").unwrap(),
        cache.get("evictions").unwrap(),
        cache.get("len").unwrap(),
        cache.get("capacity").unwrap(),
        stats.get("refit_jobs").unwrap(),
    );
    println!(
        "(every forecast above was served from the refit scheduler's cache: \
         fits happen once per closed hour, not once per request)"
    );
    server.shutdown();
    Ok(())
}
