//! Compare the DL model against the baseline predictors on the same
//! cascade: logistic-only (d = 0), naive last-value, linear trend, and an
//! SI epidemic simulated on the actual follower graph.
//!
//! ```sh
//! cargo run --release --example model_comparison [-- scale]
//! ```

use dlm::cascade::hops::hop_density_matrix;
use dlm::cascade::ObservationSplit;
use dlm::core::accuracy::AccuracyTable;
use dlm::core::baselines::{si_epidemic, EpidemicConfig, LinearTrend, LogisticOnly, NaiveLastValue};
use dlm::core::calibrate::{calibrate, CalibrationOptions};
use dlm::core::growth::ExpDecayGrowth;
use dlm::core::params::DlParameters;
use dlm::data::simulate::simulate_story;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let world = SyntheticWorld::generate(WorldConfig::default().scaled(scale))?;
    let cascade = simulate_story(&world, &StoryPreset::s1(), SimulationConfig::default())?;
    let observed = hop_density_matrix(world.graph(), &cascade, 5, 6)?;
    let split = ObservationSplit::paper_protocol(&observed)?;
    let distances: Vec<u32> = (1..=split.distance_count() as u32).collect();
    let hours = split.target_hours().to_vec();
    let initial = split.initial_profile().to_vec();

    let mut results: Vec<(&str, Option<f64>)> = Vec::new();

    // DL model, calibrated.
    let cal = calibrate(
        &observed,
        1,
        &hours,
        DlParameters::paper_hops(observed.max_distance())?,
        ExpDecayGrowth::paper_hops(),
        &CalibrationOptions { fit_capacity: true, max_evals: 800, ..CalibrationOptions::default() },
    )?;
    let growth = cal.growth;
    let capacity = cal.params.capacity();
    let dl = cal.into_model(&initial, 1)?;
    let pred = dl.predict(&distances, &hours)?;
    results.push(("DL (calibrated)", AccuracyTable::score_split(&pred, &split)?.overall_average()));

    // Logistic-only: identical growth/capacity, no diffusion term.
    let logistic = LogisticOnly::new(&initial, &growth, capacity, 1.0)?;
    let pred = logistic.predict(&distances, &hours)?;
    results
        .push(("Logistic-only (d=0)", AccuracyTable::score_split(&pred, &split)?.overall_average()));

    // Naive and linear-trend reference predictors.
    let pred = NaiveLastValue::new(&initial)?.predict(&distances, &hours)?;
    results.push(("Naive last-value", AccuracyTable::score_split(&pred, &split)?.overall_average()));
    let t2 = split.target_at(2).expect("paper protocol has hour 2");
    let pred = LinearTrend::new(&initial, t2, 1.0)?.predict(&distances, &hours)?;
    results.push(("Linear trend", AccuracyTable::score_split(&pred, &split)?.overall_average()));

    // SI epidemic on the real graph, seeded with the hour-1 voters.
    let hour1: Vec<usize> = cascade.votes_within(1).iter().map(|v| v.voter).collect();
    let cfg = EpidemicConfig { beta: 0.01, runs: 10, seed: 7, ..Default::default() };
    let pred = si_epidemic(
        world.graph(),
        cascade.initiator(),
        &hour1,
        observed.max_distance(),
        &hours,
        &cfg,
    )?;
    results.push(("SI epidemic (graph)", AccuracyTable::score_split(&pred, &split)?.overall_average()));

    println!("Mean Eq.-8 prediction accuracy on s1, hours 2-6, hop distances:");
    for (name, acc) in results {
        match acc {
            Some(a) => println!("  {name:<22} {:6.2}%", a * 100.0),
            None => println!("  {name:<22} {:>7}", "-"),
        }
    }
    println!("\n(The PDE reduces to logistic-only when the fitted d is ~0 — see EXPERIMENTS.md.)");
    Ok(())
}
