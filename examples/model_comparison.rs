//! Compare the DL model against the baseline predictors on the same
//! cascade with one `EvaluationPipeline::run` call: calibrated DL,
//! logistic-only (d = 0), naive last-value, linear trend, and an SI
//! epidemic simulated on the actual follower graph.
//!
//! ```sh
//! cargo run --release --example model_comparison [-- scale]
//! ```

use dlm::cascade::hops::hop_density_matrix;
use dlm::core::evaluate::{EvaluationCase, EvaluationPipeline};
use dlm::core::predict::{GraphContext, GrowthFamily};
use dlm::core::registry::ModelSpec;
use dlm::data::simulate::simulate_story;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    let world = SyntheticWorld::generate(WorldConfig::default().scaled(scale))?;
    let cascade = simulate_story(&world, &StoryPreset::s1(), SimulationConfig::default())?;
    let observed = hop_density_matrix(world.graph(), &cascade, 5, 6)?;

    // The epidemic predictors simulate on the actual follower graph,
    // seeded with the hour-1 voters.
    let hour1: Vec<usize> = cascade.votes_within(1).iter().map(|v| v.voter).collect();
    let graph = GraphContext::new(Arc::new(world.graph().clone()), cascade.initiator(), hour1);
    let case = EvaluationCase::paper_protocol("s1", observed)?.with_graph(graph);

    let report = EvaluationPipeline::new()
        .model(ModelSpec::calibrated_dl())
        .model(ModelSpec::LogisticOnly {
            capacity: 25.0,
            growth: GrowthFamily::PaperHops,
        })
        .model(ModelSpec::Naive)
        .model(ModelSpec::LinearTrend)
        .model(ModelSpec::Si {
            beta: 0.01,
            runs: 10,
            seed: 7,
        })
        .run(&[case])?;

    println!("Mean Eq.-8 prediction accuracy on s1, hours 2-6, hop distances:\n");
    println!("{report}");
    println!("\nRanking:");
    for (spec, overall) in report.ranking() {
        match overall {
            Some(a) => println!("  {spec:<48} {:6.2}%", a * 100.0),
            None => println!("  {spec:<48} {:>7}", "-"),
        }
    }
    println!("\n(The PDE reduces to logistic-only when the fitted d is ~0 — see EXPERIMENTS.md.)");
    Ok(())
}
