//! The model zoo: every registered predictor compared on simulated Digg
//! cascades with a single `EvaluationPipeline::run` call.
//!
//! Two cascades (the paper's s1 and s2 presets) are evaluated under the
//! paper protocol — observe from hour 1, predict hours 2–6 — and each of
//! the seven predictor kinds (calibrated DL, paper-constants DL,
//! variable-coefficient DL with per-distance growth, logistic-only,
//! naive, linear trend, SI and SIS epidemics) is fitted and scored on
//! both. The epidemics run on the actual follower graph.
//!
//! ```sh
//! cargo run --release --example model_zoo [-- scale]
//! ```

use dlm::cascade::hops::hop_density_matrix;
use dlm::core::evaluate::{EvaluationCase, EvaluationPipeline, Parallelism};
use dlm::core::predict::GraphContext;
use dlm::data::simulate::simulate_story;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    println!("Generating a Digg-like world (scale {scale}) and two cascades...");
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(scale))?;
    let graph = Arc::new(world.graph().clone());

    let mut cases = Vec::new();
    for preset in [StoryPreset::s1(), StoryPreset::s2()] {
        let cascade = simulate_story(&world, &preset, SimulationConfig::default())?;
        let observed = hop_density_matrix(world.graph(), &cascade, 5, 6)?;
        let hour1: Vec<usize> = cascade.votes_within(1).iter().map(|v| v.voter).collect();
        let ctx = GraphContext::new(Arc::clone(&graph), cascade.initiator(), hour1);
        cases.push(EvaluationCase::paper_protocol(preset.name.clone(), observed)?.with_graph(ctx));
        println!("  {}: ready", preset.name);
    }

    // The full default line-up: all seven predictor kinds, one call. The
    // grid runs work-stealing parallel (Parallelism::Auto is the default
    // and byte-identical to Serial); re-running the pipeline replays the
    // fitted-model cache.
    let pipeline = EvaluationPipeline::full_lineup().parallelism(Parallelism::Auto);
    println!(
        "\nRunning {} models x {} cascades through one EvaluationPipeline::run...\n",
        pipeline.specs().len(),
        cases.len()
    );
    let report = pipeline.run(&cases)?;
    println!("{report}");
    let stats = report.cache_stats();
    println!(
        "fitted-model cache: {} misses, {} hits (rerun this pipeline for pure replay)",
        stats.misses, stats.hits
    );

    println!("\nRanking by mean Eq.-8 accuracy:");
    for (rank, (spec, overall)) in report.ranking().into_iter().enumerate() {
        match overall {
            Some(a) => println!("  {:>2}. {spec:<52} {:6.2}%", rank + 1, a * 100.0),
            None => println!("  {:>2}. {spec:<52} {:>7}", rank + 1, "-"),
        }
    }

    println!("\nFitted parameters on s1:");
    for (mi, _) in report.specs().iter().enumerate() {
        if let Some(outcome) = report.outcome(mi, 0) {
            if outcome.error.is_none() && !outcome.params.is_empty() {
                let rendered: Vec<String> = outcome
                    .param_names
                    .iter()
                    .zip(&outcome.params)
                    .take(6)
                    .map(|(n, v)| format!("{n} = {v:.4}"))
                    .collect();
                println!("  {:<52} {}", outcome.spec, rendered.join(", "));
            }
        }
    }
    Ok(())
}
