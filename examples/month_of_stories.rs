//! Generate a month-long catalog of stories — the analogue of the
//! paper's full June-2009 crawl (3,553 stories, >3M votes, 139,409
//! users) — and report dataset-level statistics plus the representative-
//! story selection the paper performs.
//!
//! ```sh
//! cargo run --release --example month_of_stories [-- stories]
//! ```

use dlm::data::{catalog_stats, generate_catalog, CatalogConfig, SyntheticWorld, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stories: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);

    println!("Generating world and a {stories}-story month...");
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.25))?;
    let config = CatalogConfig {
        stories,
        ..CatalogConfig::default()
    };
    let dataset = generate_catalog(&world, &config)?;

    let stats = catalog_stats(&dataset);
    println!("\nDataset statistics (paper: 3,553 stories / >3M votes / 139,409 voters):");
    println!("  stories:        {}", stats.stories);
    println!("  votes:          {}", stats.votes);
    println!("  distinct voters:{}", stats.voters);
    println!("  top story:      {} votes", stats.top_story_votes);
    println!("  median story:   {} votes", stats.median_story_votes);

    println!("\nTop 10 stories by popularity (the paper picks its s1-s4 this way):");
    for (rank, (story, votes)) in dataset.stories_by_popularity().iter().take(10).enumerate() {
        let initiator = dataset.initiator(*story)?;
        println!(
            "  #{:<3} story {:<4} {:>6} votes (initiator {})",
            rank + 1,
            story,
            votes,
            initiator
        );
    }

    // Vote-count distribution sketch: how heavy is the tail?
    let ranked = dataset.stories_by_popularity();
    let deciles: Vec<usize> = (0..=9)
        .map(|d| ranked[(d * (ranked.len() - 1)) / 9].1)
        .collect();
    println!("\nVotes per story across popularity deciles (best → worst):");
    println!("  {deciles:?}");
    Ok(())
}
