//! The paper's headline experiment end-to-end: observe the first hour of
//! a cascade, calibrate the DL model, predict hours 2–6 and score with
//! Eq.-8 accuracy (Figure 7 / Tables I–II) — all through the unified
//! `DiffusionPredictor` interface.
//!
//! ```sh
//! cargo run --release --example predict_story [-- scale]
//! ```

use dlm::cascade::hops::hop_density_matrix;
use dlm::cascade::ObservationSplit;
use dlm::core::accuracy::AccuracyTable;
use dlm::core::predict::{Observation, PredictionRequest};
use dlm::core::registry::{ModelRegistry, ModelSpec};
use dlm::data::simulate::simulate_story;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    println!("Simulating the most popular story (s1) on a Digg-like world...");
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(scale))?;
    let cascade = simulate_story(&world, &StoryPreset::s1(), SimulationConfig::default())?;
    println!(
        "  initiator {}, {} votes in 50 h",
        cascade.initiator(),
        cascade.vote_count()
    );

    // Observed densities per hop over the evaluation window.
    let observed = hop_density_matrix(world.graph(), &cascade, 5, 6)?;
    let split = ObservationSplit::paper_protocol(&observed)?;
    println!(
        "  hour-1 density profile (phi's knots): {:?}",
        split
            .initial_profile()
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // Calibrate d, K and the r(t) curve on the evaluation window — the
    // automated analogue of the paper's hand-tuned K = 25, d = 0.01,
    // Eq. 7. The spec is serializable data; the registry turns it into a
    // live predictor.
    let spec = ModelSpec::calibrated_dl();
    println!("\nFitting model spec `{spec}`...");
    let predictor = ModelRegistry::with_builtins().build(&spec)?;
    let observation = Observation::from_matrix(&observed, &[1, 2, 3, 4, 5, 6])?;
    let fitted = predictor.fit(&observation)?;
    let fitted_params: Vec<String> = fitted
        .param_names()
        .iter()
        .zip(fitted.params())
        .map(|(name, value)| format!("{name} = {value:.4}"))
        .collect();
    println!("Calibrated parameters: {}", fitted_params.join(", "));

    let distances: Vec<u32> = (1..=split.distance_count() as u32).collect();
    let request = PredictionRequest::new(distances, split.target_hours().to_vec())?;
    let prediction = fitted.predict(&request)?;

    println!("\nPredicted vs actual (Figure 7a):");
    for &h in split.target_hours() {
        let actual = split.target_at(h).expect("hour in split");
        let pred = prediction.profile_at(h)?;
        let fmt = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x:6.2}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!("  t={h}  actual {}", fmt(actual));
        println!("  t={h}  DL     {}", fmt(&pred));
    }

    let table = AccuracyTable::score_split(&prediction, &split)?;
    println!("\nEq.-8 prediction accuracy (Table I):\n{table}");
    Ok(())
}
