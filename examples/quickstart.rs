//! Quickstart: fit the paper's DL model to one hour of observations and
//! predict the next five hours.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dlm::core::model::DlModel;
use dlm::core::theory::verify_properties;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Densities (percent of each hop group that has voted) observed one
    // hour after a story was submitted, at friendship hops 1..=6 — the
    // shape of Figure 7a's lowest curve.
    let hour1 = [2.1, 0.7, 0.9, 0.5, 0.3, 0.2];

    // The paper's friendship-hop setting: d = 0.01, K = 25,
    // r(t) = 1.4·e^{−1.5(t−1)} + 0.25 (Eq. 7), φ = flat-ended cubic spline
    // through the observations (§II.D).
    let model = DlModel::paper_hops(&hour1)?;

    let distances = [1, 2, 3, 4, 5, 6];
    let hours = [2, 3, 4, 5, 6];
    let prediction = model.predict(&distances, &hours)?;

    println!("Predicted density of influenced users, I(x, t) [%]:");
    print!("{:>4}", "x\\t");
    for h in hours {
        print!("{h:>8}");
    }
    println!();
    for d in distances {
        print!("{d:>4}");
        for h in hours {
            print!("{:>8.2}", prediction.at(d, h)?);
        }
        println!();
    }

    // The Section II.C guarantees, verified numerically on this instance.
    let report = verify_properties(&model, 50.0, 1e-8)?;
    println!(
        "\nUnique property (0 <= I <= K): {}; strictly increasing: {}",
        report.bounds_hold, report.increasing_holds
    );
    Ok(())
}
