//! Quickstart: fit the paper's DL model to one hour of observations and
//! predict the next five hours, through the unified
//! `DiffusionPredictor` interface.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dlm::core::model::DlModel;
use dlm::core::predict::{Observation, PredictionRequest};
use dlm::core::registry::ModelRegistry;
use dlm::core::theory::verify_properties;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Densities (percent of each hop group that has voted) observed one
    // hour after a story was submitted, at friendship hops 1..=6 — the
    // shape of Figure 7a's lowest curve.
    let hour1 = [2.1, 0.7, 0.9, 0.5, 0.3, 0.2];

    // The paper's friendship-hop setting: d = 0.01, K = 25,
    // r(t) = 1.4·e^{−1.5(t−1)} + 0.25 (Eq. 7), φ = flat-ended cubic
    // spline through the observations (§II.D). The spec string below is
    // the serialized form any registered model understands.
    let registry = ModelRegistry::with_builtins();
    let predictor = registry.build_from_str("dl(d=0.01,K=25,r=hops)")?;
    let fitted = predictor.fit(&Observation::from_profile(1, &hour1)?)?;

    let distances = [1u32, 2, 3, 4, 5, 6];
    let hours = [2u32, 3, 4, 5, 6];
    let prediction =
        fitted.predict(&PredictionRequest::new(distances.to_vec(), hours.to_vec())?)?;

    println!("Predicted density of influenced users, I(x, t) [%]:");
    print!("{:>4}", "x\\t");
    for h in hours {
        print!("{h:>8}");
    }
    println!();
    for d in distances {
        print!("{d:>4}");
        for h in hours {
            print!("{:>8.2}", prediction.at(d, h)?);
        }
        println!();
    }
    println!(
        "\nmodel `{}` with parameters {:?} = {:?}",
        fitted.name(),
        fitted.param_names(),
        fitted.params()
    );

    // The Section II.C guarantees, verified numerically on this instance.
    let model = DlModel::paper_hops(&hour1)?;
    let report = verify_properties(&model, 50.0, 1e-8)?;
    println!(
        "Unique property (0 <= I <= K): {}; strictly increasing: {}",
        report.bounds_hold, report.increasing_holds
    );
    Ok(())
}
