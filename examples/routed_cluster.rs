//! A sharded forecasting cluster in one process: two `dlm-serve`
//! backends, a `dlm-router` consistent-hash tier in front, and a batch
//! of cascades streamed through the router over real TCP sockets.
//!
//! Demonstrates the three routing-tier guarantees:
//!
//! * cascades split deterministically across backends (the same id
//!   always lands on the same shard);
//! * a routed forecast is byte-identical to one served by a single
//!   direct server — the router relays backend bytes untouched;
//! * `stats` scatter-gathers every shard into one aggregated view.
//!
//! ```sh
//! cargo run --release --example routed_cluster
//! ```

use dlm::core::registry::ModelSpec;
use dlm::data::simulate::simulate_story;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use dlm::router::{RouterConfig, RouterState};
use dlm::serve::server::{DlmServer, ServeConfig, ServerState};
use dlm::serve::{Json, LineClient};
use std::sync::Arc;

const MAX_HOPS: u32 = 4;
const HORIZON: u32 = 6;
const CASCADES: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = SyntheticWorld::generate(WorldConfig::default().scaled(0.12))?;
    let story = simulate_story(
        &world,
        &StoryPreset::s1(),
        SimulationConfig {
            hours: HORIZON + 2,
            substeps: 2,
            seed: 13,
        },
    )?;
    let submit = story.submit_time();

    // Two backend shards and one direct twin, all over the same world
    // and the same cheap lineup.
    let config = || ServeConfig {
        lineup: vec![
            ModelSpec::paper_hops_dl(),
            ModelSpec::Naive,
            ModelSpec::LinearTrend,
        ],
        ..ServeConfig::default()
    };
    let make = |world: &SyntheticWorld| -> Result<DlmServer, Box<dyn std::error::Error>> {
        Ok(DlmServer::bind(
            "127.0.0.1:0",
            ServerState::with_world(config(), world.clone())?,
        )?)
    };
    let backend0 = make(&world)?;
    let backend1 = make(&world)?;
    let direct = make(&world)?;

    let router = Arc::new(RouterState::new(RouterConfig::new(vec![
        backend0.local_addr().to_string(),
        backend1.local_addr().to_string(),
    ]))?);
    let front = DlmServer::bind_shared("127.0.0.1:0", Arc::clone(&router))?;
    println!(
        "router {} -> shards [{}, {}]\n",
        front.local_addr(),
        backend0.local_addr(),
        backend1.local_addr()
    );

    let mut routed = LineClient::connect(front.local_addr())?;
    let mut single = LineClient::connect(direct.local_addr())?;
    let votes: Vec<String> = story
        .votes()
        .iter()
        .map(|v| format!("[{},{}]", v.timestamp, v.voter))
        .collect();
    let votes = votes.join(",");
    let close_at = submit + u64::from(HORIZON) * 3600;

    println!("{:<10}  {:>5}  routed == direct", "cascade", "shard");
    for i in 0..CASCADES {
        let id = format!("story-{i}");
        let shard = router.shard_of(&id);
        for line in [
            format!(
                r#"{{"type":"open","cascade":"{id}","initiator":{},"max_hops":{MAX_HOPS},"horizon":{HORIZON},"submit_time":{submit}}}"#,
                story.initiator()
            ),
            format!(r#"{{"type":"ingest","cascade":"{id}","votes":[{votes}],"now":{close_at}}}"#),
            format!(r#"{{"type":"forecast","cascade":"{id}","hours":[4,5,6],"through":3}}"#),
        ] {
            let via_router = routed.send_raw(&line)?;
            let via_single = single.send_raw(&line)?;
            assert_eq!(via_router, via_single, "routing changed the bytes!");
        }
        println!("{id:<10}  {shard:>5}  yes (3 responses, byte-for-byte)");
    }

    // One aggregated stats view over both shards.
    let stats = Json::parse(&routed.send_raw(r#"{"type":"stats"}"#)?)
        .map_err(dlm::serve::ServeError::Protocol)?;
    let aggregate = stats.get("aggregate").expect("aggregate");
    let routed_counts = stats
        .get("router")
        .and_then(|r| r.get("routed"))
        .expect("router counters");
    println!(
        "\ncluster stats: cascades {}, hours closed {}, cache {}, routed per shard {}",
        aggregate.get("cascades").expect("cascades"),
        aggregate.get("hours_closed").expect("hours_closed"),
        aggregate.get("cache").expect("cache"),
        routed_counts
    );
    println!(
        "slowest shard stats round-trip: {} ms",
        stats.get("slowest_backend_ms").expect("latency")
    );
    Ok(())
}
