//! The paper's future work, exercised: compare the classic DL model
//! (global r(t)) against the generalized model with a per-distance growth
//! field r(x, t) — the refinement the paper proposes in §V after
//! observing that interest-distance group 5 "drops faster at time 2 to
//! 5" than a single growth rate can track.
//!
//! ```sh
//! cargo run --release --example spatial_growth [-- scale]
//! ```

use dlm::cascade::interest_groups::{interest_density_matrix, GroupingStrategy};
use dlm::cascade::ObservationSplit;
use dlm::core::accuracy::AccuracyTable;
use dlm::core::calibrate::{calibrate, CalibrationOptions};
use dlm::core::growth::{ExpDecayGrowth, GrowthRate};
use dlm::core::params::DlParameters;
use dlm::core::variable::{
    calibrate_per_distance_growth, ConstantField, SpatialField, TimeOnlyField,
    VariableDlModelBuilder,
};
use dlm::data::simulate::simulate_story;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let world = SyntheticWorld::generate(WorldConfig::default().scaled(scale))?;
    let cascade = simulate_story(&world, &StoryPreset::s1(), SimulationConfig::default())?;
    let observed = interest_density_matrix(
        world.profile(),
        world.user_count(),
        &cascade,
        5,
        6,
        GroupingStrategy::EqualWidth,
    )?;
    let split = ObservationSplit::paper_protocol(&observed)?;
    let distances: Vec<u32> = (1..=split.distance_count() as u32).collect();
    let hours = split.target_hours().to_vec();

    // Classic calibration for the shared scalars.
    let cal = calibrate(
        &observed,
        1,
        &[2, 3, 4, 5, 6],
        DlParameters::paper_interest(observed.max_distance())?,
        ExpDecayGrowth::paper_interest(),
        &CalibrationOptions { fit_capacity: true, max_evals: 800, ..CalibrationOptions::default() },
    )?;
    println!(
        "shared scalars: d = {:.4}, K = {:.1}; global growth {}",
        cal.params.diffusion(),
        cal.params.capacity(),
        cal.growth.describe()
    );

    // Classic: one r(t) for every distance.
    let upper = f64::from(observed.max_distance());
    let classic = VariableDlModelBuilder::new(1.0, upper)?
        .diffusion(ConstantField(cal.params.diffusion()))
        .growth(TimeOnlyField(cal.growth))
        .capacity(ConstantField(cal.params.capacity()))
        .build(split.initial_profile())?;
    let classic_pred = classic.predict(&distances, &hours)?;
    let classic_table = AccuracyTable::score_split(&classic_pred, &split)?;

    // Refined: an independent r_d(t) per distance, blended linearly in x.
    let field = calibrate_per_distance_growth(&observed, cal.params.capacity(), 6)?;
    println!("\nper-distance growth curves r_d(t) at t = 1.5:");
    for (i, curve) in field.curves().iter().enumerate() {
        println!(
            "  distance {}: {}  (r(1.5) = {:.3})",
            i + 1,
            curve.describe(),
            field.value(1.0 + i as f64, 1.5)
        );
    }
    let refined = VariableDlModelBuilder::new(1.0, upper)?
        .diffusion(ConstantField(cal.params.diffusion()))
        .growth(field)
        .capacity(ConstantField(cal.params.capacity()))
        .build(split.initial_profile())?;
    let refined_pred = refined.predict(&distances, &hours)?;
    let refined_table = AccuracyTable::score_split(&refined_pred, &split)?;

    println!("\nclassic DL (global r(t)):\n{classic_table}");
    println!("refined DL (per-distance r(x, t)):\n{refined_table}");
    let fmt = |v: Option<f64>| v.map_or("-".into(), |a| format!("{:.2}%", a * 100.0));
    println!(
        "overall: classic {} vs refined {}",
        fmt(classic_table.overall_average()),
        fmt(refined_table.overall_average())
    );
    Ok(())
}
