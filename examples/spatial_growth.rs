//! The paper's future work, exercised: compare the classic DL model
//! (global r(t)) against the generalized model with a per-distance growth
//! field r(x, t) — the refinement the paper proposes in §V after
//! observing that interest-distance group 5 "drops faster at time 2 to
//! 5" than a single growth rate can track. Both variants run through the
//! unified `DiffusionPredictor` interface.
//!
//! ```sh
//! cargo run --release --example spatial_growth [-- scale]
//! ```

use dlm::cascade::interest_groups::{interest_density_matrix, GroupingStrategy};
use dlm::cascade::ObservationSplit;
use dlm::core::accuracy::AccuracyTable;
use dlm::core::predict::{
    DiffusionPredictor, FitConfig, GrowthFamily, Observation, PredictionRequest,
};
use dlm::core::registry::ModelRegistry;
use dlm::core::zoo::VariableDlPredictor;
use dlm::data::simulate::simulate_story;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);

    let world = SyntheticWorld::generate(WorldConfig::default().scaled(scale))?;
    let cascade = simulate_story(&world, &StoryPreset::s1(), SimulationConfig::default())?;
    let observed = interest_density_matrix(
        world.profile(),
        world.user_count(),
        &cascade,
        5,
        6,
        GroupingStrategy::EqualWidth,
    )?;
    let split = ObservationSplit::paper_protocol(&observed)?;
    let observation = Observation::from_matrix(&observed, &[1, 2, 3, 4, 5, 6])?;
    let request = PredictionRequest::new(
        (1..=split.distance_count() as u32).collect(),
        split.target_hours().to_vec(),
    )?;

    // Classic calibration (through the registry) for the shared scalars.
    let calibrated = ModelRegistry::with_builtins()
        .build_from_str("dl-cal(d0=0.05,K0=60,r0=interest,fitK=true)")?
        .fit(&observation)?;
    let scalars: HashMap<String, f64> = calibrated
        .param_names()
        .into_iter()
        .zip(calibrated.params())
        .collect();
    let (d, k) = (scalars["d"], scalars["K"]);
    println!("shared scalars: d = {d:.4}, K = {k:.1}");

    let config = FitConfig {
        growth: GrowthFamily::ExpDecay {
            amplitude: scalars["r.amplitude"],
            decay: scalars["r.decay"],
            floor: scalars["r.floor"],
        },
        ..FitConfig::default()
    };

    // Classic: one r(t) for every distance. Refined: an independent
    // r_d(t) per distance, blended linearly in x — same trait, one flag.
    let classic = VariableDlPredictor::new(d, k, false, config).fit(&observation)?;
    let refined = VariableDlPredictor::new(d, k, true, config).fit(&observation)?;

    println!("\nper-distance growth parameters (from fitted introspection):");
    for (name, value) in refined.param_names().iter().zip(refined.params()).skip(2) {
        println!("  {name:<16} {value:8.3}");
    }

    let classic_table = AccuracyTable::score_split(&classic.predict(&request)?, &split)?;
    let refined_table = AccuracyTable::score_split(&refined.predict(&request)?, &split)?;

    println!("\nclassic DL (global r(t)):\n{classic_table}");
    println!("refined DL (per-distance r(x, t)):\n{refined_table}");
    let fmt = |v: Option<f64>| v.map_or("-".into(), |a| format!("{:.2}%", a * 100.0));
    println!(
        "overall: classic {} vs refined {}",
        fmt(classic_table.overall_average()),
        fmt(refined_table.overall_average())
    );
    Ok(())
}
