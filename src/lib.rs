//! # dlm — Diffusive Logistic Model for information diffusion
//!
//! A Rust reproduction of *Diffusive Logistic Model Towards Predicting
//! Information Diffusion in Online Social Networks* (Wang, Wang & Xu,
//! ICDCS 2012; arXiv:1108.0442), packaged as a workspace of focused
//! crates and re-exported here for convenience:
//!
//! * [`numerics`] — splines, tridiagonal/dense solvers, ODE integrators,
//!   optimizers (the from-scratch MATLAB replacement);
//! * [`graph`] — directed social graph, BFS hop distances, Jaccard
//!   shared-interest distance, Digg-like network generators;
//! * [`data`] — Digg-2009 dataset model + the two-channel cascade
//!   simulator that substitutes for the non-redistributable crawl;
//! * [`cascade`] — `I(x, t)` density matrices and distance groupings;
//! * [`core`] — the DL PDE model *and the unified model zoo*: the
//!   [`core::predict::DiffusionPredictor`] trait implemented by all seven
//!   predictors, the serializable [`core::registry::ModelSpec`] +
//!   [`core::registry::ModelRegistry`], and the batch
//!   [`core::evaluate::EvaluationPipeline`] — work-stealing parallel over
//!   the models × cases grid (see [`core::evaluate::Parallelism`]) with a
//!   bounded LRU fitted-model cache, byte-identical to its serial path;
//! * [`serve`] — the online forecasting service: streaming ingestion
//!   ([`serve::LiveCascade`], bit-identical to the batch builders at
//!   every hour boundary), a refit scheduler feeding the shared
//!   [`core::evaluate::FittedModelCache`], a bounded TTL-swept
//!   live-cascade store, and a JSON-lines-over-TCP front end
//!   ([`serve::DlmServer`], `dlm-serve` binary, durable via
//!   `--snapshot-dir`) — wire spec in `docs/PROTOCOL.md`;
//! * [`cluster`] — the elastic-cluster machinery: the versioned
//!   [`cluster::CascadeSnapshot`] byte codec (bit-exact, checksummed),
//!   the consistent-hash [`cluster::HashRing`] with N-way owner walks,
//!   and the [`cluster::Membership`] state machine behind the router's
//!   `join`/`drain`/`remove` admin verbs;
//! * [`scenarios`] — the deterministic workload factory: named cascade
//!   regimes (topology × shape × diffusivity × storm) streamed as
//!   [`scenarios::ScenarioCascade`]s whose bytes are a pure function of
//!   `(regime, seed, index)`, plus the synthetic Digg-format fixture
//!   behind the `--digg-dir` end-to-end replay — the soak layer every
//!   perf and robustness change is gated against (`docs/SCENARIOS.md`);
//! * [`router`] — the sharding tier: [`router::RouterState`] proxies a
//!   live `ring_version`-epoch topology over pooled connections, with
//!   opt-in N-way replicated placement (`--replicas-data`),
//!   snapshot-handoff admin verbs, and scatter-gather `stats`
//!   (`dlm-router` binary); routed forecasts are byte-identical to
//!   direct ones, and handoff/failover never changes a byte.
//!
//! ## Quickstart — one model
//!
//! ```
//! use dlm::core::predict::{Observation, PredictionRequest};
//! use dlm::core::registry::ModelRegistry;
//!
//! # fn main() -> Result<(), dlm::core::DlError> {
//! let hour1 = [2.1, 0.7, 0.9, 0.5, 0.3, 0.2]; // densities at hops 1..=6
//! let predictor = ModelRegistry::with_builtins().build_from_str("dl(d=0.01,K=25,r=hops)")?;
//! let fitted = predictor.fit(&Observation::from_profile(1, &hour1)?)?;
//! let pred = fitted.predict(&PredictionRequest::new(vec![1, 2, 3], vec![2, 4, 6])?)?;
//! assert!(pred.at(1, 6)? > hour1[0]);
//! # Ok(())
//! # }
//! ```
//!
//! ## Quickstart — the whole zoo
//!
//! ```no_run
//! use dlm::core::evaluate::{EvaluationCase, EvaluationPipeline};
//! use dlm::cascade::hops::hop_density_matrix;
//! use dlm::data::simulate::simulate_story;
//! use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let world = SyntheticWorld::generate(WorldConfig::default())?;
//! let cascade = simulate_story(&world, &StoryPreset::s1(), SimulationConfig::default())?;
//! let observed = hop_density_matrix(world.graph(), &cascade, 5, 6)?;
//! let case = EvaluationCase::paper_protocol("s1", observed)?;
//! let report = EvaluationPipeline::full_lineup().run(&[case])?;
//! println!("{report}"); // per-model Eq.-8 accuracy table
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/model_zoo.rs` for the full comparison on simulated Digg
//! cascades and `crates/bench` for the figure/table reproduction harness.

#![warn(missing_docs)]

pub use dlm_cascade as cascade;
pub use dlm_cluster as cluster;
pub use dlm_core as core;
pub use dlm_data as data;
pub use dlm_graph as graph;
pub use dlm_numerics as numerics;
pub use dlm_router as router;
pub use dlm_scenarios as scenarios;
pub use dlm_serve as serve;
