//! # dlm — Diffusive Logistic Model for information diffusion
//!
//! A Rust reproduction of *Diffusive Logistic Model Towards Predicting
//! Information Diffusion in Online Social Networks* (Wang, Wang & Xu,
//! ICDCS 2012; arXiv:1108.0442), packaged as a workspace of focused
//! crates and re-exported here for convenience:
//!
//! * [`numerics`] — splines, tridiagonal/dense solvers, ODE integrators,
//!   optimizers (the from-scratch MATLAB replacement);
//! * [`graph`] — directed social graph, BFS hop distances, Jaccard
//!   shared-interest distance, Digg-like network generators;
//! * [`data`] — Digg-2009 dataset model + the two-channel cascade
//!   simulator that substitutes for the non-redistributable crawl;
//! * [`cascade`] — `I(x, t)` density matrices and distance groupings;
//! * [`core`] — the DL PDE model: φ construction, Crank–Nicolson solver,
//!   prediction, Eq.-8 accuracy, calibration, baselines, theory checks.
//!
//! ## Quickstart
//!
//! ```
//! use dlm::core::model::DlModel;
//!
//! # fn main() -> Result<(), dlm::core::DlError> {
//! let hour1 = [2.1, 0.7, 0.9, 0.5, 0.3, 0.2]; // densities at hops 1..=6
//! let model = DlModel::paper_hops(&hour1)?;
//! let pred = model.predict(&[1, 2, 3, 4, 5, 6], &[2, 3, 4, 5, 6])?;
//! assert!(pred.at(1, 6)? > hour1[0]);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! full figure/table reproduction harness.

#![warn(missing_docs)]

pub use dlm_cascade as cascade;
pub use dlm_core as core;
pub use dlm_data as data;
pub use dlm_graph as graph;
pub use dlm_numerics as numerics;
