//! Tier-1 gate for the bench artifact contract: every `BENCH_*.json`
//! writer declares a schema from `dlm_bench::artifact`, and this test
//! pins the registry — shape fixtures mirroring each writer's exact
//! output must validate, tampered documents must not, and any artifact
//! actually present at the workspace root (left by a local or CI bench
//! run) must pass the same validation the writers enforce.

use dlm_bench::artifact;

/// A document shaped exactly like `serve_load`'s single-server writer.
fn serve_fixture() -> String {
    let run = r#"{"label": "reactor", "front": "reactor", "transport": "binary", "batch": 4,
        "requests": 48, "wire_lines": 16, "wall_seconds": 0.084, "throughput_rps": 573.02,
        "ingest_latency": {"n": 8, "mean_ms": 24.1, "stddev_ms": 9.0, "p50_ms": 22.0,
                           "p95_ms": 40.0, "max_ms": 41.2},
        "forecast_latency": null,
        "service_times": {"ingest": {"count": 40, "p50_ms": 16.4, "p95_ms": 32.8},
                          "forecast": {"count": 36, "p50_ms": 4.1, "p95_ms": 8.2}},
        "cache": {"hits": 12, "misses": 20, "evictions": 0},
        "protocol_ok": true, "metrics_ok": true, "outputs_identical": true}"#;
    format!(
        r#"{{"schema": "{}", "mode": "smoke", "hardware_threads": 8, "clients": 4,
            "hours_streamed": 5, "votes_replayed_per_client": 163,
            "runs": [{run}], "reactor_speedup": 1.062}}"#,
        artifact::SERVE_SCHEMA
    )
}

/// A document shaped exactly like `serve_load`'s router writer.
fn router_fixture() -> String {
    format!(
        r#"{{"schema": "{}", "mode": "smoke", "backends": 2, "clients": 4,
            "data_replicas": 1, "hardware_threads": 8, "transport": "lines",
            "hours_streamed": 5, "votes_replayed_per_client": 163, "requests": 48,
            "wall_seconds": 0.1, "throughput_rps": 482.7, "ingest_latency": null,
            "forecast_latency": null, "routed_per_backend": [13, 37],
            "aggregate_cache": {{"hits": 5, "misses": 40, "evictions": 0}},
            "remap_fraction": 0.0, "handoff_ms": null, "rejoin_ms": null,
            "repair_count": 0, "lost_responses": 0,
            "protocol_ok": true, "routed_identical": true}}"#,
        artifact::ROUTER_SCHEMA
    )
}

/// A document shaped exactly like `serve_load`'s scenario-soak writer.
fn scenarios_fixture() -> String {
    let entry = |regime: &str| {
        format!(
            r#"{{"regime": "{regime}", "cascades": 4, "deliveries": 32, "votes_accepted": 260,
                "late_rejections": 5, "requests": 92, "wall_seconds": 0.14,
                "throughput_rps": 650.2, "eq8_mean_accuracy": 0.163, "accuracy_floor": 0.07,
                "accuracy_ok": true, "protocol_ok": true, "metrics_ok": true,
                "outputs_identical": true, "routed_identical": true, "slice_identical": true}}"#
        )
    };
    format!(
        r#"{{"schema": "{}", "mode": "smoke", "hardware_threads": 8, "clients": 4,
            "seed": 42, "regimes": [{}, {}], "digg": {}, "soak_ok": true}}"#,
        artifact::SCENARIOS_SCHEMA,
        entry("broadcast"),
        entry("storm"),
        entry("digg"),
    )
}

/// A document shaped exactly like the evaluation bench writer.
fn evaluation_fixture() -> String {
    let leg = r#"{"ms": 100.0, "cache_hits": 1, "cache_misses": 2, "cache_evictions": 0}"#;
    format!(
        r#"{{"schema": "{}", "mode": "smoke", "hardware_threads": 8, "workers": 8,
            "models": 8, "cases": 12, "grid_cells": 96,
            "serial_cold": {leg}, "serial_warm": {leg},
            "parallel_cold": {leg}, "parallel_warm": {leg},
            "speedup_parallel_cold": 3.1, "speedup_parallel_warm": 2.9,
            "speedup_warm_cache": 4.0, "outputs_identical": true}}"#,
        artifact::EVALUATION_SCHEMA
    )
}

/// A document shaped exactly like the calibration bench writer.
fn calibration_fixture() -> String {
    let run = r#"{"ms": 250.0, "mean_objective": 1.5e-3}"#;
    format!(
        r#"{{"schema": "{}", "mode": "smoke", "hardware_threads": 8, "workers": 8,
            "fixtures": 4, "starts": 6, "evals_per_start": 120,
            "single_start": {run}, "multi_serial": {run}, "multi_parallel": {run},
            "speedup_parallel_multi": 2.8, "objective_improvement_geomean": 0.97,
            "objective_never_worse": true, "outputs_identical": true}}"#,
        artifact::CALIBRATION_SCHEMA
    )
}

#[test]
fn every_writer_schema_is_registered_and_its_shape_validates() {
    for (schema, doc) in [
        (artifact::SERVE_SCHEMA, serve_fixture()),
        (artifact::ROUTER_SCHEMA, router_fixture()),
        (artifact::SCENARIOS_SCHEMA, scenarios_fixture()),
        (artifact::EVALUATION_SCHEMA, evaluation_fixture()),
        (artifact::CALIBRATION_SCHEMA, calibration_fixture()),
    ] {
        assert!(
            artifact::required_keys(schema).is_some(),
            "schema `{schema}` missing from the registry"
        );
        artifact::validate(&doc).unwrap_or_else(|e| panic!("{schema} fixture rejected: {e}"));
    }
}

#[test]
fn dropping_any_required_key_fails_validation() {
    for doc in [
        serve_fixture(),
        router_fixture(),
        scenarios_fixture(),
        evaluation_fixture(),
        calibration_fixture(),
    ] {
        let schema = dlm_serve::Json::parse(&doc)
            .expect("fixture parses")
            .get("schema")
            .and_then(|s| s.as_str().map(str::to_owned))
            .expect("fixture declares a schema");
        for key in artifact::required_keys(&schema).expect("registered") {
            if *key == "schema" {
                continue; // removing `schema` fails earlier, tested below
            }
            let needle = format!("\"{key}\"");
            let start = doc.find(&needle).expect("fixture carries the key");
            // Rename the key in place: same JSON shape, required key gone.
            let tampered = format!("{}\"_{}{}", &doc[..start], &key[..1], &doc[start + 2..]);
            assert!(
                artifact::validate(&tampered).is_err(),
                "{schema} accepted a document missing `{key}`"
            );
        }
    }
}

#[test]
fn unknown_schemas_and_nonfinite_numbers_fail_validation() {
    let unknown = serve_fixture().replace(artifact::SERVE_SCHEMA, "dlm-bench/mystery/v1");
    assert!(artifact::validate(&unknown)
        .unwrap_err()
        .contains("registry"));

    // What a writer interpolating a NaN/Inf float emits — not JSON at all.
    let nan = serve_fixture().replace("1.062", "NaN");
    assert!(artifact::validate(&nan).is_err());
    let inf = serve_fixture().replace("1.062", "inf");
    assert!(artifact::validate(&inf).is_err());

    assert!(artifact::validate("[]").is_err());
    assert!(artifact::validate(r#"{"mode": "smoke"}"#).is_err());
}

#[test]
fn serve_runs_entries_are_validated_individually() {
    let missing_run_key = serve_fixture().replace("\"wire_lines\"", "\"wire_lanes\"");
    let err = artifact::validate(&missing_run_key).unwrap_err();
    assert!(err.contains("runs[0]"), "unexpected error: {err}");

    let empty_runs = serve_fixture();
    let start = empty_runs.find("\"runs\": [").expect("runs key");
    let end = empty_runs[start..].find(']').expect("array close") + start;
    let empty_runs = format!("{}\"runs\": [{}", &empty_runs[..start], &empty_runs[end..]);
    assert!(artifact::validate(&empty_runs).is_err());
}

#[test]
fn artifacts_left_at_the_workspace_root_validate() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0usize;
    for entry in std::fs::read_dir(root).expect("workspace root") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            let text = std::fs::read_to_string(entry.path()).expect("read artifact");
            artifact::validate(&text).unwrap_or_else(|e| panic!("{name} invalid: {e}"));
            checked += 1;
        }
    }
    eprintln!("validated {checked} artifact(s) at the workspace root");
}
