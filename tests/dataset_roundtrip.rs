//! Integration tests of the Digg-2009 CSV interchange path: a simulated
//! cascade written to the on-disk format and re-read must drive the
//! analytics pipeline to identical results.

use dlm::cascade::density::cumulative_counts;
use dlm::cascade::hops::hop_density_matrix;
use dlm::cascade::DensityMatrix;
use dlm::data::simulate::simulate_story;
use dlm::data::{
    DiggDataset, FriendLink, SimulationConfig, StoryPreset, SyntheticWorld, Vote, WorldConfig,
};
use dlm::graph::bfs::hop_distances;

fn world() -> SyntheticWorld {
    SyntheticWorld::generate(WorldConfig::default().scaled(0.1)).unwrap()
}

fn to_dataset(world: &SyntheticWorld, votes: Vec<Vote>) -> DiggDataset {
    let links: Vec<FriendLink> = world
        .graph()
        .edges()
        .map(|(followee, follower)| FriendLink {
            mutual: false,
            timestamp: 0,
            follower,
            followee,
        })
        .collect();
    DiggDataset::new(votes, links)
}

#[test]
fn csv_roundtrip_preserves_dataset_exactly() {
    let w = world();
    let cascade = simulate_story(&w, &StoryPreset::s3(), SimulationConfig::default()).unwrap();
    let ds = to_dataset(&w, cascade.votes().to_vec());

    let mut votes_csv = Vec::new();
    let mut friends_csv = Vec::new();
    ds.write_votes_csv(&mut votes_csv).unwrap();
    ds.write_friends_csv(&mut friends_csv).unwrap();
    let back = DiggDataset::read_csv(votes_csv.as_slice(), friends_csv.as_slice()).unwrap();
    assert_eq!(ds, back);
}

#[test]
fn follower_graph_reconstruction_preserves_densities() {
    // Densities computed from the reconstructed dataset graph must equal
    // densities computed from the original simulation graph.
    let w = world();
    let cascade = simulate_story(&w, &StoryPreset::s2(), SimulationConfig::default()).unwrap();
    let original = hop_density_matrix(w.graph(), &cascade, 5, 6).unwrap();

    let ds = to_dataset(&w, cascade.votes().to_vec());
    let graph = ds.follower_graph();
    let initiator = ds.initiator(StoryPreset::s2().id).unwrap();
    assert_eq!(initiator, cascade.initiator());

    let groups = hop_distances(&graph, initiator).groups_up_to(5);
    let live: Vec<Vec<usize>> = groups.into_iter().take_while(|g| !g.is_empty()).collect();
    let sizes: Vec<usize> = live.iter().map(Vec::len).collect();
    let counts = cumulative_counts(
        &live,
        &ds.story_votes(StoryPreset::s2().id),
        cascade.submit_time(),
        6,
    );
    let rebuilt = DensityMatrix::from_counts(&counts, &sizes).unwrap();

    assert_eq!(original.max_hour(), rebuilt.max_hour());
    let d_common = original.max_distance().min(rebuilt.max_distance());
    for d in 1..=d_common {
        for t in 1..=6 {
            let a = original.at(d, t).unwrap();
            let b = rebuilt.at(d, t).unwrap();
            assert!((a - b).abs() < 1e-9, "d={d} t={t}: {a} vs {b}");
        }
    }
}

#[test]
fn popularity_ranking_identifies_the_simulated_story() {
    let w = world();
    let cascade = simulate_story(&w, &StoryPreset::s1(), SimulationConfig::default()).unwrap();
    let ds = to_dataset(&w, cascade.votes().to_vec());
    let ranked = ds.stories_by_popularity();
    assert_eq!(ranked.len(), 1);
    assert_eq!(ranked[0], (StoryPreset::s1().id, cascade.vote_count()));
}
