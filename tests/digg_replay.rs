//! Tier-1 gate for the Digg CSV replay path the scenario soak drives:
//! the synthetic fixture written to the real on-disk CSV format and
//! re-read through the loader must be the same dataset, and streaming
//! each story's votes through [`dlm::serve::LiveCascade`] must produce
//! density matrices bit-identical to the batch
//! [`dlm::cascade::hops::hop_density_matrix`] builder at every closed
//! hour boundary — the invariant the `--digg-dir` soak's
//! served-vs-offline gate rests on.

use dlm::cascade::hops::hop_density_matrix;
use dlm::data::{Cascade, DiggDataset, Vote};
use dlm::scenarios::{digg_fixture, DiggFixtureConfig, SCENARIO_MAX_HOPS};
use dlm::serve::LiveCascade;
use std::fs::File;
use std::path::PathBuf;

const HORIZON: u32 = 8;

/// Writes the fixture through the CSV writers into a scratch directory
/// and reads it back through the file-based loader path — the exact
/// bytes-on-disk round trip `serve_load --digg-dir` performs.
fn fixture_through_disk() -> (DiggDataset, DiggDataset) {
    let dataset = digg_fixture(&DiggFixtureConfig::default()).expect("fixture generates");
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "dlm-digg-replay-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let votes_path = dir.join("digg_votes.csv");
    let friends_path = dir.join("digg_friends.csv");
    dataset
        .write_votes_csv(&mut File::create(&votes_path).expect("create votes csv"))
        .expect("write votes csv");
    dataset
        .write_friends_csv(&mut File::create(&friends_path).expect("create friends csv"))
        .expect("write friends csv");
    let reread = DiggDataset::read_csv(
        File::open(&votes_path).expect("open votes csv"),
        File::open(&friends_path).expect("open friends csv"),
    )
    .expect("loader parses its own output");
    let _ = std::fs::remove_dir_all(&dir);
    (dataset, reread)
}

#[test]
fn fixture_survives_the_on_disk_csv_round_trip() {
    let (dataset, reread) = fixture_through_disk();
    assert_eq!(dataset, reread, "CSV writers and loader disagree");
    assert_eq!(reread.story_ids().len(), 6);
}

#[test]
fn live_ingest_matches_batch_builder_at_every_hour_boundary() {
    let (_, dataset) = fixture_through_disk();
    let graph = dataset.follower_graph();
    let mut hours_checked = 0usize;

    for story in dataset.story_ids() {
        let votes = dataset.story_votes(story);
        let initiator = dataset.initiator(story).expect("story has votes");
        let submit = votes[0].timestamp;

        // Streaming twin: one ingest per vote, in log order. The loader
        // hands votes back timestamp-sorted, so no vote is ever late.
        let mut live = LiveCascade::for_hops(&graph, initiator, SCENARIO_MAX_HOPS, submit, HORIZON)
            .expect("initiator reaches the graph");
        for vote in &votes {
            live.ingest(*vote)
                .unwrap_or_else(|e| panic!("story {story}: sorted replay rejected a vote: {e}"));
        }
        live.advance_to(submit + u64::from(HORIZON) * 3600);
        assert_eq!(live.closed_hours(), HORIZON);
        assert!(live.counted_votes() > 0, "story {story} counted nothing");

        // Batch twin: the offline pipeline on the same votes.
        let batch_votes: Vec<Vote> = votes.clone();
        let cascade = Cascade::from_parts(story, initiator, submit, batch_votes)
            .expect("loader votes start at submission");

        for hour in 1..=HORIZON {
            let streamed = live.matrix_through(hour).expect("hour is closed");
            let batch = hop_density_matrix(&graph, &cascade, SCENARIO_MAX_HOPS, hour)
                .expect("batch builder");
            assert_eq!(streamed.max_distance(), batch.max_distance());
            assert_eq!(streamed.max_hour(), batch.max_hour());
            for d in 1..=streamed.max_distance() {
                for h in 1..=hour {
                    let s = streamed.at(d, h).expect("streamed cell");
                    let b = batch.at(d, h).expect("batch cell");
                    assert_eq!(
                        s.to_bits(),
                        b.to_bits(),
                        "story {story} d={d} h={h}: streamed {s} != batch {b}"
                    );
                }
            }
            hours_checked += 1;
        }
    }
    assert_eq!(hours_checked, 6 * HORIZON as usize);
}
