//! Markdown link check over `README.md` and `docs/`: every relative
//! link must point at a file that exists in the repo, and every anchor
//! must match a heading in the target document. Documentation that
//! rots — a renamed doc, a dropped section — fails tier-1 instead of
//! waiting for a reader to hit a 404.

use std::path::{Path, PathBuf};

/// Extracts `[text](target)` links outside fenced code blocks and
/// inline code spans.
fn extract_links(markdown: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Strip inline code spans so `[i][j]`-style text can't pair
        // with a following parenthesis.
        let mut cleaned = String::with_capacity(line.len());
        let mut in_code = false;
        for ch in line.chars() {
            if ch == '`' {
                in_code = !in_code;
            } else if !in_code {
                cleaned.push(ch);
            }
        }
        let bytes = cleaned.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'[' {
                if let Some(close) = cleaned[i..].find("](") {
                    let target_start = i + close + 2;
                    if let Some(end) = cleaned[target_start..].find(')') {
                        links.push(cleaned[target_start..target_start + end].to_owned());
                        i = target_start + end + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    links
}

/// GitHub-style heading slugs: lowercase, punctuation dropped, spaces
/// to hyphens.
fn heading_slugs(markdown: &str) -> Vec<String> {
    let mut slugs = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let text = line.trim_start_matches('#').trim();
        let mut slug = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                slug.extend(ch.to_lowercase());
            } else if ch == ' ' || ch == '-' {
                slug.push('-');
            } // other punctuation is dropped
        }
        slugs.push(slug);
    }
    slugs
}

fn check_file(path: &Path, root: &Path, problems: &mut Vec<String>) {
    let markdown = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let dir = path.parent().expect("markdown files live in a directory");
    for link in extract_links(&markdown) {
        if link.starts_with("http://")
            || link.starts_with("https://")
            || link.starts_with("mailto:")
        {
            continue; // external links are not checked offline
        }
        let (file_part, anchor) = match link.split_once('#') {
            Some((f, a)) => (f, Some(a)),
            None => (link.as_str(), None),
        };
        let target: PathBuf = if file_part.is_empty() {
            path.to_path_buf() // same-document anchor
        } else {
            dir.join(file_part)
        };
        if !target.exists() {
            problems.push(format!(
                "{}: broken link `{link}` (no {})",
                path.strip_prefix(root).unwrap_or(path).display(),
                target.display()
            ));
            continue;
        }
        if let Some(anchor) = anchor {
            let target_md = std::fs::read_to_string(&target)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", target.display()));
            if !heading_slugs(&target_md).iter().any(|s| s == anchor) {
                problems.push(format!(
                    "{}: link `{link}` anchors to `#{anchor}`, which matches no heading in {}",
                    path.strip_prefix(root).unwrap_or(path).display(),
                    target.display()
                ));
            }
        }
    }
}

#[test]
fn markdown_links_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    assert!(docs.is_dir(), "docs/ directory is missing");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs)
        .expect("read docs/")
        .map(|e| e.expect("docs entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "docs/ contains no markdown");
    files.extend(entries);

    let mut problems = Vec::new();
    for file in &files {
        check_file(file, &root, &mut problems);
    }
    assert!(
        problems.is_empty(),
        "broken documentation links:\n{}",
        problems.join("\n")
    );
}

#[test]
fn link_extraction_ignores_code() {
    let md = "see [a](x.md) and `[not](a-link)`\n```\n[also](not-a-link)\n```\n[b](y.md#z)";
    assert_eq!(extract_links(md), vec!["x.md".to_owned(), "y.md#z".into()]);
    assert_eq!(
        heading_slugs("# Hello, World!\n## A b-c d"),
        vec!["hello-world".to_owned(), "a-b-c-d".into()]
    );
}
