//! End-to-end integration tests: the full paper pipeline across all five
//! crates (world → cascade → densities → DiffusionPredictor zoo →
//! accuracy), driven through the unified prediction interface.

use dlm::cascade::hops::hop_density_matrix;
use dlm::cascade::interest_groups::{interest_density_matrix, GroupingStrategy};
use dlm::cascade::ObservationSplit;
use dlm::core::accuracy::AccuracyTable;
use dlm::core::evaluate::{EvaluationCase, EvaluationPipeline};
use dlm::core::model::DlModel;
use dlm::core::predict::{Observation, PredictionRequest};
use dlm::core::registry::{ModelRegistry, ModelSpec};
use dlm::core::theory::verify_properties;
use dlm::data::simulate::simulate_story;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};

fn world() -> SyntheticWorld {
    SyntheticWorld::generate(WorldConfig::default().scaled(0.25)).unwrap()
}

#[test]
fn paper_pipeline_hops_beats_naive_baseline() {
    let w = world();
    let cascade = simulate_story(&w, &StoryPreset::s1(), SimulationConfig::default()).unwrap();
    let observed = hop_density_matrix(w.graph(), &cascade, 5, 6).unwrap();

    // One batch run scores the calibrated DL model and the naive
    // baseline on the same case.
    let case = EvaluationCase::paper_protocol("s1", observed).unwrap();
    let report = EvaluationPipeline::new()
        .model(ModelSpec::calibrated_dl())
        .model(ModelSpec::Naive)
        .run(&[case])
        .unwrap();
    let dl_acc = report
        .outcome(0, 0)
        .unwrap()
        .overall()
        .expect("defined accuracy");
    let naive_acc = report
        .outcome(1, 0)
        .unwrap()
        .overall()
        .expect("defined accuracy");

    assert!(
        dl_acc > 0.75,
        "calibrated DL accuracy too low: {dl_acc}\n{report}"
    );
    assert!(
        dl_acc > naive_acc + 0.1,
        "DL {dl_acc} vs naive {naive_acc}\n{report}"
    );
    assert_eq!(
        report.ranking()[0].0,
        ModelSpec::calibrated_dl().to_string()
    );
}

#[test]
fn paper_pipeline_interest_metric_works() {
    let w = world();
    let cascade = simulate_story(&w, &StoryPreset::s1(), SimulationConfig::default()).unwrap();
    let observed = interest_density_matrix(
        w.profile(),
        w.user_count(),
        &cascade,
        5,
        6,
        GroupingStrategy::EqualWidth,
    )
    .unwrap();
    let split = ObservationSplit::paper_protocol(&observed).unwrap();

    // Construct the calibrated predictor from its serialized spec string
    // and drive it through the trait directly.
    let registry = ModelRegistry::with_builtins();
    let predictor = registry
        .build_from_str("dl-cal(d0=0.05,K0=60,r0=interest,fitK=true,evals=600)")
        .unwrap();
    let observation = Observation::from_matrix(&observed, &[1, 2, 3, 4, 5, 6]).unwrap();
    let fitted = predictor.fit(&observation).unwrap();
    let request = PredictionRequest::new(
        (1..=split.distance_count() as u32).collect(),
        split.target_hours().to_vec(),
    )
    .unwrap();
    let pred = fitted.predict(&request).unwrap();
    let acc = AccuracyTable::score_split(&pred, &split)
        .unwrap()
        .overall_average()
        .expect("defined accuracy");
    assert!(acc > 0.8, "interest-metric DL accuracy too low: {acc}");
    // The fitted parameters are introspectable through the trait.
    assert_eq!(fitted.param_names().len(), fitted.params().len());
    assert!(fitted.param_names().contains(&"d".to_string()));
}

#[test]
fn theory_properties_hold_on_simulated_data() {
    let w = world();
    let cascade = simulate_story(&w, &StoryPreset::s2(), SimulationConfig::default()).unwrap();
    let observed = hop_density_matrix(w.graph(), &cascade, 5, 6).unwrap();
    let split = ObservationSplit::paper_protocol(&observed).unwrap();
    let model = DlModel::paper_hops(split.initial_profile()).unwrap();
    let report = verify_properties(&model, 50.0, 1e-8).unwrap();
    assert!(report.bounds_hold);
    assert!(report.increasing_holds);
}

#[test]
fn all_four_stories_flow_through_the_pipeline() {
    let w = world();
    for preset in StoryPreset::all() {
        let cascade = simulate_story(&w, &preset, SimulationConfig::default()).unwrap();
        assert!(cascade.vote_count() > 5, "{} too small", preset.name);
        let observed = hop_density_matrix(w.graph(), &cascade, 5, 6).unwrap();
        // Paper protocol must be constructible for every story.
        let split = ObservationSplit::paper_protocol(&observed).unwrap();
        assert_eq!(split.target_hours(), &[2, 3, 4, 5, 6]);
    }
}

#[test]
fn vote_popularity_ordering_matches_paper() {
    let w = world();
    let counts: Vec<usize> = StoryPreset::all()
        .iter()
        .map(|p| {
            simulate_story(&w, p, SimulationConfig::default())
                .unwrap()
                .vote_count()
        })
        .collect();
    assert!(
        counts[0] > counts[1],
        "s1 {} !> s2 {}",
        counts[0],
        counts[1]
    );
    assert!(
        counts[1] > counts[2],
        "s2 {} !> s3 {}",
        counts[1],
        counts[2]
    );
    assert!(
        counts[2] > counts[3],
        "s3 {} !> s4 {}",
        counts[2],
        counts[3]
    );
}
