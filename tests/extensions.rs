//! Integration tests for the beyond-the-paper extensions: the
//! variable-coefficient model, prediction bands, vote timelines, density
//! confidence intervals, and connectivity validation — all running on the
//! same simulated cascades as the headline experiments.

use dlm::cascade::confidence::density_intervals;
use dlm::cascade::hops::hop_density_matrix;
use dlm::cascade::timeline::VoteTimeline;
use dlm::cascade::ObservationSplit;
use dlm::core::growth::ExpDecayGrowth;
use dlm::core::params::DlParameters;
use dlm::core::predict::{
    DiffusionPredictor, FitConfig, GrowthFamily, Observation, PredictionRequest,
};
use dlm::core::uncertainty::{prediction_bands, BandConfig};
use dlm::core::zoo::VariableDlPredictor;
use dlm::data::simulate::simulate_story;
use dlm::data::{SimulationConfig, StoryPreset, SyntheticWorld, WorldConfig};
use dlm::graph::components::{strongly_connected_components, weakly_connected_components};

fn world() -> SyntheticWorld {
    SyntheticWorld::generate(WorldConfig::default().scaled(0.2)).unwrap()
}

#[test]
fn synthetic_world_is_one_giant_weak_component() {
    let w = world();
    let wcc = weakly_connected_components(w.graph());
    assert!(
        wcc.giant_fraction() > 0.99,
        "follower graph fragmented: {}",
        wcc.giant_fraction()
    );
    // SCC structure is a refinement of WCC.
    let scc = strongly_connected_components(w.graph());
    assert!(scc.count() >= wcc.count());
}

#[test]
fn variable_model_predicts_simulated_interest_densities() {
    use dlm::cascade::interest_groups::{interest_density_matrix, GroupingStrategy};
    let w = world();
    let cascade = simulate_story(&w, &StoryPreset::s1(), SimulationConfig::default()).unwrap();
    let observed = interest_density_matrix(
        w.profile(),
        w.user_count(),
        &cascade,
        5,
        6,
        GroupingStrategy::EqualWidth,
    )
    .unwrap();
    let split = ObservationSplit::paper_protocol(&observed).unwrap();
    let distances: Vec<u32> = (1..=split.distance_count() as u32).collect();

    // The per-distance refinement through the unified predictor trait:
    // fit calibrates one growth curve per distance group.
    let predictor = VariableDlPredictor::new(
        0.01,
        80.0,
        true,
        FitConfig {
            growth: GrowthFamily::PaperInterest,
            ..FitConfig::default()
        },
    );
    let observation = Observation::from_matrix(&observed, &[1, 2, 3, 4, 5, 6]).unwrap();
    let fitted = predictor.fit(&observation).unwrap();
    let request = PredictionRequest::new(distances.clone(), split.target_hours().to_vec()).unwrap();
    let pred = fitted.predict(&request).unwrap();
    // Per-distance growth must track each group within a generous margin.
    for &d in &distances {
        for &h in split.target_hours() {
            let actual = split.target_at(h).unwrap()[(d - 1) as usize];
            if actual < 1.0 {
                continue; // sparse group noise
            }
            let p = pred.at(d, h).unwrap();
            let rel = (p - actual).abs() / actual;
            // Generous margin: this runs at reduced scale where the far
            // groups hold few voters (the full-scale run lands at ~99%
            // accuracy), and the exact value depends on the RNG stream
            // behind the synthetic world.
            assert!(rel < 0.6, "d={d} h={h}: predicted {p} vs actual {actual}");
        }
    }
}

#[test]
fn prediction_bands_cover_future_observations_mostly() {
    let w = world();
    let cascade = simulate_story(&w, &StoryPreset::s1(), SimulationConfig::default()).unwrap();
    let observed = hop_density_matrix(w.graph(), &cascade, 5, 6).unwrap();
    let split = ObservationSplit::paper_protocol(&observed).unwrap();
    let distances: Vec<u32> = (1..=split.distance_count() as u32).collect();
    let sizes: Vec<usize> = distances
        .iter()
        .map(|&d| observed.group_size(d).unwrap())
        .collect();

    let bands = prediction_bands(
        &DlParameters::paper_hops(observed.max_distance()).unwrap(),
        &ExpDecayGrowth::paper_hops(),
        split.initial_profile(),
        &sizes,
        &distances,
        &[2],
        &BandConfig {
            replicates: 100,
            ..BandConfig::default()
        },
    )
    .unwrap();
    // Sanity on shape: one band per distance, ordered edges, positive medians.
    assert_eq!(bands.len(), distances.len());
    for b in &bands {
        assert!(b.lower <= b.median && b.median <= b.upper, "{b:?}");
        assert!(b.median > 0.0);
    }
}

#[test]
fn vote_timeline_matches_density_saturation() {
    let w = world();
    let cascade = simulate_story(&w, &StoryPreset::s1(), SimulationConfig::default()).unwrap();
    let timeline = VoteTimeline::from_votes(cascade.votes(), cascade.submit_time(), 50).unwrap();
    assert_eq!(timeline.total(), cascade.vote_count());
    // 95% of votes must arrive by the density saturation hour (same signal,
    // two codepaths).
    let observed = hop_density_matrix(w.graph(), &cascade, 5, 50).unwrap();
    let summary = dlm::cascade::PatternSummary::from_matrix(&observed).unwrap();
    let sat = summary.story_saturation_hour().unwrap();
    let mass_hour = timeline.hour_of_mass(0.95).unwrap();
    assert!(
        mass_hour <= sat + 3,
        "timeline 95% at {mass_hour}, density saturation at {sat}"
    );
}

#[test]
fn confidence_intervals_are_tighter_for_larger_groups() {
    let w = world();
    let cascade = simulate_story(&w, &StoryPreset::s1(), SimulationConfig::default()).unwrap();
    let observed = hop_density_matrix(w.graph(), &cascade, 5, 6).unwrap();
    let intervals = density_intervals(&observed).unwrap();
    // Find the largest and smallest groups and compare interval widths at
    // comparable (nonzero) densities.
    let sizes: Vec<usize> = (1..=observed.max_distance())
        .map(|d| observed.group_size(d).unwrap())
        .collect();
    let (big_idx, _) = sizes.iter().enumerate().max_by_key(|&(_, &s)| s).unwrap();
    let (small_idx, _) = sizes.iter().enumerate().min_by_key(|&(_, &s)| s).unwrap();
    if big_idx != small_idx && sizes[big_idx] > 4 * sizes[small_idx] {
        let hw_big = intervals[big_idx].last().unwrap().half_width();
        let hw_small = intervals[small_idx].last().unwrap().half_width();
        assert!(
            hw_small > hw_big,
            "small group (n={}) hw {} !> big group (n={}) hw {}",
            sizes[small_idx],
            hw_small,
            sizes[big_idx],
            hw_big
        );
    }
}
