//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Implements a simple wall-clock measurement loop behind the familiar
//! `Criterion` / `BenchmarkGroup` / `Bencher` / `BenchmarkId` types and the
//! `criterion_group!` / `criterion_main!` macros. No statistics, plots, or
//! baselines — each benchmark is timed for a fixed budget and the mean
//! iteration time is printed. Enough to keep `cargo bench` compiling and
//! producing comparable numbers without crates.io access.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    warmup_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(600),
            warmup_iters: 1,
        }
    }
}

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    warmup_iters: u64,
    /// (total elapsed, iterations) recorded by the last `iter` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` repeatedly within the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn run_one(
    label: &str,
    measurement_time: Duration,
    warmup_iters: u64,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        measurement_time,
        warmup_iters,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) if iters > 0 => {
            let per = elapsed.as_secs_f64() / iters as f64;
            println!(
                "{label:<60} {:>12} iters  {:>14.3} ms/iter",
                iters,
                per * 1e3
            );
        }
        _ => println!("{label:<60} (no measurement)"),
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.measurement_time, self.warmup_iters, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group: {name}");
        let measurement_time = self.measurement_time;
        let warmup_iters = self.warmup_iters;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            measurement_time,
            warmup_iters,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warmup_iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim keys its budget on wall
    /// time, not sample counts, so this only scales the budget mildly.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Fewer samples in real criterion means the caller expects a slow
        // benchmark; shrink the shim's budget accordingly.
        if n < 50 {
            self.measurement_time = Duration::from_millis(300);
        }
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.measurement_time, self.warmup_iters, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.measurement_time, self.warmup_iters, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_iterations() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            warmup_iters: 0,
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            warmup_iters: 0,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 3 * 3));
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u32, |b, &x| b.iter(|| x * x));
        g.finish();
    }
}
