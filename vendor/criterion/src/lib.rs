//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Implements a simple wall-clock measurement loop behind the familiar
//! `Criterion` / `BenchmarkGroup` / `Bencher` / `BenchmarkId` types and the
//! `criterion_group!` / `criterion_main!` macros, plus basic sample
//! statistics: each iteration is timed individually and every benchmark
//! reports mean ± stddev with p50/p95 percentiles (see [`SampleStats`],
//! also usable directly by `harness = false` benches such as the
//! `dlm-serve` load generator). No plots or baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Summary statistics over a set of samples (typically per-iteration
/// wall-clock seconds, or per-request latencies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of samples summarized.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for a single
    /// sample).
    pub stddev: f64,
    /// Median (50th percentile, nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

impl SampleStats {
    /// Summarizes `samples`; `None` when empty.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n > 1 {
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Self {
            n,
            mean,
            stddev,
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            max: *sorted.last().expect("nonempty"),
        })
    }
}

/// Nearest-rank percentile of an already-sorted sample set.
///
/// `q` is clamped to `[0, 100]`; the empty case is the caller's to rule
/// out (as [`SampleStats::from_samples`] does).
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample set");
    let q = q.clamp(0.0, 100.0);
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    warmup_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(600),
            warmup_iters: 1,
        }
    }
}

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    warmup_iters: u64,
    /// Per-iteration wall-clock seconds recorded by the last `iter`
    /// call (capped; the statistics stay exact for every recorded
    /// sample).
    samples: Vec<f64>,
}

/// Upper bound on retained per-iteration samples, so a nanosecond-scale
/// routine cannot grow the sample vector without limit within the
/// measurement budget.
const MAX_SAMPLES: usize = 100_000;

impl Bencher {
    /// Times `routine` repeatedly within the measurement budget,
    /// recording each iteration's wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.warmup_iters {
            black_box(routine());
        }
        let budget = self.measurement_time;
        self.samples.clear();
        let start = Instant::now();
        loop {
            let before = Instant::now();
            black_box(routine());
            let elapsed = before.elapsed().as_secs_f64();
            if self.samples.len() < MAX_SAMPLES {
                self.samples.push(elapsed);
            }
            if start.elapsed() >= budget {
                break;
            }
        }
    }
}

fn run_one(
    label: &str,
    measurement_time: Duration,
    warmup_iters: u64,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        measurement_time,
        warmup_iters,
        samples: Vec::new(),
    };
    f(&mut b);
    match SampleStats::from_samples(&b.samples) {
        Some(stats) => {
            println!(
                "{label:<60} {:>9} iters  {:>11.3} ms ± {:>9.3}  p50 {:>11.3}  p95 {:>11.3}",
                stats.n,
                stats.mean * 1e3,
                stats.stddev * 1e3,
                stats.p50 * 1e3,
                stats.p95 * 1e3,
            );
        }
        None => println!("{label:<60} (no measurement)"),
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.measurement_time, self.warmup_iters, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group: {name}");
        let measurement_time = self.measurement_time;
        let warmup_iters = self.warmup_iters;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            measurement_time,
            warmup_iters,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warmup_iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim keys its budget on wall
    /// time, not sample counts, so this only scales the budget mildly.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Fewer samples in real criterion means the caller expects a slow
        // benchmark; shrink the shim's budget accordingly.
        if n < 50 {
            self.measurement_time = Duration::from_millis(300);
        }
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.measurement_time, self.warmup_iters, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.measurement_time, self.warmup_iters, |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_iterations() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            warmup_iters: 0,
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn sample_stats_match_hand_computation() {
        assert!(SampleStats::from_samples(&[]).is_none());
        let single = SampleStats::from_samples(&[2.0]).unwrap();
        assert_eq!(single.n, 1);
        assert_eq!(single.mean, 2.0);
        assert_eq!(single.stddev, 0.0);
        assert_eq!(single.p50, 2.0);
        assert_eq!(single.p95, 2.0);
        assert_eq!(single.max, 2.0);

        // Unsorted input; known mean 3, sample variance 2.5.
        let stats = SampleStats::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(stats.n, 5);
        assert!((stats.mean - 3.0).abs() < 1e-12);
        assert!((stats.stddev - 2.5f64.sqrt()).abs() < 1e-12);
        assert_eq!(stats.p50, 3.0);
        assert_eq!(stats.p95, 5.0);
        assert_eq!(stats.max, 5.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&sorted, 120.0), 100.0, "clamped");
        let tiny = [7.0, 9.0];
        assert_eq!(percentile(&tiny, 50.0), 7.0);
        assert_eq!(percentile(&tiny, 95.0), 9.0);
    }

    #[test]
    fn bencher_collects_per_iteration_samples() {
        let mut b = Bencher {
            measurement_time: Duration::from_millis(2),
            warmup_iters: 1,
            samples: Vec::new(),
        };
        b.iter(|| std::thread::sleep(Duration::from_micros(100)));
        let stats = SampleStats::from_samples(&b.samples).unwrap();
        assert!(stats.n >= 1);
        assert!(stats.mean >= 1e-4, "sleep floor: {}", stats.mean);
        assert!(stats.p95 >= stats.p50);
        assert!(stats.max >= stats.p95);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            warmup_iters: 0,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 3 * 3));
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u32, |b, &x| b.iter(|| x * x));
        g.finish();
    }
}
