//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! a small deterministic property-testing harness with the same surface
//! syntax: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `any::<T>()`, [`Just`],
//! `prop::collection::{vec, hash_set}`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs via the panic
//!   message (the `Debug` of each bound value is not captured; rerun with
//!   the printed case index to reproduce).
//! * **Deterministic seeding** — cases derive from a hash of the test name
//!   and case index, so runs are reproducible by construction.
//! * `prop_assume!` skips the current case without replacement draws.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Test-runner plumbing: the deterministic RNG driving every strategy.
pub mod test_runner {
    /// SplitMix64-based deterministic generator for test-case synthesis.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives the generator for one `(test name, case index)` pair.
        #[must_use]
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next raw 64 bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let inner = (self.f)(self.source.generate(rng));
        inner.generate(rng)
    }
}

/// A strategy that always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Values with a canonical "arbitrary" strategy, used by [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Tame arbitrary floats: finite, symmetric around zero.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, ...).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Element-count bounds for collection strategies (inclusive).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// The `prop::` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use std::collections::HashSet;
        use std::hash::Hash;

        /// Strategy for `Vec<S::Value>` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy for `HashSet<S::Value>` with size in `size` (best
        /// effort: stops early if the element domain is exhausted).
        pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
        where
            S::Value: Eq + Hash,
        {
            HashSetStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// See [`hash_set`].
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for HashSetStrategy<S>
        where
            S::Value: Eq + Hash,
        {
            type Value = HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng);
                let mut out = HashSet::with_capacity(target);
                // Collisions are expected for narrow domains; bound the
                // attempts so exhausted domains terminate.
                for _ in 0..target.saturating_mul(20).max(20) {
                    if out.len() >= target {
                        break;
                    }
                    out.insert(self.element.generate(rng));
                }
                out
            }
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

/// Marker error for a skipped (assumed-away) case. Internal.
#[doc(hidden)]
#[derive(Debug)]
pub struct CaseRejected;

/// Asserts a condition inside a property; panics with the case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::CaseRejected);
        }
    };
}

/// Declares deterministic property tests.
///
/// Supports the standard surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    // The closure gives prop_assume! an early exit; real
                    // assertion failures panic straight through.
                    let __proptest_case =
                        || -> ::core::result::Result<(), $crate::CaseRejected> {
                            $body
                            ::core::result::Result::Ok(())
                        };
                    let _ = __proptest_case();
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..7, y in 0.5f64..2.0) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependency((n, k) in pairs()) {
            prop_assert!(k < n, "{k} !< {n}");
        }

        #[test]
        fn collections_honor_sizes(
            v in prop::collection::vec(0u32..5, 2..6),
            s in prop::collection::hash_set(0u64..100, 1..4),
        ) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert!((1..=3).contains(&s.len()));
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
