//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! exactly the API surface it calls: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] for `f64`/`u64`/`u32`/`bool`,
//! and [`Rng::gen_range`] over half-open integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets, though
//! the streams are not guaranteed to be bit-identical to any particular
//! `rand` release. Everything downstream only relies on determinism for a
//! fixed seed, which this provides.

#![warn(missing_docs)]

use std::ops::Range;

/// Random number generators.
pub mod rngs {
    /// A small, fast, deterministic, non-cryptographic generator
    /// (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::SmallRng;

/// A generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // xoshiro must not start from the all-zero state.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        SmallRng { s }
    }
}

/// Core random-value methods, mirroring the `rand::Rng` extension trait.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value from the "standard" distribution: `f64` uniform in
    /// `[0, 1)`, integers uniform over their full range, `bool` fair.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like the real `rand`.
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

#[inline]
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    // Widening-multiply mapping; bias is < 2^-64 per draw, far below
    // anything the Monte-Carlo consumers here can resolve.
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end - self.start) as u64;
                self.start + uniform_below(rng, width) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let f: f64 = f64::sample(rng);
        let v = self.start + f * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = rng.gen_range(5usize..5);
    }
}
