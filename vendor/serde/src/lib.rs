//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Only the `Serialize` / `Deserialize` derive macros are consumed (as
//! annotations; nothing in the workspace drives an actual serde
//! serializer), so this crate pairs marker traits with no-op derives from
//! the sibling `serde_derive` shim.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
