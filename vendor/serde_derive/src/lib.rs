//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace only uses serde derives as declarative annotations (no
//! code actually serializes through serde — the CSV/report writers are
//! hand-rolled), so empty expansions keep every annotated type compiling
//! without crates.io access.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
